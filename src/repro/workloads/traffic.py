"""Trace-driven multi-tenant traffic simulation (ROADMAP item 5).

The paper's feedback loop — estimate, observe, ledger, drift CUSUM,
online remedy, offline tuning, health — is only a claim until it
survives realistic traffic.  This module generates that traffic
deterministically: thousands of tenants with Zipf-skewed query mixes
over the existing workload generators, arrival processes (steady,
diurnal, bursty) on a **simulated clock**, and mid-run environment
mutations (growing tables, engine upgrades/config changes, out-of-range
excursions).  Every query is driven through the federation's
:class:`~repro.core.costing.CostEstimationModule` via a
:class:`~repro.serve.EstimationService` worker, its actual fed back with
:meth:`~repro.core.costing.CostEstimationModule.record_actual`, and a
small operations policy reacts to drift the way the paper's "supervised
ecosystem" would: let the alarm ring, re-collect statistics, discard the
poisoned execution log, accumulate fresh observations, fold them back in
with offline tuning, recalibrate α, and reset the monitor.

Everything is a pure function of the seed:

* arrival timestamps come from Lewis thinning over seeded ``numpy``
  generators — never from the wall clock;
* the admission gate drains on simulated time, mirroring
  :class:`repro.serve.AdmissionQueue` semantics without thread races;
* the estimation service runs a **single** worker so journal events
  append in arrival order;
* the flight recorder stays uninstalled unless a dump directory is
  requested (its records carry wall-clock latencies, which would leak
  nondeterminism into journaled incident bundles).

Two same-seed runs therefore produce byte-identical event journals —
the property the CI determinism leg enforces with ``cmp``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro import obs
from repro.core import (
    ClusterInfo,
    CostingApproach,
    LogicalOpModel,
    OperatorKind,
    RemoteSystemProfile,
)
from repro.core.tuning import OfflineTuner
from repro.data import build_paper_corpus
from repro.engines import HiveEngine
from repro.engines.execution import EngineTuning
from repro.exceptions import ConfigurationError
from repro.master.federation import IntelliSphere
from repro.serve import EstimationService
from repro.sql.logical import LogicalPlan
from repro.workloads.aggregation import AggregationWorkload
from repro.workloads.join import JoinConfig, JoinWorkload
from repro.workloads.scan import ScanWorkload

__all__ = [
    "SimClock",
    "SteadyArrivals",
    "DiurnalArrivals",
    "BurstyArrivals",
    "DiurnalBurstArrivals",
    "generate_arrivals",
    "TenantMix",
    "QueryTemplate",
    "build_query_pool",
    "AdmissionGate",
    "Mutation",
    "TrafficConfig",
    "TrafficReport",
    "TrafficSimulator",
]


# ----------------------------------------------------------------------
# Simulated clock
# ----------------------------------------------------------------------
class SimClock:
    """Monotonic simulated time in seconds.

    The simulator never consults the wall clock: every time-dependent
    decision (arrival rates, admission draining, diurnal phase) reads
    this value, which only moves when the driver advances it.  That is
    what makes scheduling independent of host load, thread interleaving,
    and real elapsed time.
    """

    def __init__(self, start: float = 0.0) -> None:
        self._now = float(start)

    @property
    def now(self) -> float:
        return self._now

    def advance(self, seconds: float) -> float:
        if seconds < 0:
            raise ConfigurationError("cannot advance the clock backwards")
        self._now += seconds
        return self._now

    def advance_to(self, timestamp: float) -> float:
        if timestamp < self._now:
            raise ConfigurationError(
                f"cannot rewind clock from {self._now:.3f} to {timestamp:.3f}"
            )
        self._now = float(timestamp)
        return self._now

    def __repr__(self) -> str:
        return f"SimClock(now={self._now:.3f})"


# ----------------------------------------------------------------------
# Arrival processes
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class SteadyArrivals:
    """Homogeneous Poisson arrivals at a constant rate."""

    rate_per_second: float = 8.0

    def __post_init__(self) -> None:
        if self.rate_per_second <= 0:
            raise ConfigurationError("arrival rate must be > 0")

    @property
    def peak_rate(self) -> float:
        return self.rate_per_second

    def rate(self, t: float) -> float:
        return self.rate_per_second


@dataclass(frozen=True)
class DiurnalArrivals:
    """Sinusoidal day/night modulation of a base Poisson rate.

    ``rate(t) = base × (1 + amplitude × sin(2πt/day − π/2))`` — the
    simulated day starts at the trough and peaks halfway through.
    """

    base_rate: float = 10.0
    amplitude: float = 0.8
    day_seconds: float = 40.0

    def __post_init__(self) -> None:
        if self.base_rate <= 0 or self.day_seconds <= 0:
            raise ConfigurationError("base rate and day length must be > 0")
        if not 0 <= self.amplitude < 1:
            raise ConfigurationError("amplitude must be in [0, 1)")

    @property
    def peak_rate(self) -> float:
        return self.base_rate * (1.0 + self.amplitude)

    def rate(self, t: float) -> float:
        phase = 2.0 * math.pi * (t / self.day_seconds) - math.pi / 2.0
        return self.base_rate * (1.0 + self.amplitude * math.sin(phase))


@dataclass(frozen=True)
class BurstyArrivals:
    """On/off duty-cycled arrivals: quiet base load with periodic storms."""

    base_rate: float = 2.0
    burst_factor: float = 12.0
    period_seconds: float = 10.0
    duty_cycle: float = 0.3

    def __post_init__(self) -> None:
        if self.base_rate <= 0 or self.period_seconds <= 0:
            raise ConfigurationError("base rate and period must be > 0")
        if self.burst_factor < 1:
            raise ConfigurationError("burst_factor must be >= 1")
        if not 0 < self.duty_cycle < 1:
            raise ConfigurationError("duty_cycle must be in (0, 1)")

    @property
    def peak_rate(self) -> float:
        return self.base_rate * self.burst_factor

    def in_burst(self, t: float) -> bool:
        return (t % self.period_seconds) < self.duty_cycle * self.period_seconds

    def rate(self, t: float) -> float:
        return self.base_rate * (self.burst_factor if self.in_burst(t) else 1.0)


@dataclass(frozen=True)
class DiurnalBurstArrivals:
    """Diurnal envelope with bursts riding on top (the worst of both)."""

    diurnal: DiurnalArrivals = field(default_factory=DiurnalArrivals)
    burst: BurstyArrivals = field(default_factory=BurstyArrivals)

    @property
    def peak_rate(self) -> float:
        return self.diurnal.peak_rate * self.burst.burst_factor

    def rate(self, t: float) -> float:
        multiplier = self.burst.burst_factor if self.burst.in_burst(t) else 1.0
        return self.diurnal.rate(t) * multiplier


def generate_arrivals(process, count: int, rng: np.random.Generator) -> List[float]:
    """``count`` arrival timestamps via Lewis thinning.

    Candidates arrive at the process's peak rate; each survives with
    probability ``rate(t) / peak``.  Both draws come from ``rng`` in a
    fixed order, so the schedule is a pure function of the seed.
    """
    if count < 0:
        raise ConfigurationError("arrival count must be >= 0")
    peak = float(process.peak_rate)
    arrivals: List[float] = []
    t = 0.0
    while len(arrivals) < count:
        t += float(rng.exponential(1.0 / peak))
        if float(rng.random()) * peak <= process.rate(t):
            arrivals.append(t)
    return arrivals


# ----------------------------------------------------------------------
# Tenants and query templates
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class QueryTemplate:
    """One reusable query: a stable label, its plan, and its class."""

    label: str
    plan: LogicalPlan
    kind: str  # "scan" | "join" | "aggregate" | "out_of_range"


def build_query_pool(
    corpus,
    catalog_counts: Sequence[int],
    per_class: int = 12,
    oor_row_size: int = 100,
    oor_templates: int = 6,
) -> Dict[str, List[QueryTemplate]]:
    """Template classes over the training corpus plus out-of-range joins.

    The in-range classes reuse the paper's generators (thinned evenly to
    ``per_class`` queries each); the out-of-range class joins 20M-row
    tables that are loaded and cataloged but deliberately excluded from
    every training grid, reproducing the Fig. 14 excursion.
    """
    pool: Dict[str, List[QueryTemplate]] = {}
    scans = ScanWorkload(corpus, max_queries=per_class).plans()
    pool["scan"] = [
        QueryTemplate(label=f"scan#{i:02d} {plan.table}", plan=plan, kind="scan")
        for i, plan in enumerate(scans)
    ]
    joins = JoinWorkload(corpus, max_queries=per_class)
    pool["join"] = [
        QueryTemplate(
            label=(
                f"join#{i:02d} {config.r_rows}x{config.s_rows}"
                f"/{config.row_size} sel={config.selectivity:g}"
            ),
            plan=JoinWorkload.build_plan(config),
            kind="join",
        )
        for i, config in enumerate(joins.configs())
    ]
    aggs = AggregationWorkload(corpus, max_queries=per_class).plans()
    pool["aggregate"] = [
        QueryTemplate(label=f"agg#{i:02d}", plan=plan, kind="aggregate")
        for i, plan in enumerate(aggs)
    ]
    oor_rows = 20_000_000
    biggest_trained = max(catalog_counts)
    selectivities = (1.0, 0.5, 0.25, 0.1, 0.05, 0.01)
    pool["out_of_range"] = [
        QueryTemplate(
            label=f"oor#{i:02d} {oor_rows}x{s_rows} sel={sel:g}",
            plan=JoinWorkload.build_plan(
                JoinConfig(
                    r_rows=oor_rows,
                    s_rows=s_rows,
                    row_size=oor_row_size,
                    selectivity=sel,
                    projection=("a1",),
                )
            ),
            kind="out_of_range",
        )
        for i, (s_rows, sel) in enumerate(
            ((oor_rows if i % 2 else biggest_trained), selectivities[i % len(selectivities)])
            for i in range(oor_templates)
        )
    ]
    return pool


class TenantMix:
    """Zipf-skewed tenant population with per-tenant template affinity.

    Tenant ``i`` (0-based popularity rank) is drawn with probability
    ``∝ (i+1)^-s``.  Each tenant has a preferred template class (round
    robin over the available classes) picked with probability
    ``affinity``; otherwise the class is uniform.  All draws come from
    the caller's generator, in a fixed order per sample.
    """

    def __init__(
        self,
        tenants: int,
        classes: Sequence[str],
        zipf_s: float = 1.1,
        affinity: float = 0.6,
    ) -> None:
        if tenants < 1:
            raise ConfigurationError("need at least one tenant")
        if zipf_s <= 0:
            raise ConfigurationError("zipf_s must be > 0")
        if not 0 <= affinity <= 1:
            raise ConfigurationError("affinity must be in [0, 1]")
        if not classes:
            raise ConfigurationError("need at least one template class")
        self.tenants = tenants
        self.classes = tuple(classes)
        self.zipf_s = zipf_s
        self.affinity = affinity
        ranks = np.arange(1, tenants + 1, dtype=float)
        weights = ranks ** (-zipf_s)
        self.weights = weights / weights.sum()

    def tenant_name(self, index: int) -> str:
        return f"tenant-{index:04d}"

    def sample(self, rng: np.random.Generator) -> Tuple[str, str]:
        """One (tenant, template class) draw."""
        index = int(rng.choice(self.tenants, p=self.weights))
        if float(rng.random()) < self.affinity:
            klass = self.classes[index % len(self.classes)]
        else:
            klass = self.classes[int(rng.integers(len(self.classes)))]
        return self.tenant_name(index), klass


# ----------------------------------------------------------------------
# Admission control on the simulated clock
# ----------------------------------------------------------------------
class AdmissionGate:
    """Deterministic mirror of :class:`repro.serve.AdmissionQueue`.

    A bounded backlog drains at the service's capacity in *simulated*
    queries per second; an arrival that would push the backlog past
    ``depth`` is shed, exactly like ``AdmissionQueue.offer`` raising
    ``AdmissionRejected`` under real concurrency — but as a pure
    function of arrival timestamps, so storms shed the same queries on
    every run.
    """

    def __init__(self, drain_per_second: float, depth: int) -> None:
        if drain_per_second <= 0:
            raise ConfigurationError("drain rate must be > 0")
        if depth < 1:
            raise ConfigurationError("admission depth must be >= 1")
        self.drain_per_second = float(drain_per_second)
        self.depth = depth
        self.admitted = 0
        self.rejected = 0
        self._backlog = 0.0
        self._last = 0.0

    def offer(self, now: float) -> bool:
        elapsed = max(0.0, now - self._last)
        self._backlog = max(0.0, self._backlog - elapsed * self.drain_per_second)
        self._last = now
        if self._backlog + 1.0 > self.depth:
            self.rejected += 1
            obs.counter(
                "traffic.rejected", help="arrivals shed by the admission gate"
            ).inc()
            return False
        self._backlog += 1.0
        self.admitted += 1
        obs.counter(
            "traffic.admitted", help="arrivals admitted by the admission gate"
        ).inc()
        return True


# ----------------------------------------------------------------------
# Environment mutations
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class Mutation:
    """One mid-run environment change, applied at a traffic fraction.

    Kinds:

    * ``grow-tables`` — scale named tables' row counts on the engine
      while the master's statistics go stale (params: ``factor``,
      ``tables``);
    * ``engine-tuning`` — replace fields of the engine's
      :class:`~repro.engines.execution.EngineTuning` (an upgrade or a
      config change; params are field overrides);
    * ``inject-out-of-range`` — start drawing a fraction of queries
      from the out-of-range template class (params: ``weight``).
    """

    at_fraction: float
    kind: str
    params: Mapping[str, object] = field(default_factory=dict)
    description: str = ""

    def __post_init__(self) -> None:
        if not 0 <= self.at_fraction < 1:
            raise ConfigurationError("at_fraction must be in [0, 1)")
        if self.kind not in ("grow-tables", "engine-tuning", "inject-out-of-range"):
            raise ConfigurationError(f"unknown mutation kind: {self.kind!r}")


# ----------------------------------------------------------------------
# Configuration and report
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class TrafficConfig:
    """Everything a scenario needs to run (all knobs, no policy)."""

    queries: int = 400
    tenants: int = 400
    seed: int = 0
    arrivals: object = field(default_factory=SteadyArrivals)
    zipf_s: float = 1.1
    affinity: float = 0.6
    classes: Tuple[str, ...] = ("scan", "join", "aggregate")
    oor_weight: float = 0.0  # out-of-range draw probability once active
    oor_from_start: bool = False
    noise_sigma: float = 0.03
    row_counts: Tuple[int, ...] = (10_000, 100_000, 1_000_000, 8_000_000)
    row_sizes: Tuple[int, ...] = (100,)
    include_oor_tables: bool = False
    templates_per_class: int = 12
    train_budget: int = 42
    nn_iterations: int = 600
    tuning_iterations: int = 2_500
    ledger_window: int = 160
    admission_rate: float = 64.0
    admission_depth: int = 32
    mutations: Tuple[Mutation, ...] = ()
    recovery_lag: int = 30
    tuning_delay: int = 110
    remedy_trigger: Optional[int] = None  # remedied queries that force recovery
    refresh_stats: bool = False  # re-collect master statistics on recovery
    health_samples: int = 20


@dataclass
class TrafficReport:
    """What one simulation run observed (the scenario checks' input)."""

    queries: int = 0
    executed: int = 0
    rejected: int = 0
    errors: int = 0
    sim_seconds: float = 0.0
    arrival_times: List[float] = field(default_factory=list)
    tenants_seen: int = 0
    tenant_queries: Dict[str, int] = field(default_factory=dict)
    mutation_indices: Dict[str, int] = field(default_factory=dict)
    first_drift_query: Optional[int] = None
    drift_alarms: int = 0
    remedy_activations: int = 0
    alpha_recalibrations: int = 0
    tuning_runs: int = 0
    tuning_entries: int = 0
    recoveries: int = 0
    final_health: Dict[str, str] = field(default_factory=dict)
    health_timeline: List[Tuple[int, Dict[str, str]]] = field(default_factory=list)
    replay_consistent: bool = False
    replay_detail: str = ""
    journal_path: Optional[str] = None
    flight_dir: Optional[str] = None

    def top_tenants(self, n: int = 5) -> List[Tuple[str, int]]:
        ranked = sorted(
            self.tenant_queries.items(), key=lambda item: (-item[1], item[0])
        )
        return ranked[:n]

    def tenant_share(self, top_fraction: float) -> float:
        """Traffic share of the busiest ``top_fraction`` of tenants seen."""
        if not self.tenant_queries:
            return 0.0
        counts = sorted(self.tenant_queries.values(), reverse=True)
        top = max(1, int(round(top_fraction * len(counts))))
        return sum(counts[:top]) / sum(counts)

    def arrival_window_counts(self, windows: int = 12) -> List[int]:
        if not self.arrival_times or windows < 1:
            return []
        span = self.arrival_times[-1] or 1.0
        counts = [0] * windows
        for t in self.arrival_times:
            counts[min(windows - 1, int(windows * t / span))] += 1
        return counts

    def to_dict(self) -> Dict[str, object]:
        return {
            "queries": self.queries,
            "executed": self.executed,
            "rejected": self.rejected,
            "errors": self.errors,
            "sim_seconds": round(self.sim_seconds, 3),
            "tenants_seen": self.tenants_seen,
            "top_tenants": self.top_tenants(),
            "mutations": dict(self.mutation_indices),
            "first_drift_query": self.first_drift_query,
            "drift_alarms": self.drift_alarms,
            "remedy_activations": self.remedy_activations,
            "alpha_recalibrations": self.alpha_recalibrations,
            "tuning_runs": self.tuning_runs,
            "tuning_entries": self.tuning_entries,
            "recoveries": self.recoveries,
            "final_health": dict(self.final_health),
            "health_timeline": [
                {"query": index, "grades": dict(grades)}
                for index, grades in self.health_timeline
            ],
            "arrival_windows": self.arrival_window_counts(),
            "replay": {
                "consistent": self.replay_consistent,
                "detail": self.replay_detail,
            },
            "journal": self.journal_path,
            "flight_dir": self.flight_dir,
        }


# ----------------------------------------------------------------------
# The simulator
# ----------------------------------------------------------------------
_SYSTEM = "hive"
_TRAINED_KINDS = {
    "scan": OperatorKind.SCAN,
    "join": OperatorKind.JOIN,
    "aggregate": OperatorKind.AGGREGATE,
}


class _Recovery:
    """Drift/remedy-triggered operations policy state machine."""

    IDLE, PENDING, RELEARN = "idle", "pending", "relearn"

    def __init__(self) -> None:
        self.state = self.IDLE
        self.act_at: Optional[int] = None
        self.remedied_since = 0


class TrafficSimulator:
    """Drives one configured traffic mix through a fresh federation.

    Construction builds the federation (engine, tables, trained
    logical-op models) but touches none of the process-wide
    observability state; :meth:`run` installs a fresh metrics registry,
    ledger, tenant ledger, and journal, replays the arrival schedule,
    and returns a :class:`TrafficReport`.
    """

    def __init__(
        self,
        config: TrafficConfig,
        journal_path: Optional[str] = None,
        flight_dir: Optional[str] = None,
    ) -> None:
        self.config = config
        self.journal_path = journal_path
        self.flight_dir = flight_dir
        self.clock = SimClock()
        self._rng = np.random.default_rng(config.seed)
        self._grown: Dict[str, object] = {}  # table name -> grown TableSpec
        self._oor_active = config.oor_from_start
        self._oor_weight = config.oor_weight if config.oor_from_start else 0.0
        self._build_federation()

    # ------------------------------------------------------------------
    # Federation setup
    # ------------------------------------------------------------------
    def _build_federation(self) -> None:
        config = self.config
        self.sphere = IntelliSphere(seed=config.seed)
        info = ClusterInfo(
            num_data_nodes=3, cores_per_node=2, dfs_block_size=128 * 1024 * 1024
        )
        self.engine = HiveEngine(seed=config.seed, noise_sigma=config.noise_sigma)
        profile = RemoteSystemProfile(name=_SYSTEM, cluster=info)
        self.sphere.add_remote_system(self.engine, profile)
        self.train_corpus = build_paper_corpus(
            row_counts=config.row_counts, row_sizes=config.row_sizes
        )
        for spec in self.train_corpus:
            self.sphere.add_table(spec)
        if config.include_oor_tables:
            for spec in build_paper_corpus(
                row_counts=(20_000_000,), row_sizes=config.row_sizes
            ):
                self.sphere.add_table(spec)
        self.pool = build_query_pool(
            self.train_corpus,
            catalog_counts=config.row_counts,
            per_class=config.templates_per_class,
        )
        self.mix = TenantMix(
            tenants=config.tenants,
            classes=config.classes,
            zipf_s=config.zipf_s,
            affinity=config.affinity,
        )
        self._train_models()

    def _train_models(self) -> None:
        """Fast deterministic logical-op training for every served class.

        Mirrors the feedback-cycle recipe from the costing tests: fixed
        topology, a few hundred iterations, an evenly thinned workload —
        seconds of wall time, bit-stable weights for a given seed.
        """
        config = self.config
        catalog = self.sphere.catalog
        workloads = {
            OperatorKind.SCAN: ScanWorkload(
                self.train_corpus, max_queries=config.train_budget
            ),
            OperatorKind.JOIN: JoinWorkload(
                self.train_corpus, max_queries=config.train_budget
            ),
            OperatorKind.AGGREGATE: AggregationWorkload(
                self.train_corpus, max_queries=config.train_budget
            ),
        }
        for kind, workload in workloads.items():
            self.sphere.costing.train_logical_op(
                _SYSTEM,
                kind,
                workload.training_queries(catalog),
                model=LogicalOpModel(
                    kind,
                    search_topology=False,
                    nn_iterations=config.nn_iterations,
                    seed=config.seed,
                    tuner=OfflineTuner(
                        tuning_iterations=config.tuning_iterations,
                        seed=config.seed,
                    ),
                ),
            )
        self.sphere.costing.profile(_SYSTEM).approach = CostingApproach.LOGICAL_OP

    # ------------------------------------------------------------------
    # Mutations
    # ------------------------------------------------------------------
    def _apply_mutation(self, mutation: Mutation) -> None:
        params = dict(mutation.params)
        if mutation.kind == "grow-tables":
            factor = float(params.get("factor", 2.5))
            names = tuple(params.get("tables", ()))
            for spec in list(self.train_corpus):
                if names and spec.name not in names:
                    continue
                grown = spec.grown(factor)
                self.engine.load_table(grown)
                # The master's statistics deliberately go stale here;
                # a recovery with refresh_stats re-collects them.
                self._grown[grown.name] = grown
        elif mutation.kind == "engine-tuning":
            fields = {
                key: value
                for key, value in params.items()
                if hasattr(EngineTuning(), key)
            }
            self.engine.retune(**fields)
        elif mutation.kind == "inject-out-of-range":
            self._oor_active = True
            self._oor_weight = float(params.get("weight", self.config.oor_weight))

    def _refresh_statistics(self) -> None:
        """Re-collect master statistics for every grown table."""
        for spec in self._grown.values():
            self.sphere.catalog.register(spec, replace=True)
        if self._grown:
            self.sphere.costing.invalidate_cache(_SYSTEM)

    # ------------------------------------------------------------------
    # Per-query work
    # ------------------------------------------------------------------
    def _pick_template(self, klass: str) -> QueryTemplate:
        if self._oor_active and self._oor_weight > 0:
            if float(self._rng.random()) < self._oor_weight:
                klass = "out_of_range"
        templates = self.pool[klass]
        return templates[int(self._rng.integers(len(templates)))]

    def _run_query(self, template: QueryTemplate) -> bool:
        """Estimate, execute, and feed back one query; True if remedied."""
        costing = self.sphere.costing
        estimate = costing.estimate_plan(_SYSTEM, template.plan, self.sphere.catalog)
        actual = self.engine.execute(template.plan).elapsed_seconds
        costing.record_actual(_SYSTEM, estimate, actual)
        return estimate.used_remedy

    # ------------------------------------------------------------------
    # Recovery policy
    # ------------------------------------------------------------------
    def _maybe_recover(
        self, index: int, recovery: _Recovery, report: TrafficReport
    ) -> None:
        config = self.config
        costing = self.sphere.costing
        snapshot = costing.drift_snapshot()
        drifted = any(bool(entry.get("drifted")) for entry in snapshot.values())
        if drifted and report.first_drift_query is None:
            report.first_drift_query = index
        if recovery.state == _Recovery.IDLE:
            pressure = (
                config.remedy_trigger is not None
                and recovery.remedied_since >= config.remedy_trigger
            )
            if drifted or pressure:
                recovery.state = _Recovery.PENDING
                recovery.act_at = index + config.recovery_lag
        elif recovery.state == _Recovery.PENDING and index >= (recovery.act_at or 0):
            # Stage 1: stop the bleeding.  Fresh statistics make the
            # remedy see true feature values; the execution log so far
            # was recorded against the stale view, so it is poisoned —
            # discard it before accumulating tuning observations.
            if config.refresh_stats:
                self._refresh_statistics()
            for kind in _TRAINED_KINDS.values():
                model = self.sphere.costing.profile(_SYSTEM).costing.logical_models[
                    kind
                ]
                model.execution_log.drain()
            recovery.state = _Recovery.RELEARN
            recovery.act_at = index + config.tuning_delay
        elif recovery.state == _Recovery.RELEARN and index >= (recovery.act_at or 0):
            # Stage 2: fold the fresh log back in, recalibrate α, and
            # re-arm the drift monitor.
            for kind in _TRAINED_KINDS.values():
                costing.run_offline_tuning(_SYSTEM, kind)
                costing.recalibrate_alpha(_SYSTEM, kind)
            costing.reset_drift(_SYSTEM)
            recovery.state = _Recovery.IDLE
            recovery.act_at = None
            recovery.remedied_since = 0
            report.recoveries += 1

    # ------------------------------------------------------------------
    # Health sampling
    # ------------------------------------------------------------------
    def _sample_health(self) -> Dict[str, str]:
        observation = obs.build_observation(
            drift=self.sphere.costing.drift_snapshot(),
            cache=self.sphere.estimate_cache.stats(),
        )
        return {
            health.system: health.grade
            for health in obs.evaluate_health(observation)
        }

    # ------------------------------------------------------------------
    # The run loop
    # ------------------------------------------------------------------
    def run(self) -> TrafficReport:
        config = self.config
        report = TrafficReport(
            queries=config.queries,
            journal_path=self.journal_path,
            flight_dir=self.flight_dir,
        )

        # Fresh observability plane: nothing from previous runs (or the
        # training phase's instruments) leaks into the journal or the
        # health verdict, and two same-seed runs see identical state.
        obs.set_registry(obs.MetricsRegistry())
        ledger = obs.AccuracyLedger(window=config.ledger_window)
        obs.set_ledger(ledger)
        obs.set_tenant_ledger(obs.TenantLedger())
        obs.set_exemplar_store(obs.ExemplarStore())
        obs.reset_query_ids()
        journal = (
            obs.EventJournal(self.journal_path)
            if self.journal_path
            else obs.NoopJournal()
        )
        obs.set_journal(journal)
        recorder = None
        if self.flight_dir:
            recorder = obs.FlightRecorder(directory=self.flight_dir)
        obs.set_flight_recorder(recorder)
        self.sphere.costing.ledger = ledger

        arrivals = generate_arrivals(
            config.arrivals, config.queries, np.random.default_rng(config.seed + 1)
        )
        report.arrival_times = arrivals
        report.sim_seconds = arrivals[-1] if arrivals else 0.0
        mutations = sorted(config.mutations, key=lambda m: m.at_fraction)
        mutation_at = [int(m.at_fraction * config.queries) for m in mutations]
        next_mutation = 0
        gate = AdmissionGate(config.admission_rate, config.admission_depth)
        recovery = _Recovery()
        health_every = max(1, config.queries // max(1, config.health_samples))

        service = EstimationService(self.sphere, workers=1, queue_depth=8)
        service.start()
        try:
            for index, timestamp in enumerate(arrivals):
                self.clock.advance_to(timestamp)
                while (
                    next_mutation < len(mutations)
                    and index >= mutation_at[next_mutation]
                ):
                    mutation = mutations[next_mutation]
                    self._apply_mutation(mutation)
                    label = mutation.description or mutation.kind
                    report.mutation_indices[label] = index
                    next_mutation += 1
                tenant, klass = self.mix.sample(self._rng)
                report.tenant_queries[tenant] = (
                    report.tenant_queries.get(tenant, 0) + 1
                )
                if not gate.offer(self.clock.now):
                    report.rejected += 1
                    continue
                template = self._pick_template(klass)
                try:
                    remedied = service.execute(
                        lambda t=template: self._run_query(t),
                        query=template.label,
                        tenant=tenant,
                        timeout=120.0,
                    )
                except Exception:  # noqa: BLE001 - counted, not fatal
                    report.errors += 1
                    obs.counter(
                        "traffic.errors", help="queries that raised mid-simulation"
                    ).inc()
                    continue
                report.executed += 1
                if remedied:
                    recovery.remedied_since += 1
                self._maybe_recover(index, recovery, report)
                if (index + 1) % health_every == 0:
                    report.health_timeline.append((index + 1, self._sample_health()))
        finally:
            service.stop()
            obs.set_flight_recorder(None)
            journal.close()
            obs.set_journal(None)

        report.tenants_seen = len(report.tenant_queries)
        report.final_health = self._sample_health()
        if not report.health_timeline or report.health_timeline[-1][0] != config.queries:
            report.health_timeline.append((config.queries, dict(report.final_health)))
        self._fold_journal(report, ledger)
        return report

    # ------------------------------------------------------------------
    # Journal accounting
    # ------------------------------------------------------------------
    def _fold_journal(self, report: TrafficReport, ledger) -> None:
        """Count loop milestones from the journal and verify replay.

        The journal is the durable record, so the report's drift/remedy/
        tuning tallies come from it rather than from live counters —
        what the journal cannot reproduce did not durably happen.
        Replay consistency compares the rebuilt accuracy ledger against
        the live one; the floats round-trip exactly, so any mismatch is
        a real divergence.
        """
        if not self.journal_path:
            report.replay_detail = "no journal configured"
            return
        result = obs.read_journal(self.journal_path)
        for event in result.events:
            if event.type == "drift":
                report.drift_alarms += 1
            elif event.type == "remedy":
                phase = event.payload.get("phase")
                if phase == "activation":
                    report.remedy_activations += 1
                elif phase == "recalibration":
                    report.alpha_recalibrations += 1
            elif event.type == "tuning":
                report.tuning_runs += 1
                report.tuning_entries += int(event.payload.get("entries", 0))
        fresh_registry = obs.MetricsRegistry()
        fresh_ledger = obs.AccuracyLedger(window=self.config.ledger_window)
        obs.replay(result, registry=fresh_registry, ledger=fresh_ledger)
        live = ledger.snapshot()
        rebuilt = fresh_ledger.snapshot()
        if result.corrupt_lines:
            report.replay_consistent = False
            report.replay_detail = f"{result.corrupt_lines} corrupt journal lines"
        elif rebuilt != live:
            report.replay_consistent = False
            differing = sorted(
                key
                for key in set(live) | set(rebuilt)
                if live.get(key) != rebuilt.get(key)
            )
            report.replay_detail = f"ledger mismatch on {differing[:4]}"
        else:
            report.replay_consistent = True
            report.replay_detail = (
                f"replayed {len(result.events)} events bit-identically"
            )
