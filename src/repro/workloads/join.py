"""The join training workload (Fig. 10, §7).

Queries join a bigger table R with a smaller table S on the unique-value
column ``a1`` (output cardinality = |S|, since smaller tables' values are
subsets of larger ones) and control the output selectivity with the
extra predicate ``R.a1 + S.z < threshold``: ``S.z`` is always zero, so
the threshold directly selects the fraction of the smaller table that
survives — 100%, 50%, 25%, or 1% in the paper.

Projected output width (training dimensions 5 and 6) varies by cycling
through projection variants.  The default grid over the paper's counts
and sizes yields ≈5,000 configurations; ``max_queries`` evenly thins it
to the paper's ≈4,000.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.core.costing import TrainingQuery, derive_join_stats
from repro.data.catalog import Catalog
from repro.data.generator import SyntheticCorpus, table_name
from repro.exceptions import ConfigurationError
from repro.sql.ast import column, lit
from repro.sql.builder import scan
from repro.sql.logical import Join, LogicalPlan

#: Projection variants cycled across the grid: narrow, medium, full.
PROJECTION_VARIANTS: Tuple[Tuple[str, ...], ...] = (
    ("a1", "a2"),
    ("a1", "a2", "a5", "a10", "a20"),
    (),  # full rows
)

#: The paper's output-selectivity levels.
PAPER_SELECTIVITIES: Tuple[float, ...] = (1.0, 0.5, 0.25, 0.01)


@dataclass(frozen=True)
class JoinConfig:
    """One join training configuration before plan construction."""

    r_rows: int
    s_rows: int
    row_size: int
    selectivity: float
    projection: Tuple[str, ...]


class JoinWorkload:
    """Generator of labeled-configuration join queries.

    Args:
        corpus: The synthetic table corpus.
        row_counts: Candidate table cardinalities; all (R, S) pairs with
            ``R >= S`` are used.
        row_sizes: Record sizes (R and S share the size per query, as in
            the corpus's same-schema design).
        selectivities: Output fractions of the smaller table.
        max_queries: Even thinning budget (None = full grid).
    """

    def __init__(
        self,
        corpus: SyntheticCorpus,
        row_counts: Optional[Sequence[int]] = None,
        row_sizes: Optional[Sequence[int]] = None,
        selectivities: Sequence[float] = PAPER_SELECTIVITIES,
        max_queries: Optional[int] = None,
    ) -> None:
        self.corpus = corpus
        self.row_counts = tuple(sorted(row_counts or corpus.row_counts))
        self.row_sizes = tuple(sorted(row_sizes or corpus.row_sizes))
        if any(not 0 < s <= 1 for s in selectivities):
            raise ConfigurationError("selectivities must be in (0, 1]")
        self.selectivities = tuple(selectivities)
        self.max_queries = max_queries

    # ------------------------------------------------------------------
    # Plan construction
    # ------------------------------------------------------------------
    @staticmethod
    def build_plan(config: JoinConfig) -> LogicalPlan:
        """One join query implementing Fig. 10's selectivity control."""
        r_name = table_name(config.r_rows, config.row_size)
        s_name = table_name(config.s_rows, config.row_size)
        # The joined a1 domain is 0..|S|-1; a threshold of sel*|S| keeps
        # exactly that fraction (S.z is identically zero).
        threshold = max(1, math.ceil(config.selectivity * config.s_rows))
        extra = (column("a1", table=r_name) + column("z", table=s_name)).lt(
            lit(threshold)
        )
        return (
            scan(r_name)
            .join(
                s_name,
                on=("a1", "a1"),
                extra=extra,
                project=config.projection,
            )
            .plan()
        )

    # ------------------------------------------------------------------
    # Workload enumeration
    # ------------------------------------------------------------------
    def configs(self) -> List[JoinConfig]:
        """All configurations of the (possibly thinned) grid."""
        grid: List[JoinConfig] = []
        variant = 0
        for row_size in self.row_sizes:
            for i, r_rows in enumerate(self.row_counts):
                for s_rows in self.row_counts[: i + 1]:
                    for selectivity in self.selectivities:
                        grid.append(
                            JoinConfig(
                                r_rows=r_rows,
                                s_rows=s_rows,
                                row_size=row_size,
                                selectivity=selectivity,
                                projection=PROJECTION_VARIANTS[
                                    variant % len(PROJECTION_VARIANTS)
                                ],
                            )
                        )
                        variant += 1
        return _thin(grid, self.max_queries)

    def plans(self) -> List[LogicalPlan]:
        return [self.build_plan(config) for config in self.configs()]

    def training_queries(self, catalog: Catalog) -> List[TrainingQuery]:
        """Plans paired with their seven-dimension feature vectors."""
        queries = []
        for plan in self.plans():
            assert isinstance(plan, Join)
            stats = derive_join_stats(plan, catalog)
            queries.append(TrainingQuery(plan=plan, features=stats.features()))
        return queries

    def __len__(self) -> int:
        n_counts = len(self.row_counts)
        pairs = n_counts * (n_counts + 1) // 2
        full = len(self.row_sizes) * pairs * len(self.selectivities)
        return min(full, self.max_queries) if self.max_queries else full


def _thin(items: List, budget: Optional[int]) -> List:
    if budget is None or len(items) <= budget:
        return items
    if budget < 1:
        raise ConfigurationError("max_queries must be >= 1")
    step = len(items) / budget
    return [items[int(i * step)] for i in range(budget)]
