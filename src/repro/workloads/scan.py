"""Scan/filter training workload.

The paper builds logical-op models for join and aggregation (the most
expensive operators); the same machinery covers selection/projection row
passes — QueryGrid's predicate push-down (§2) makes their remote cost
relevant too.  Queries have the form::

    SELECT <columns> FROM t{X}_{Y} WHERE a1 < threshold

varying the target table, the predicate selectivity, and the projection
width, which spans the four scan training dimensions (input rows, input
row size, output rows, output row size).
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from repro.core.costing import TrainingQuery, derive_operator_stats
from repro.core.operators import ScanOperatorStats
from repro.data.catalog import Catalog
from repro.data.generator import SyntheticCorpus
from repro.exceptions import ConfigurationError
from repro.sql.ast import column, lit
from repro.sql.logical import LogicalPlan, Scan

#: Projection variants cycled across the grid.
PROJECTION_VARIANTS: Tuple[Tuple[str, ...], ...] = (
    ("a1",),
    ("a1", "a2", "a5", "a10"),
    (),  # full rows
)

DEFAULT_SELECTIVITIES: Tuple[float, ...] = (1.0, 0.5, 0.1, 0.01)


class ScanWorkload:
    """Generator of labeled scan/filter training queries."""

    def __init__(
        self,
        corpus: SyntheticCorpus,
        selectivities: Sequence[float] = DEFAULT_SELECTIVITIES,
        max_queries: Optional[int] = None,
    ) -> None:
        if any(not 0 < s <= 1 for s in selectivities):
            raise ConfigurationError("selectivities must be in (0, 1]")
        self.corpus = corpus
        self.selectivities = tuple(selectivities)
        self.max_queries = max_queries

    @staticmethod
    def build_plan(
        table: str,
        num_rows: int,
        selectivity: float,
        projection: Tuple[str, ...],
    ) -> LogicalPlan:
        """One filter scan keeping ``selectivity`` of the table's rows.

        ``a1`` is unique with values ``0..num_rows-1``, so a threshold of
        ``selectivity * num_rows`` keeps exactly that fraction.
        """
        threshold = max(1, round(selectivity * num_rows))
        return Scan(
            table=table,
            projection=projection,
            predicate=column("a1").lt(lit(threshold)),
        )

    def plans(self) -> List[LogicalPlan]:
        grid: List[LogicalPlan] = []
        variant = 0
        for spec in self.corpus:
            for selectivity in self.selectivities:
                grid.append(
                    self.build_plan(
                        spec.name,
                        spec.num_rows,
                        selectivity,
                        PROJECTION_VARIANTS[variant % len(PROJECTION_VARIANTS)],
                    )
                )
                variant += 1
        return _thin(grid, self.max_queries)

    def training_queries(self, catalog: Catalog) -> List[TrainingQuery]:
        """Plans paired with their four-dimension feature vectors."""
        queries = []
        for plan in self.plans():
            stats = derive_operator_stats(plan, catalog)
            assert isinstance(stats, ScanOperatorStats)
            queries.append(TrainingQuery(plan=plan, features=stats.features()))
        return queries

    def __len__(self) -> int:
        full = len(self.corpus) * len(self.selectivities)
        return min(full, self.max_queries) if self.max_queries else full


def _thin(items: List, budget: Optional[int]) -> List:
    if budget is None or len(items) <= budget:
        return items
    if budget < 1:
        raise ConfigurationError("max_queries must be >= 1")
    step = len(items) / budget
    return [items[int(i * step)] for i in range(budget)]
