"""Training and evaluation workload generators (§7, Fig. 10).

* :mod:`repro.workloads.aggregation` — the ~3,700-query aggregation grid
  (vary target table, shrink factor via the ``a_i`` columns, and the
  number of SUM aggregates);
* :mod:`repro.workloads.join` — the ~4,000-query join grid (vary both
  tables, record sizes, and output selectivity through the
  ``R.a1 + S.z < threshold`` control predicate);
* :mod:`repro.workloads.subop_queries` — budget-sized primitive
  measurement workloads for sub-op training (Fig. 13(a));
* :mod:`repro.workloads.out_of_range` — the 45 out-of-range join queries
  of Fig. 14 / Table 1;
* :mod:`repro.workloads.traffic` — the deterministic multi-tenant
  traffic simulator (arrival processes, Zipf tenant mixes, environment
  mutations, the feedback-loop recovery policy);
* :mod:`repro.workloads.scenarios` — named end-to-end scenarios with
  declarative assertions, the engine behind ``repro simulate``.
"""

from repro.workloads.aggregation import AggregationWorkload
from repro.workloads.join import JoinWorkload
from repro.workloads.scan import ScanWorkload
from repro.workloads.scenarios import (
    SCENARIOS,
    ScenarioResult,
    ScenarioSpec,
    get_scenario,
    run_scenario,
    scenario_names,
)
from repro.workloads.subop_queries import trainer_for_budget
from repro.workloads.out_of_range import OutOfRangeWorkload
from repro.workloads.traffic import (
    AdmissionGate,
    BurstyArrivals,
    DiurnalArrivals,
    DiurnalBurstArrivals,
    Mutation,
    SimClock,
    SteadyArrivals,
    TenantMix,
    TrafficConfig,
    TrafficReport,
    TrafficSimulator,
    generate_arrivals,
)

__all__ = [
    "AggregationWorkload",
    "JoinWorkload",
    "ScanWorkload",
    "trainer_for_budget",
    "OutOfRangeWorkload",
    "AdmissionGate",
    "BurstyArrivals",
    "DiurnalArrivals",
    "DiurnalBurstArrivals",
    "Mutation",
    "SimClock",
    "SteadyArrivals",
    "TenantMix",
    "TrafficConfig",
    "TrafficReport",
    "TrafficSimulator",
    "generate_arrivals",
    "SCENARIOS",
    "ScenarioResult",
    "ScenarioSpec",
    "get_scenario",
    "run_scenario",
    "scenario_names",
]
