"""Blackbox single-node RDBMS remote-system simulator.

The paper's logical-op costing exists precisely for systems like this:
no DFS, no primitive-query surface, internals unknown to IntelliSphere.
The simulator models a conventional buffer-pool database: sequential
scans at disk bandwidth with a caching discount for small tables, hash
joins that spill past work_mem, sort-merge joins with an n·log n sort
term, and stream aggregation.

Only the :meth:`~repro.engines.base.RemoteSystem.execute` surface is
exposed; :meth:`execute_primitive` raises, as a true blackbox would.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Optional, Tuple

import numpy as np

from repro.engines.base import EngineCapabilities, QueryResult, RemoteSystem
from repro.exceptions import ConfigurationError, UnsupportedOperationError
from repro.sql.cardinality import CardinalityEstimator
from repro.sql.logical import Aggregate, Filter, Join, LogicalPlan, Project, Scan

MIB = 1024**2
GIB = 1024**3


@dataclass(frozen=True)
class RdbmsTuning:
    """Hardware/configuration constants of the blackbox RDBMS.

    Attributes:
        scan_bandwidth: Sequential scan throughput, bytes/second.
        cpu_us_per_row: Per-row CPU cost of expression evaluation, µs.
        hash_us_per_row: Per-row cost of hash build/probe in memory, µs.
        sort_us_per_row_per_log: Per-row-per-log2(n) sort cost, µs.
        spill_penalty: Multiplier on hash cost when the table exceeds
            work_mem (grace hash join's extra partitioning passes).
        work_mem: Memory budget for one operator's workspace, bytes.
        buffer_pool: Tables smaller than this are likely cached; their
            scans skip the disk term.
        startup_seconds: Fixed query startup (parse/plan/execute setup).
        noise_sigma: Relative measurement noise.
    """

    scan_bandwidth: float = 400 * MIB
    cpu_us_per_row: float = 0.45
    hash_us_per_row: float = 0.9
    sort_us_per_row_per_log: float = 0.12
    spill_penalty: float = 3.2
    work_mem: int = 1 * GIB
    buffer_pool: int = 4 * GIB
    startup_seconds: float = 0.05
    noise_sigma: float = 0.04

    def __post_init__(self) -> None:
        if self.scan_bandwidth <= 0:
            raise ConfigurationError("scan_bandwidth must be positive")
        if self.work_mem <= 0 or self.buffer_pool <= 0:
            raise ConfigurationError("memory sizes must be positive")


class RdbmsEngine(RemoteSystem):
    """A single-node relational database treated as a blackbox."""

    def __init__(
        self,
        name: str = "rdbms",
        tuning: RdbmsTuning = RdbmsTuning(),
        capabilities: Optional[EngineCapabilities] = None,
        seed: int = 0,
    ) -> None:
        super().__init__(name, capabilities)
        self.tuning = tuning
        self._rng = np.random.default_rng(seed)
        self._estimator = CardinalityEstimator(self._catalog)

    # ------------------------------------------------------------------
    # Execution model
    # ------------------------------------------------------------------
    def _execute(self, plan: LogicalPlan) -> QueryResult:
        seconds, shape, algorithm, breakdown = self._cost_node(plan)
        elapsed = self._apply_noise(seconds + self.tuning.startup_seconds)
        num_rows, row_size = shape
        return QueryResult(
            elapsed_seconds=elapsed,
            output_rows=num_rows,
            output_row_size=row_size,
            algorithm=algorithm,
            breakdown=breakdown,
        )

    def _cost_node(
        self, node: LogicalPlan
    ) -> Tuple[float, Tuple[int, int], str, Dict[str, float]]:
        estimate = self._estimator.estimate(node)
        out = (estimate.num_rows, estimate.row_size)

        if isinstance(node, Scan):
            spec = self._catalog.table(node.table)
            seconds = self._scan_seconds(spec.num_rows, spec.byte_row_size)
            return seconds, out, "seq_scan", {"seq_scan": seconds}

        if isinstance(node, (Filter, Project)):
            child_s, child_shape, _, breakdown = self._cost_node(node.children[0])
            rows, _ = child_shape
            cpu = rows * self.tuning.cpu_us_per_row * 1e-6
            breakdown = dict(breakdown)
            breakdown["cpu"] = breakdown.get("cpu", 0.0) + cpu
            return child_s + cpu, out, "seq_scan", breakdown

        if isinstance(node, Join):
            return self._cost_join(node, out)

        if isinstance(node, Aggregate):
            child_s, child_shape, _, breakdown = self._cost_node(node.input)
            rows, row_size = child_shape
            # Sorted stream aggregation: sort input, then one merge pass.
            sort = self._sort_seconds(rows)
            cpu = rows * self.tuning.cpu_us_per_row * 1e-6
            breakdown = dict(breakdown)
            breakdown["sort"] = breakdown.get("sort", 0.0) + sort
            breakdown["cpu"] = breakdown.get("cpu", 0.0) + cpu
            return child_s + sort + cpu, out, "sort_aggregate", breakdown

        raise UnsupportedOperationError(
            f"RDBMS {self.name!r} cannot execute {type(node).__name__}"
        )

    def _cost_join(
        self, node: Join, out: Tuple[int, int]
    ) -> Tuple[float, Tuple[int, int], str, Dict[str, float]]:
        left_s, left_shape, _, left_b = self._cost_node(node.left)
        right_s, right_shape, _, right_b = self._cost_node(node.right)
        (l_rows, l_size), (r_rows, r_size) = left_shape, right_shape
        if l_rows * l_size >= r_rows * r_size:
            big_rows, big_size, small_rows, small_size = l_rows, l_size, r_rows, r_size
        else:
            big_rows, big_size, small_rows, small_size = r_rows, r_size, l_rows, l_size

        small_bytes = small_rows * small_size
        breakdown: Dict[str, float] = {}
        for source in (left_b, right_b):
            for key, value in source.items():
                breakdown[key] = breakdown.get(key, 0.0) + value

        if small_bytes <= self.tuning.work_mem:
            algorithm = "hash_join"
            join_us = (small_rows + big_rows) * self.tuning.hash_us_per_row
            join_s = join_us * 1e-6
        elif small_bytes <= self.tuning.work_mem * 8:
            algorithm = "grace_hash_join"
            join_us = (
                (small_rows + big_rows)
                * self.tuning.hash_us_per_row
                * self.tuning.spill_penalty
            )
            join_s = join_us * 1e-6
        else:
            algorithm = "merge_join"
            join_s = (
                self._sort_seconds(big_rows)
                + self._sort_seconds(small_rows)
                + (big_rows + small_rows) * self.tuning.cpu_us_per_row * 1e-6
            )
        breakdown[algorithm] = breakdown.get(algorithm, 0.0) + join_s
        out_cpu = out[0] * self.tuning.cpu_us_per_row * 1e-6
        breakdown["cpu"] = breakdown.get("cpu", 0.0) + out_cpu
        total = left_s + right_s + join_s + out_cpu
        return total, out, algorithm, breakdown

    # ------------------------------------------------------------------
    # Cost primitives
    # ------------------------------------------------------------------
    def _scan_seconds(self, rows: int, row_size: int) -> float:
        size = rows * row_size
        io = 0.0 if size <= self.tuning.buffer_pool else size / self.tuning.scan_bandwidth
        cpu = rows * self.tuning.cpu_us_per_row * 1e-6
        return io + cpu

    def _sort_seconds(self, rows: int) -> float:
        if rows <= 1:
            return 0.0
        return rows * math.log2(rows) * self.tuning.sort_us_per_row_per_log * 1e-6

    def _apply_noise(self, seconds: float) -> float:
        if self.tuning.noise_sigma == 0:
            return seconds
        factor = 1.0 + self.tuning.noise_sigma * float(self._rng.standard_normal())
        return max(1e-6, seconds * factor)
