"""Engine-internal physical planner.

Every engine holds an ordered list of physical join algorithms (most
specialized first, matching Hive's and Spark's optimizer preferences) and
picks the first applicable one — the behaviour IntelliSphere must *predict*
from the outside using the applicability rules of §4.
"""

from __future__ import annotations

from typing import Sequence, Tuple

from repro.engines.physical import (
    AggregateContext,
    HashAggregate,
    JoinAlgorithm,
    JoinContext,
    SortAggregate,
)
from repro.exceptions import PlanningError


class PhysicalPlanner:
    """Ordered-preference selection among an engine's physical algorithms."""

    def __init__(
        self,
        join_algorithms: Sequence[JoinAlgorithm],
        aggregate_algorithms: Tuple[HashAggregate, SortAggregate] = (
            HashAggregate(),
            SortAggregate(),
        ),
    ) -> None:
        if not join_algorithms:
            raise PlanningError("planner needs at least one join algorithm")
        self._join_algorithms = tuple(join_algorithms)
        self._aggregate_algorithms = aggregate_algorithms

    @property
    def join_algorithms(self) -> Tuple[JoinAlgorithm, ...]:
        return self._join_algorithms

    def choose_join(self, ctx: JoinContext) -> JoinAlgorithm:
        """First applicable join algorithm in preference order.

        Raises:
            PlanningError: when no algorithm is applicable (an engine with
                a complete algorithm set always has a fallback).
        """
        for algorithm in self._join_algorithms:
            if algorithm.applicable(ctx):
                return algorithm
        raise PlanningError(
            "no applicable join algorithm for context "
            f"(equi={ctx.is_equi}, small_bytes={ctx.small.total_bytes})"
        )

    def choose_aggregate(self, ctx: AggregateContext):
        """Hash aggregation when groups fit memory, else sort aggregation."""
        for algorithm in self._aggregate_algorithms:
            if algorithm.applicable(ctx):
                return algorithm
        raise PlanningError("no applicable aggregation algorithm")
