"""Simulated remote systems (the paper's heterogeneous data sources).

Each engine is a :class:`~repro.engines.base.RemoteSystem` that accepts a
logical SQL operator plan and returns the elapsed execution time plus the
output shape — exactly the observable surface a real remote system exposes
to IntelliSphere.  Internally, engines compute elapsed time from hidden
per-record sub-operator kernels (:mod:`repro.engines.subops`), task-wave
scheduling over the simulated cluster, physical-algorithm selection
(:mod:`repro.engines.planner`), and measurement noise.

The cost-estimation module (:mod:`repro.core`) must treat these internals
as invisible; it may only call :meth:`RemoteSystem.execute` and
:meth:`RemoteSystem.execute_primitive` — the blackbox discipline the paper
relies on.
"""

from repro.engines.base import (
    EngineCapabilities,
    PrimitiveKind,
    PrimitiveQuery,
    QueryResult,
    RemoteSystem,
)
from repro.engines.execution import EngineTuning
from repro.engines.subops import SubOp, SubOpKernel, TwoRegimeKernel, KernelSet
from repro.engines.hive import HiveEngine
from repro.engines.spark import SparkEngine
from repro.engines.mpp import ImpalaEngine, PrestoEngine
from repro.engines.rdbms import RdbmsEngine

__all__ = [
    "ImpalaEngine",
    "PrestoEngine",
    "EngineCapabilities",
    "EngineTuning",
    "PrimitiveKind",
    "PrimitiveQuery",
    "QueryResult",
    "RemoteSystem",
    "SubOp",
    "SubOpKernel",
    "TwoRegimeKernel",
    "KernelSet",
    "HiveEngine",
    "SparkEngine",
    "RdbmsEngine",
]
