"""Hive/Hadoop remote-system simulator — the paper's evaluated engine (§7).

Hive executes through MapReduce: high job-startup overhead, materialized
shuffles, and the five join algorithms of §4 (Shuffle Join, Broadcast
Join, Bucket Map Join, Sort Merge Bucket Join, Skew Join).
"""

from __future__ import annotations

from typing import Optional

from repro.cluster.cluster import Cluster, paper_cluster
from repro.engines.base import EngineCapabilities
from repro.engines.execution import DfsEngine, EngineTuning
from repro.engines.physical import HIVE_JOIN_ALGORITHMS
from repro.engines.planner import PhysicalPlanner
from repro.engines.subops import hive_kernels


class HiveEngine(DfsEngine):
    """A Hive remote system over a simulated Hadoop cluster.

    Args:
        name: System name used in profiles and catalogs.
        cluster: Simulated cluster; defaults to the paper's 4-node VM
            cluster.
        tuning: Execution overhead constants; the defaults reflect
            MapReduce's heavy job startup.
        seed: Measurement-noise seed (deterministic runs).
        noise_sigma: Overrides the tuning's noise level when given.
    """

    def __init__(
        self,
        name: str = "hive",
        cluster: Optional[Cluster] = None,
        tuning: Optional[EngineTuning] = None,
        seed: int = 0,
        noise_sigma: Optional[float] = None,
    ) -> None:
        cluster = cluster or paper_cluster()
        tuning = tuning or EngineTuning(
            job_startup=1.5,
            wave_startup=0.30,
            overlap_factor=0.93,
            noise_sigma=0.04,
        )
        if noise_sigma is not None:
            tuning = EngineTuning(
                job_startup=tuning.job_startup,
                wave_startup=tuning.wave_startup,
                overlap_factor=tuning.overlap_factor,
                noise_sigma=noise_sigma,
            )
        super().__init__(
            name=name,
            cluster=cluster,
            kernels=hive_kernels(cluster.per_task_memory),
            planner=PhysicalPlanner(HIVE_JOIN_ALGORITHMS),
            tuning=tuning,
            capabilities=EngineCapabilities(),
            seed=seed,
        )
