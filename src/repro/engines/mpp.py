"""Pipelined MPP remote-system simulators: Impala and Presto.

The paper names Impala and Presto among the SQL-on-anything systems
IntelliSphere targets and lists "more types of remote systems" as future
work (§8).  Both differ structurally from Hive:

* **no task waves** — long-lived fragments (one per core) pipeline the
  whole query, so elapsed time scales with per-slot work, not with
  cascaded wave counts;
* **tiny startup** — daemons are resident, no JVM/job launch;
* **two join strategies** — *broadcast* and *partitioned* hash joins
  (no bucket or skew variants).

Kernels reflect native (C++/vectorized for Impala, JVM-pipelined for
Presto) execution: lower per-record intercepts than Hive's MapReduce.
"""

from __future__ import annotations

from typing import Optional

from repro.cluster.cluster import Cluster, paper_cluster
from repro.engines.base import EngineCapabilities
from repro.engines.execution import DfsEngine, EngineTuning
from repro.engines.physical import BroadcastJoin, ShuffleHashJoin
from repro.engines.planner import PhysicalPlanner
from repro.engines.subops import KernelSet, SubOp, SubOpKernel, TwoRegimeKernel


def impala_kernels(per_task_memory: int) -> KernelSet:
    """Impala kernel set: vectorized C++ execution, cheap CPU paths."""
    kernels = {
        SubOp.READ_DFS: SubOpKernel(slope=0.0036, intercept=0.30),
        SubOp.WRITE_DFS: SubOpKernel(slope=0.0290, intercept=0.45),
        SubOp.READ_LOCAL: SubOpKernel(slope=0.0012, intercept=0.10),
        SubOp.WRITE_LOCAL: SubOpKernel(slope=0.0095, intercept=0.18),
        SubOp.SHUFFLE: SubOpKernel(slope=0.0055, intercept=1.4),
        SubOp.BROADCAST: SubOpKernel(slope=0.0060, intercept=0.9),
        SubOp.SORT: SubOpKernel(slope=0.0030, intercept=0.8),
        SubOp.SCAN: SubOpKernel(slope=0.0005, intercept=0.05),
        SubOp.HASH_PROBE: SubOpKernel(slope=0.0016, intercept=0.35),
        SubOp.REC_MERGE: SubOpKernel(slope=0.0120, intercept=9.0),
    }
    hash_build = TwoRegimeKernel(
        in_memory=SubOpKernel(slope=0.0110, intercept=6.5),
        spilling=SubOpKernel(slope=0.0950, intercept=-18.0),
        memory_budget=per_task_memory,
    )
    return KernelSet(kernels, hash_build)


def presto_kernels(per_task_memory: int) -> KernelSet:
    """Presto kernel set: JVM pipelined execution, between Hive and Impala."""
    kernels = {
        SubOp.READ_DFS: SubOpKernel(slope=0.0039, intercept=0.45),
        SubOp.WRITE_DFS: SubOpKernel(slope=0.0300, intercept=0.60),
        SubOp.READ_LOCAL: SubOpKernel(slope=0.0018, intercept=0.16),
        SubOp.WRITE_LOCAL: SubOpKernel(slope=0.0120, intercept=0.25),
        SubOp.SHUFFLE: SubOpKernel(slope=0.0072, intercept=2.0),
        SubOp.BROADCAST: SubOpKernel(slope=0.0068, intercept=1.1),
        SubOp.SORT: SubOpKernel(slope=0.0040, intercept=1.2),
        SubOp.SCAN: SubOpKernel(slope=0.0007, intercept=0.09),
        SubOp.HASH_PROBE: SubOpKernel(slope=0.0022, intercept=0.55),
        SubOp.REC_MERGE: SubOpKernel(slope=0.0160, intercept=14.0),
    }
    hash_build = TwoRegimeKernel(
        in_memory=SubOpKernel(slope=0.0150, intercept=9.0),
        spilling=SubOpKernel(slope=0.1200, intercept=-28.0),
        memory_budget=per_task_memory,
    )
    return KernelSet(kernels, hash_build)


class PartitionedHashJoin(ShuffleHashJoin):
    """MPP partitioned hash join: the unconditional fallback strategy.

    Unlike Spark's shuffle hash join (skipped when a partition would not
    fit), Impala/Presto spill the build side to disk — the two-regime
    hash-build kernel prices that spill."""

    name = "partitioned_hash_join"

    def applicable(self, ctx) -> bool:
        return ctx.is_equi


#: Impala's join strategies: broadcast, else partitioned hash join.
IMPALA_JOIN_ALGORITHMS = (
    BroadcastJoin(name="broadcast_hash_join"),
    PartitionedHashJoin(),
)

#: Presto's join distribution types mirror Impala's.
PRESTO_JOIN_ALGORITHMS = (
    BroadcastJoin(name="broadcast_hash_join"),
    PartitionedHashJoin(),
)


class ImpalaEngine(DfsEngine):
    """An Impala remote system: pipelined MPP over HDFS."""

    def __init__(
        self,
        name: str = "impala",
        cluster: Optional[Cluster] = None,
        tuning: Optional[EngineTuning] = None,
        seed: int = 0,
        noise_sigma: Optional[float] = None,
    ) -> None:
        cluster = cluster or paper_cluster(name="impala-vm")
        tuning = tuning or EngineTuning(
            job_startup=0.08,
            wave_startup=0.0,
            overlap_factor=0.90,
            noise_sigma=0.04,
        )
        if noise_sigma is not None:
            tuning = EngineTuning(
                job_startup=tuning.job_startup,
                wave_startup=tuning.wave_startup,
                overlap_factor=tuning.overlap_factor,
                noise_sigma=noise_sigma,
            )
        super().__init__(
            name=name,
            cluster=cluster,
            kernels=impala_kernels(cluster.per_task_memory),
            planner=PhysicalPlanner(IMPALA_JOIN_ALGORITHMS),
            tuning=tuning,
            capabilities=EngineCapabilities(),
            seed=seed,
            pipelined=True,
        )


class PrestoEngine(DfsEngine):
    """A Presto remote system: pipelined MPP over a connector source."""

    def __init__(
        self,
        name: str = "presto",
        cluster: Optional[Cluster] = None,
        tuning: Optional[EngineTuning] = None,
        seed: int = 0,
        noise_sigma: Optional[float] = None,
    ) -> None:
        cluster = cluster or paper_cluster(name="presto-vm")
        tuning = tuning or EngineTuning(
            job_startup=0.15,
            wave_startup=0.0,
            overlap_factor=0.90,
            noise_sigma=0.04,
        )
        if noise_sigma is not None:
            tuning = EngineTuning(
                job_startup=tuning.job_startup,
                wave_startup=tuning.wave_startup,
                overlap_factor=tuning.overlap_factor,
                noise_sigma=noise_sigma,
            )
        super().__init__(
            name=name,
            cluster=cluster,
            kernels=presto_kernels(cluster.per_task_memory),
            planner=PhysicalPlanner(PRESTO_JOIN_ALGORITHMS),
            tuning=tuning,
            capabilities=EngineCapabilities(),
            seed=seed,
            pipelined=True,
        )
