"""Physical operator algorithms and their ground-truth cost composition.

Every algorithm computes elapsed seconds by composing the engine's hidden
sub-operator kernels over the simulated cluster's task-wave schedule,
mirroring the structure of the paper's Fig. 6 Broadcast-Join formula:

    rD*|S| + b*|S| + NumTaskWaves * ( rL*|S| + hI*|S|
        + rL*|Block(R)| + hP*|Block(R)| + wD*|TaskOutput| )

Each algorithm also declares an ``applicable`` predicate — the machine
truth behind the paper's *applicability rules* (§4).
"""

from __future__ import annotations

import abc
import math
from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

from repro.cluster.cluster import Cluster
from repro.engines.subops import KernelSet, SubOp
from repro.exceptions import ConfigurationError


@dataclass(frozen=True)
class RelShape:
    """Physical shape of a relation flowing through an operator.

    Attributes:
        num_rows: Cardinality.
        row_size: Bytes per row.
        partitioned_by: Column the relation is hash-partitioned on, if any.
        sorted_by: Column the relation is sorted on (within partitions).
    """

    num_rows: int
    row_size: int
    partitioned_by: Optional[str] = None
    sorted_by: Optional[str] = None

    def __post_init__(self) -> None:
        if self.num_rows < 0:
            raise ConfigurationError("num_rows must be >= 0")
        if self.row_size < 1:
            raise ConfigurationError("row_size must be >= 1")

    @property
    def total_bytes(self) -> int:
        return self.num_rows * self.row_size


class ExecutionEnv:
    """Cluster + kernel context shared by all algorithms of one engine."""

    def __init__(self, cluster: Cluster, kernels: KernelSet) -> None:
        self.cluster = cluster
        self.kernels = kernels

    @property
    def slots(self) -> int:
        return self.cluster.total_task_slots

    @property
    def num_machines(self) -> int:
        return self.cluster.config.num_data_nodes

    def num_tasks(self, shape: RelShape) -> int:
        """Map tasks to scan ``shape``: one per DFS block."""
        return self.cluster.num_tasks_for_bytes(shape.total_bytes)

    def waves(self, num_tasks: int) -> int:
        return self.cluster.num_task_waves(num_tasks)

    def block_rows(self, shape: RelShape) -> int:
        """Rows of ``shape`` handled by a single map task."""
        tasks = self.num_tasks(shape)
        if tasks == 0:
            return 0
        return math.ceil(shape.num_rows / tasks)


class PipelinedEnv(ExecutionEnv):
    """MPP pipelined execution (Impala/Presto): long-lived fragments, one
    per slot, no task waves — an input is scanned once by up to ``slots``
    parallel fragments regardless of its block count."""

    def num_tasks(self, shape: RelShape) -> int:
        if shape.total_bytes <= 0:
            return 0
        blocks = self.cluster.num_tasks_for_bytes(shape.total_bytes)
        return min(self.slots, blocks)

    def waves(self, num_tasks: int) -> int:
        return 1 if num_tasks > 0 else 0


class CostAccumulator:
    """Accumulates per-sub-op seconds into a labeled breakdown."""

    def __init__(self, env: ExecutionEnv) -> None:
        self._env = env
        self._breakdown: Dict[str, float] = {}

    def add(
        self,
        op: SubOp,
        num_records: int,
        record_size: int,
        repeat: int = 1,
        workspace_bytes: int = 0,
        label: Optional[str] = None,
    ) -> None:
        """Add ``repeat`` x the cost of applying ``op`` to the records."""
        if num_records <= 0 or repeat <= 0:
            return
        seconds = repeat * self._env.kernels.seconds(
            op, num_records, record_size, workspace_bytes=workspace_bytes
        )
        key = label or op.value
        self._breakdown[key] = self._breakdown.get(key, 0.0) + seconds

    def add_seconds(self, label: str, seconds: float) -> None:
        if seconds > 0:
            self._breakdown[label] = self._breakdown.get(label, 0.0) + seconds

    @property
    def total(self) -> float:
        return sum(self._breakdown.values())

    @property
    def breakdown(self) -> Dict[str, float]:
        return dict(self._breakdown)


@dataclass(frozen=True)
class JoinContext:
    """All inputs a join algorithm needs to produce its true cost.

    The convention follows the paper: ``big`` is relation R and ``small``
    is relation S (the candidate for broadcasting).

    Attributes:
        env: Execution environment.
        big: Shape of the larger input R.
        small: Shape of the smaller input S.
        join_column_big: R's join column name.
        join_column_small: S's join column name.
        output_rows: True output cardinality.
        output_row_size: Bytes per output row.
        is_equi: False for cartesian/theta joins.
        skewed: True when the join key distribution is heavily skewed.
    """

    env: ExecutionEnv
    big: RelShape
    small: RelShape
    join_column_big: str
    join_column_small: str
    output_rows: int
    output_row_size: int
    is_equi: bool = True
    skewed: bool = False

    @property
    def small_fits_memory(self) -> bool:
        """True when a hash table of S fits the per-task memory budget."""
        return self.env.kernels.hash_build.fits(self.small.total_bytes)

    @property
    def buckets_aligned(self) -> bool:
        """True when both sides are partitioned on the join columns."""
        return (
            self.big.partitioned_by == self.join_column_big
            and self.small.partitioned_by == self.join_column_small
        )

    @property
    def buckets_sorted(self) -> bool:
        """True when, additionally, both sides are sorted on the join key."""
        return (
            self.buckets_aligned
            and self.big.sorted_by == self.join_column_big
            and self.small.sorted_by == self.join_column_small
        )


@dataclass(frozen=True)
class AggregateContext:
    """Inputs for an aggregation algorithm's cost."""

    env: ExecutionEnv
    input: RelShape
    num_groups: int
    output_row_size: int

    @property
    def groups_fit_memory(self) -> bool:
        workspace = self.num_groups * self.output_row_size
        return self.env.kernels.hash_build.fits(workspace)


@dataclass(frozen=True)
class ScanContext:
    """Inputs for a scan/filter/project pass."""

    env: ExecutionEnv
    input: RelShape
    output_rows: int
    output_row_size: int


class JoinAlgorithm(abc.ABC):
    """A physical join implementation with a truth-level cost model."""

    name: str = "join"

    def __init__(self, name: Optional[str] = None) -> None:
        if name is not None:
            self.name = name

    @abc.abstractmethod
    def applicable(self, ctx: JoinContext) -> bool:
        """Whether the engine could select this algorithm for ``ctx``."""

    @abc.abstractmethod
    def cost(self, ctx: JoinContext) -> CostAccumulator:
        """True cost breakdown (no noise, no startup — engine adds those)."""


# ----------------------------------------------------------------------
# Hive-style algorithms (also reused by Spark where noted)
# ----------------------------------------------------------------------
class BroadcastJoin(JoinAlgorithm):
    """Fig. 6: broadcast S to all workers, hash-build S, probe R blocks."""

    name = "broadcast_join"

    def applicable(self, ctx: JoinContext) -> bool:
        return ctx.is_equi and ctx.small_fits_memory

    def cost(self, ctx: JoinContext) -> CostAccumulator:
        env = ctx.env
        acc = CostAccumulator(env)
        tasks = env.num_tasks(ctx.big)
        waves = env.waves(tasks)
        block_rows = env.block_rows(ctx.big)
        task_output = math.ceil(ctx.output_rows / tasks) if tasks else 0
        workspace = ctx.small.total_bytes

        acc.add(SubOp.READ_DFS, ctx.small.num_rows, ctx.small.row_size)
        acc.add(SubOp.BROADCAST, ctx.small.num_rows, ctx.small.row_size)
        acc.add(SubOp.READ_LOCAL, ctx.small.num_rows, ctx.small.row_size, repeat=waves)
        acc.add(
            SubOp.HASH_BUILD,
            ctx.small.num_rows,
            ctx.small.row_size,
            repeat=waves,
            workspace_bytes=workspace,
        )
        acc.add(SubOp.READ_LOCAL, block_rows, ctx.big.row_size, repeat=waves)
        acc.add(SubOp.HASH_PROBE, block_rows, ctx.big.row_size, repeat=waves)
        acc.add(SubOp.WRITE_DFS, task_output, ctx.output_row_size, repeat=waves)
        return acc


class ShuffleJoin(JoinAlgorithm):
    """Hive's common (reduce-side) join: shuffle both sides, sort, merge."""

    name = "shuffle_join"

    def applicable(self, ctx: JoinContext) -> bool:
        return ctx.is_equi

    def cost(self, ctx: JoinContext) -> CostAccumulator:
        env = ctx.env
        acc = CostAccumulator(env)
        slots = env.slots

        for shape in (ctx.big, ctx.small):
            tasks = env.num_tasks(shape)
            waves = env.waves(tasks)
            block_rows = env.block_rows(shape)
            acc.add(SubOp.READ_DFS, block_rows, shape.row_size, repeat=waves)
            acc.add(SubOp.SHUFFLE, block_rows, shape.row_size, repeat=waves)

        per_reducer_big = math.ceil(ctx.big.num_rows / slots)
        per_reducer_small = math.ceil(ctx.small.num_rows / slots)
        per_reducer_out = math.ceil(ctx.output_rows / slots)
        acc.add(SubOp.SORT, per_reducer_big, ctx.big.row_size)
        acc.add(SubOp.SORT, per_reducer_small, ctx.small.row_size)
        acc.add(SubOp.REC_MERGE, per_reducer_out, ctx.output_row_size)
        acc.add(SubOp.WRITE_DFS, per_reducer_out, ctx.output_row_size)
        return acc


class BucketMapJoin(JoinAlgorithm):
    """Hive: both sides bucketed on the key; hash-join aligned buckets."""

    name = "bucket_map_join"

    def applicable(self, ctx: JoinContext) -> bool:
        return ctx.is_equi and ctx.buckets_aligned

    def cost(self, ctx: JoinContext) -> CostAccumulator:
        env = ctx.env
        acc = CostAccumulator(env)
        tasks = env.num_tasks(ctx.big)
        waves = env.waves(tasks)
        block_rows = env.block_rows(ctx.big)
        bucket_rows = math.ceil(ctx.small.num_rows / max(1, tasks))
        task_output = math.ceil(ctx.output_rows / tasks) if tasks else 0
        workspace = bucket_rows * ctx.small.row_size

        acc.add(SubOp.READ_DFS, bucket_rows, ctx.small.row_size, repeat=waves)
        acc.add(
            SubOp.HASH_BUILD,
            bucket_rows,
            ctx.small.row_size,
            repeat=waves,
            workspace_bytes=workspace,
        )
        acc.add(SubOp.READ_DFS, block_rows, ctx.big.row_size, repeat=waves)
        acc.add(SubOp.HASH_PROBE, block_rows, ctx.big.row_size, repeat=waves)
        acc.add(SubOp.WRITE_DFS, task_output, ctx.output_row_size, repeat=waves)
        return acc


class SortMergeBucketJoin(JoinAlgorithm):
    """Hive: bucketed *and* sorted on the key; stream-merge aligned buckets."""

    name = "sort_merge_bucket_join"

    def applicable(self, ctx: JoinContext) -> bool:
        return ctx.is_equi and ctx.buckets_sorted

    def cost(self, ctx: JoinContext) -> CostAccumulator:
        env = ctx.env
        acc = CostAccumulator(env)
        tasks = env.num_tasks(ctx.big)
        waves = env.waves(tasks)
        block_rows = env.block_rows(ctx.big)
        bucket_rows = math.ceil(ctx.small.num_rows / max(1, tasks))
        task_output = math.ceil(ctx.output_rows / tasks) if tasks else 0

        acc.add(SubOp.READ_DFS, block_rows, ctx.big.row_size, repeat=waves)
        acc.add(SubOp.READ_DFS, bucket_rows, ctx.small.row_size, repeat=waves)
        acc.add(SubOp.SCAN, block_rows, ctx.big.row_size, repeat=waves)
        acc.add(SubOp.SCAN, bucket_rows, ctx.small.row_size, repeat=waves)
        acc.add(SubOp.REC_MERGE, task_output, ctx.output_row_size, repeat=waves)
        acc.add(SubOp.WRITE_DFS, task_output, ctx.output_row_size, repeat=waves)
        return acc


class SkewJoin(JoinAlgorithm):
    """Hive: shuffle join plus a broadcast pass for the skewed keys."""

    name = "skew_join"

    def applicable(self, ctx: JoinContext) -> bool:
        return ctx.is_equi and ctx.skewed

    def cost(self, ctx: JoinContext) -> CostAccumulator:
        acc = ShuffleJoin().cost(ctx)
        # Second map-side pass over the skewed fraction of R (model: 20%).
        env = ctx.env
        skew_rows = math.ceil(ctx.big.num_rows * 0.2)
        acc.add(SubOp.READ_DFS, skew_rows, ctx.big.row_size, label="skew_pass")
        acc.add(SubOp.HASH_PROBE, skew_rows, ctx.big.row_size, label="skew_pass")
        return acc


# ----------------------------------------------------------------------
# Spark-specific algorithms
# ----------------------------------------------------------------------
class ShuffleHashJoin(JoinAlgorithm):
    """Spark: shuffle both sides, hash-build the small partition, probe."""

    name = "shuffle_hash_join"

    def applicable(self, ctx: JoinContext) -> bool:
        # Spark requires the per-partition build side to fit in memory.
        per_partition = ctx.small.total_bytes / max(1, ctx.env.slots)
        return ctx.is_equi and ctx.env.kernels.hash_build.fits(int(per_partition))

    def cost(self, ctx: JoinContext) -> CostAccumulator:
        env = ctx.env
        acc = CostAccumulator(env)
        slots = env.slots

        for shape in (ctx.big, ctx.small):
            tasks = env.num_tasks(shape)
            waves = env.waves(tasks)
            block_rows = env.block_rows(shape)
            acc.add(SubOp.READ_DFS, block_rows, shape.row_size, repeat=waves)
            acc.add(SubOp.SHUFFLE, block_rows, shape.row_size, repeat=waves)

        per_small = math.ceil(ctx.small.num_rows / slots)
        per_big = math.ceil(ctx.big.num_rows / slots)
        per_out = math.ceil(ctx.output_rows / slots)
        workspace = per_small * ctx.small.row_size
        acc.add(
            SubOp.HASH_BUILD,
            per_small,
            ctx.small.row_size,
            workspace_bytes=workspace,
        )
        acc.add(SubOp.HASH_PROBE, per_big, ctx.big.row_size)
        acc.add(SubOp.WRITE_DFS, per_out, ctx.output_row_size)
        return acc


class SortMergeJoin(JoinAlgorithm):
    """Spark's default equi-join: shuffle, sort both sides, merge."""

    name = "sort_merge_join"

    def applicable(self, ctx: JoinContext) -> bool:
        return ctx.is_equi

    def cost(self, ctx: JoinContext) -> CostAccumulator:
        return ShuffleJoin().cost(ctx)


class BroadcastNestedLoopJoin(JoinAlgorithm):
    """Spark: broadcast S and nested-loop every (r, s) pair. Non-equi only."""

    name = "broadcast_nested_loop_join"

    def applicable(self, ctx: JoinContext) -> bool:
        return not ctx.is_equi and ctx.small_fits_memory

    def cost(self, ctx: JoinContext) -> CostAccumulator:
        env = ctx.env
        acc = CostAccumulator(env)
        acc.add(SubOp.READ_DFS, ctx.small.num_rows, ctx.small.row_size)
        acc.add(SubOp.BROADCAST, ctx.small.num_rows, ctx.small.row_size)
        pairs = ctx.big.num_rows * ctx.small.num_rows
        per_slot_pairs = math.ceil(pairs / env.slots)
        acc.add(SubOp.SCAN, per_slot_pairs, ctx.small.row_size)
        acc.add(
            SubOp.WRITE_DFS,
            math.ceil(ctx.output_rows / env.slots),
            ctx.output_row_size,
        )
        return acc


class CartesianProductJoin(JoinAlgorithm):
    """Spark: full shuffle-based cartesian product. Non-equi only."""

    name = "cartesian_product_join"

    def applicable(self, ctx: JoinContext) -> bool:
        return not ctx.is_equi

    def cost(self, ctx: JoinContext) -> CostAccumulator:
        env = ctx.env
        acc = CostAccumulator(env)
        for shape in (ctx.big, ctx.small):
            acc.add(SubOp.READ_DFS, shape.num_rows, shape.row_size)
            acc.add(SubOp.SHUFFLE, shape.num_rows, shape.row_size)
        pairs = ctx.big.num_rows * ctx.small.num_rows
        per_slot_pairs = math.ceil(pairs / env.slots)
        acc.add(SubOp.SCAN, per_slot_pairs, ctx.small.row_size)
        acc.add(
            SubOp.WRITE_DFS,
            math.ceil(ctx.output_rows / env.slots),
            ctx.output_row_size,
        )
        return acc


# ----------------------------------------------------------------------
# Aggregation and scan passes
# ----------------------------------------------------------------------
class HashAggregate:
    """Map-side hash partial aggregation, shuffle partials, final merge."""

    name = "hash_aggregate"

    def applicable(self, ctx: AggregateContext) -> bool:
        return ctx.groups_fit_memory

    def cost(self, ctx: AggregateContext) -> CostAccumulator:
        env = ctx.env
        acc = CostAccumulator(env)
        tasks = env.num_tasks(ctx.input)
        waves = env.waves(tasks)
        block_rows = env.block_rows(ctx.input)
        workspace = ctx.num_groups * ctx.output_row_size
        per_task_partials = min(block_rows, ctx.num_groups)
        total_partials = per_task_partials * max(1, tasks)
        slots = env.slots

        acc.add(SubOp.READ_DFS, block_rows, ctx.input.row_size, repeat=waves)
        acc.add(
            SubOp.HASH_BUILD,
            block_rows,
            ctx.input.row_size,
            repeat=waves,
            workspace_bytes=workspace,
        )
        acc.add(SubOp.SHUFFLE, total_partials, ctx.output_row_size)
        acc.add(
            SubOp.REC_MERGE,
            math.ceil(total_partials / slots),
            ctx.output_row_size,
        )
        acc.add(
            SubOp.WRITE_DFS,
            math.ceil(ctx.num_groups / slots),
            ctx.output_row_size,
        )
        return acc


class SortAggregate:
    """Shuffle raw rows, sort per reducer, stream-aggregate."""

    name = "sort_aggregate"

    def applicable(self, ctx: AggregateContext) -> bool:
        return True

    def cost(self, ctx: AggregateContext) -> CostAccumulator:
        env = ctx.env
        acc = CostAccumulator(env)
        tasks = env.num_tasks(ctx.input)
        waves = env.waves(tasks)
        block_rows = env.block_rows(ctx.input)
        slots = env.slots
        per_reducer = math.ceil(ctx.input.num_rows / slots)

        acc.add(SubOp.READ_DFS, block_rows, ctx.input.row_size, repeat=waves)
        acc.add(SubOp.SHUFFLE, block_rows, ctx.input.row_size, repeat=waves)
        acc.add(SubOp.SORT, per_reducer, ctx.input.row_size)
        acc.add(SubOp.REC_MERGE, per_reducer, ctx.output_row_size)
        acc.add(
            SubOp.WRITE_DFS,
            math.ceil(ctx.num_groups / slots),
            ctx.output_row_size,
        )
        return acc


class ScanPass:
    """Filter/project table scan with QueryGrid-style push-down."""

    name = "scan"

    def cost(self, ctx: ScanContext) -> CostAccumulator:
        env = ctx.env
        acc = CostAccumulator(env)
        tasks = env.num_tasks(ctx.input)
        waves = env.waves(tasks)
        block_rows = env.block_rows(ctx.input)
        task_output = math.ceil(ctx.output_rows / tasks) if tasks else 0

        acc.add(SubOp.READ_DFS, block_rows, ctx.input.row_size, repeat=waves)
        acc.add(SubOp.SCAN, block_rows, ctx.input.row_size, repeat=waves)
        acc.add(SubOp.WRITE_DFS, task_output, ctx.output_row_size, repeat=waves)
        return acc


#: The five Hive join algorithms of §4.
HIVE_JOIN_ALGORITHMS: Tuple[JoinAlgorithm, ...] = (
    SortMergeBucketJoin(),
    BucketMapJoin(),
    BroadcastJoin(),
    SkewJoin(),
    ShuffleJoin(),
)

#: The five Spark join algorithms of §4.
SPARK_JOIN_ALGORITHMS: Tuple[JoinAlgorithm, ...] = (
    # Spark's Broadcast Hash Join shares the Fig. 6 structure.
    BroadcastJoin(name="broadcast_hash_join"),
    ShuffleHashJoin(),
    SortMergeJoin(),
    BroadcastNestedLoopJoin(),
    CartesianProductJoin(),
)
