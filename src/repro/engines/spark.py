"""SparkSQL remote-system simulator.

Spark pipelines operators in memory: lower job startup than Hive, cheaper
shuffles, and its own five join algorithms (§4): Broadcast Hash Join,
Shuffle Hash Join, SortMerge Join, Broadcast NestedLoop Join, and
Cartesian Product Join.  The paper lists SparkSQL as near-term future
work; we include it to exercise the hybrid costing across two openbox
engines.
"""

from __future__ import annotations

from typing import Optional

from repro.cluster.cluster import Cluster, paper_cluster
from repro.engines.base import EngineCapabilities
from repro.engines.execution import DfsEngine, EngineTuning
from repro.engines.physical import SPARK_JOIN_ALGORITHMS
from repro.engines.planner import PhysicalPlanner
from repro.engines.subops import spark_kernels


class SparkEngine(DfsEngine):
    """A SparkSQL remote system over a simulated cluster."""

    def __init__(
        self,
        name: str = "spark",
        cluster: Optional[Cluster] = None,
        tuning: Optional[EngineTuning] = None,
        seed: int = 0,
        noise_sigma: Optional[float] = None,
    ) -> None:
        cluster = cluster or paper_cluster(name="spark-vm")
        tuning = tuning or EngineTuning(
            job_startup=0.7,
            wave_startup=0.12,
            overlap_factor=0.90,
            noise_sigma=0.04,
        )
        if noise_sigma is not None:
            tuning = EngineTuning(
                job_startup=tuning.job_startup,
                wave_startup=tuning.wave_startup,
                overlap_factor=tuning.overlap_factor,
                noise_sigma=noise_sigma,
            )
        super().__init__(
            name=name,
            cluster=cluster,
            kernels=spark_kernels(cluster.per_task_memory),
            planner=PhysicalPlanner(SPARK_JOIN_ALGORITHMS),
            tuning=tuning,
            capabilities=EngineCapabilities(),
            seed=seed,
        )
