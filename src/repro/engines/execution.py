"""Shared execution model for DFS-backed engines (Hive, Spark).

:class:`DfsEngine` turns a logical plan into elapsed seconds:

1. resolve the true shape (rows, row size) of every plan node with the
   exact-statistics cardinality model;
2. pick a physical algorithm per operator via the engine's internal
   planner;
3. compose the algorithm's ground-truth sub-op cost over the cluster's
   task-wave schedule;
4. add per-job startup and per-wave scheduling overhead;
5. apply a pipeline-overlap discount (real engines overlap I/O with CPU,
   which pure formula composition does not capture — this is what makes
   the paper's sub-op estimates *slightly overestimate*, Fig. 13(g));
6. multiply by multiplicative Gaussian measurement noise.

Primitive measurement queries (Fig. 5) bypass steps 2 and 5: they are
single-sub-op passes whose elapsed time the sub-op trainer decomposes.
"""

from __future__ import annotations

import logging
from dataclasses import dataclass, replace
from typing import Dict, Optional, Tuple

import numpy as np

from repro import obs
from repro.cluster.cluster import Cluster
from repro.cluster.dfs import DistributedFileSystem
from repro.data.table import TableSpec
from repro.engines.base import (
    EngineCapabilities,
    PrimitiveKind,
    PrimitiveQuery,
    QueryResult,
    RemoteSystem,
)
from repro.engines.physical import (
    AggregateContext,
    CostAccumulator,
    ExecutionEnv,
    JoinContext,
    PipelinedEnv,
    RelShape,
    ScanContext,
    ScanPass,
)
from repro.engines.planner import PhysicalPlanner
from repro.engines.subops import KernelSet, SubOp
from repro.exceptions import ConfigurationError, UnsupportedOperationError
from repro.sql.cardinality import CardinalityEstimator
from repro.sql.logical import Aggregate, Filter, Join, LogicalPlan, Project, Scan

logger = logging.getLogger(__name__)


@dataclass(frozen=True)
class EngineTuning:
    """Per-engine execution overhead constants.

    Attributes:
        job_startup: Seconds to launch one operator job (JVM spin-up,
            scheduling, compilation).
        wave_startup: Seconds of scheduling overhead per task wave.
        overlap_factor: Multiplier < 1 applied to composed multi-sub-op
            jobs, modeling I/O/CPU pipeline overlap.
        noise_sigma: Relative standard deviation of measurement noise.
        straggler_probability: Chance that a query hits a straggler (a
            slow task, GC pause, contended node) and takes
            ``straggler_factor`` times longer.  Failure injection for
            robustness tests; off by default.
        straggler_factor: Slowdown multiplier of a straggler-hit query.
    """

    job_startup: float = 1.5
    wave_startup: float = 0.3
    overlap_factor: float = 0.93
    noise_sigma: float = 0.04
    straggler_probability: float = 0.0
    straggler_factor: float = 3.0

    def __post_init__(self) -> None:
        if self.job_startup < 0 or self.wave_startup < 0:
            raise ConfigurationError("startup overheads must be >= 0")
        if not 0 < self.overlap_factor <= 1:
            raise ConfigurationError("overlap_factor must be in (0, 1]")
        if self.noise_sigma < 0:
            raise ConfigurationError("noise_sigma must be >= 0")
        if not 0 <= self.straggler_probability < 1:
            raise ConfigurationError("straggler_probability must be in [0, 1)")
        if self.straggler_factor < 1:
            raise ConfigurationError("straggler_factor must be >= 1")


@dataclass
class _NodeResult:
    """Internal result of costing one plan node."""

    shape: RelShape
    seconds: float
    breakdown: Dict[str, float]
    algorithm: str


class DfsEngine(RemoteSystem):
    """MapReduce-style engine over a simulated cluster and DFS."""

    def __init__(
        self,
        name: str,
        cluster: Cluster,
        kernels: KernelSet,
        planner: PhysicalPlanner,
        tuning: EngineTuning = EngineTuning(),
        capabilities: Optional[EngineCapabilities] = None,
        seed: int = 0,
        enforce_dfs_capacity: bool = False,
        pipelined: bool = False,
    ) -> None:
        super().__init__(name, capabilities)
        self.cluster = cluster
        self.dfs = DistributedFileSystem(cluster)
        env_class = PipelinedEnv if pipelined else ExecutionEnv
        self.env = env_class(cluster, kernels)
        self.planner = planner
        self.tuning = tuning
        self._enforce_dfs_capacity = enforce_dfs_capacity
        self._rng = np.random.default_rng(seed)
        self._estimator = CardinalityEstimator(self._catalog)
        self._scan_pass = ScanPass()
        #: When set (like a Hive join hint), every join uses the named
        #: physical algorithm instead of the planner's choice.  The
        #: paper's Fig. 14 experiment pins the merge join this way.
        self.forced_join_algorithm: Optional[str] = None

    def retune(self, **overrides: float) -> EngineTuning:
        """Swap execution-overhead constants mid-flight.

        Models an engine upgrade or configuration change (faster JVM
        startup, a different container scheduler): subsequent executions
        use the new constants while every fitted cost model still
        describes the old behaviour.  Unknown field names are rejected
        by ``dataclasses.replace``.  Returns the new tuning.
        """
        self.tuning = replace(self.tuning, **overrides)
        return self.tuning

    # ------------------------------------------------------------------
    # Storage hooks
    # ------------------------------------------------------------------
    def _on_table_loaded(self, spec: TableSpec) -> None:
        path = spec.dfs_path or f"/warehouse/{spec.name}"
        if self.dfs.exists(path):
            return
        if not self._enforce_dfs_capacity and (
            self.dfs.free_raw_bytes
            < spec.size_bytes * self.dfs.replication
        ):
            # Experiments may exceed the modeled disk; placement still
            # happens but capacity accounting is best-effort.
            return
        self.dfs.create_file(path, spec.size_bytes)

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def _execute(self, plan: LogicalPlan) -> QueryResult:
        with obs.get_tracer().span("engine.execute", engine=self.name) as span:
            result = self._cost_node(plan)
            elapsed = self._apply_noise(result.seconds)
            self._observe_execution(result, elapsed, span)
        return QueryResult(
            elapsed_seconds=elapsed,
            output_rows=result.shape.num_rows,
            output_row_size=result.shape.row_size,
            algorithm=result.algorithm,
            breakdown=result.breakdown,
        )

    def _observe_execution(
        self, result: _NodeResult, elapsed: float, span: obs.Span
    ) -> None:
        obs.counter("engine.execute.calls").inc()
        obs.histogram(
            "engine.execute_seconds",
            buckets=obs.DEFAULT_SECONDS_BUCKETS,
            help="simulated elapsed seconds per executed plan",
        ).observe(elapsed)
        for op_name, seconds in result.breakdown.items():
            obs.counter(
                f"engine.subop_seconds.{op_name}",
                help="simulated seconds attributed to this sub-op",
            ).inc(seconds)
        span.add_simulated(elapsed)
        span.set(algorithm=result.algorithm, rows=result.shape.num_rows)
        total = sum(result.breakdown.values())
        if total > 0 and span.enabled:
            span.set(
                subop_shares={
                    op: round(seconds / total, 4)
                    for op, seconds in sorted(result.breakdown.items())
                }
            )
            # Full-precision per-sub-op simulated seconds: the profiler
            # aggregates these into the query's cost-breakdown report.
            span.set(
                _subop_seconds={
                    op: seconds
                    for op, seconds in sorted(result.breakdown.items())
                }
            )
        logger.debug(
            "%s executed plan via %s in %.3fs (simulated)",
            self.name,
            result.algorithm,
            elapsed,
        )

    def _cost_node(self, node: LogicalPlan) -> _NodeResult:
        if isinstance(node, Scan):
            return self._cost_scan(node)
        if isinstance(node, (Filter, Project)):
            return self._cost_row_pass(node)
        if isinstance(node, Join):
            return self._cost_join(node)
        if isinstance(node, Aggregate):
            return self._cost_aggregate(node)
        raise UnsupportedOperationError(
            f"engine {self.name!r} cannot execute node {type(node).__name__}"
        )

    def _cost_scan(self, node: Scan) -> _NodeResult:
        spec = self._catalog.table(node.table)
        estimate = self._estimator.estimate(node)
        base = RelShape(
            num_rows=spec.num_rows,
            row_size=spec.byte_row_size,
            partitioned_by=spec.partitioned_by,
            sorted_by=spec.sorted_by,
        )
        out = RelShape(
            num_rows=estimate.num_rows,
            row_size=estimate.row_size,
            partitioned_by=spec.partitioned_by,
            sorted_by=spec.sorted_by,
        )
        if node.predicate is None and not node.projection:
            # A bare scan feeding a parent operator costs nothing itself:
            # the parent's formula reads the table (its rD terms).
            return _NodeResult(shape=base, seconds=0.0, breakdown={}, algorithm="")
        acc = self._scan_pass.cost(
            ScanContext(
                env=self.env,
                input=base,
                output_rows=out.num_rows,
                output_row_size=out.row_size,
            )
        )
        seconds = self._job_seconds(acc, main_input=base)
        return _NodeResult(
            shape=out, seconds=seconds, breakdown=acc.breakdown, algorithm="scan"
        )

    def _cost_row_pass(self, node) -> _NodeResult:
        child = self._cost_node(node.children[0])
        estimate = self._estimator.estimate(node)
        out = RelShape(num_rows=estimate.num_rows, row_size=estimate.row_size)
        acc = self._scan_pass.cost(
            ScanContext(
                env=self.env,
                input=child.shape,
                output_rows=out.num_rows,
                output_row_size=out.row_size,
            )
        )
        seconds = child.seconds + self._job_seconds(acc, main_input=child.shape)
        breakdown = _merge(child.breakdown, acc.breakdown)
        return _NodeResult(
            shape=out, seconds=seconds, breakdown=breakdown, algorithm="scan"
        )

    def _cost_join(self, node: Join) -> _NodeResult:
        left = self._cost_node(node.left)
        right = self._cost_node(node.right)
        estimate = self._estimator.estimate(node)
        out = RelShape(num_rows=estimate.num_rows, row_size=estimate.row_size)

        if left.shape.total_bytes >= right.shape.total_bytes:
            big, small = left.shape, right.shape
            big_col = node.condition.left_column
            small_col = node.condition.right_column
        else:
            big, small = right.shape, left.shape
            big_col = node.condition.right_column
            small_col = node.condition.left_column

        ctx = JoinContext(
            env=self.env,
            big=big,
            small=small,
            join_column_big=big_col,
            join_column_small=small_col,
            output_rows=out.num_rows,
            output_row_size=out.row_size,
            skewed=self._join_key_skewed(node),
        )
        if self.forced_join_algorithm is not None:
            algorithm = self._algorithm_by_name(self.forced_join_algorithm)
        else:
            algorithm = self.planner.choose_join(ctx)
        acc = algorithm.cost(ctx)
        seconds = (
            left.seconds
            + right.seconds
            + self._job_seconds(acc, main_input=big)
        )
        breakdown = _merge(left.breakdown, right.breakdown, acc.breakdown)
        return _NodeResult(
            shape=out,
            seconds=seconds,
            breakdown=breakdown,
            algorithm=algorithm.name,
        )

    def _cost_aggregate(self, node: Aggregate) -> _NodeResult:
        child = self._cost_node(node.input)
        estimate = self._estimator.estimate(node)
        out = RelShape(num_rows=estimate.num_rows, row_size=estimate.row_size)
        ctx = AggregateContext(
            env=self.env,
            input=child.shape,
            num_groups=out.num_rows,
            output_row_size=out.row_size,
        )
        algorithm = self.planner.choose_aggregate(ctx)
        acc = algorithm.cost(ctx)
        seconds = child.seconds + self._job_seconds(acc, main_input=child.shape)
        breakdown = _merge(child.breakdown, acc.breakdown)
        return _NodeResult(
            shape=out,
            seconds=seconds,
            breakdown=breakdown,
            algorithm=algorithm.name,
        )

    def _join_key_skewed(self, node: Join) -> bool:
        """True when either join-key column's distribution is skewed."""
        left = self._estimator.estimate(node.left)
        right = self._estimator.estimate(node.right)
        left_key = left.columns.get(node.condition.left_column)
        right_key = right.columns.get(node.condition.right_column)
        return bool(
            (left_key is not None and left_key.skewed)
            or (right_key is not None and right_key.skewed)
        )

    def _algorithm_by_name(self, name: str):
        for algorithm in self.planner.join_algorithms:
            if algorithm.name == name:
                return algorithm
        raise UnsupportedOperationError(
            f"engine {self.name!r} has no join algorithm {name!r}"
        )

    # ------------------------------------------------------------------
    # Primitive measurement queries (Fig. 5)
    # ------------------------------------------------------------------
    def execute_primitive(self, query: PrimitiveQuery) -> float:
        shape = RelShape(num_rows=query.num_records, row_size=query.record_size)
        tasks = self.env.num_tasks(shape)
        waves = self.env.waves(tasks)
        block_rows = self.env.block_rows(shape)
        acc = CostAccumulator(self.env)

        def per_task(op: SubOp, workspace: int = 0) -> None:
            acc.add(
                op,
                block_rows,
                query.record_size,
                repeat=waves,
                workspace_bytes=workspace,
            )

        per_task(SubOp.READ_DFS)
        extra = _PRIMITIVE_EXTRAS[query.kind]
        for op in extra:
            if op is SubOp.HASH_BUILD:
                # The hash table covers the whole input relation (as in a
                # broadcast-join build), so large inputs exercise the
                # spilling regime of Fig. 13(f).
                per_task(op, workspace=shape.total_bytes)
            else:
                per_task(op)

        overhead = self.tuning.job_startup + self.tuning.wave_startup * waves
        obs.counter(
            "engine.primitive.calls",
            help="primitive measurement queries executed (Fig. 5)",
        ).inc()
        return self._apply_noise(acc.total + overhead)

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _job_seconds(self, acc: CostAccumulator, main_input: RelShape) -> float:
        waves = self.env.waves(self.env.num_tasks(main_input))
        overhead = self.tuning.job_startup + self.tuning.wave_startup * waves
        return acc.total * self.tuning.overlap_factor + overhead

    def _apply_noise(self, seconds: float) -> float:
        if self.tuning.straggler_probability > 0 and (
            float(self._rng.random()) < self.tuning.straggler_probability
        ):
            seconds *= self.tuning.straggler_factor
        if self.tuning.noise_sigma == 0:
            return seconds
        factor = 1.0 + self.tuning.noise_sigma * float(self._rng.standard_normal())
        return max(1e-6, seconds * factor)


_PRIMITIVE_EXTRAS: Dict[PrimitiveKind, Tuple[SubOp, ...]] = {
    PrimitiveKind.READ_DFS: (),
    PrimitiveKind.READ_WRITE_DFS: (SubOp.WRITE_DFS,),
    PrimitiveKind.READ_WRITE_LOCAL: (SubOp.WRITE_LOCAL,),
    PrimitiveKind.READ_LOCAL: (SubOp.WRITE_LOCAL, SubOp.READ_LOCAL),
    PrimitiveKind.READ_BROADCAST: (SubOp.BROADCAST,),
    PrimitiveKind.READ_HASH_BUILD: (SubOp.HASH_BUILD,),
    PrimitiveKind.READ_HASH_PROBE: (SubOp.HASH_PROBE,),
    PrimitiveKind.READ_SHUFFLE: (SubOp.SHUFFLE,),
    PrimitiveKind.READ_SORT: (SubOp.SORT,),
    PrimitiveKind.READ_SCAN: (SubOp.SCAN,),
    PrimitiveKind.READ_MERGE: (SubOp.REC_MERGE,),
}


def _merge(*breakdowns: Dict[str, float]) -> Dict[str, float]:
    merged: Dict[str, float] = {}
    for breakdown in breakdowns:
        for key, value in breakdown.items():
            merged[key] = merged.get(key, 0.0) + value
    return merged
