"""Ground-truth sub-operator kernels of the simulated engines.

A *kernel* gives the true per-record processing time (microseconds) of one
primitive sub-operator — the quantities the paper's Figs. 7 and 13 measure
on the Hive cluster.  The default Hive kernel coefficients are calibrated
to the paper's reported linear fits so that the reproduced figures match
the published shapes:

=============  ===========================================  ==========
Sub-op         Paper fit (µs vs record size x, bytes)        Figure
=============  ===========================================  ==========
ReadDFS        ``0.0041 x + 0.6323``                         Fig. 7(b)
WriteDFS       ``0.0314 x + 0.7403``                         Fig. 13(c)
Shuffle        ``0.0126 x + 5.2551``                         Fig. 13(d)
RecMerge       ``0.0344 x + 36.701``                         Fig. 13(e)
HashBuild      in-memory  ``0.0248 x + 18.241``              Fig. 13(f)
               spilling   ``0.1821 x - 51.614``              Fig. 13(f)
=============  ===========================================  ==========

Kernels not reported in the paper (ReadLocal, WriteLocal, Broadcast, Sort,
Scan, HashProbe) are set to hardware-plausible values consistent with the
reported ones (local I/O cheaper than DFS I/O, probe cheaper than build).

These numbers are the *machine truth*.  The costing module never reads
them; it learns approximations from observed query times.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, Mapping

from repro.exceptions import ConfigurationError


class SubOp(enum.Enum):
    """The sub-operator vocabulary of Fig. 5.

    The first six are the paper's *Basic* (mandatory) sub-ops; the rest
    are *Specific* (optional).
    """

    READ_DFS = "read_dfs"
    WRITE_DFS = "write_dfs"
    READ_LOCAL = "read_local"
    WRITE_LOCAL = "write_local"
    SHUFFLE = "shuffle"
    BROADCAST = "broadcast"
    SORT = "sort"
    SCAN = "scan"
    HASH_BUILD = "hash_build"
    HASH_PROBE = "hash_probe"
    REC_MERGE = "rec_merge"

    @property
    def is_basic(self) -> bool:
        """True for the mandatory sub-ops of Fig. 5."""
        return self in _BASIC_SUBOPS


_BASIC_SUBOPS = frozenset(
    {
        SubOp.READ_DFS,
        SubOp.WRITE_DFS,
        SubOp.READ_LOCAL,
        SubOp.WRITE_LOCAL,
        SubOp.SHUFFLE,
        SubOp.BROADCAST,
    }
)

#: Paper's Fig. 5 one-letter notation, used in formula rendering.
SUBOP_NOTATION: Mapping[SubOp, str] = {
    SubOp.READ_DFS: "rD",
    SubOp.WRITE_DFS: "wD",
    SubOp.READ_LOCAL: "rL",
    SubOp.WRITE_LOCAL: "wL",
    SubOp.SHUFFLE: "f",
    SubOp.BROADCAST: "b",
    SubOp.SORT: "o",
    SubOp.SCAN: "c",
    SubOp.HASH_BUILD: "hI",
    SubOp.HASH_PROBE: "hP",
    SubOp.REC_MERGE: "m",
}


@dataclass(frozen=True)
class SubOpKernel:
    """Linear per-record cost: ``slope * record_size + intercept`` µs.

    Attributes:
        slope: Microseconds per byte of record size.
        intercept: Fixed per-record microseconds.
    """

    slope: float
    intercept: float

    def __post_init__(self) -> None:
        if self.slope < 0:
            raise ConfigurationError(f"slope must be >= 0, got {self.slope}")

    def per_record_us(self, record_size: int, **_: object) -> float:
        """True per-record time in microseconds for the given record size."""
        if record_size < 1:
            raise ConfigurationError("record_size must be >= 1")
        return max(0.0, self.slope * record_size + self.intercept)

    def total_seconds(self, num_records: int, record_size: int, **kwargs: object) -> float:
        """Total time to process ``num_records`` records, in seconds."""
        if num_records < 0:
            raise ConfigurationError("num_records must be >= 0")
        return num_records * self.per_record_us(record_size, **kwargs) * 1e-6


@dataclass(frozen=True)
class TwoRegimeKernel:
    """Kernel with distinct in-memory and spilling regimes (HashBuild).

    The regime switches on the *workspace bytes* the operation needs
    relative to the per-task memory budget — the vertical dotted line of
    Fig. 13(f).

    Attributes:
        in_memory: Kernel used when the workspace fits in memory.
        spilling: Kernel used when it does not.
        memory_budget: Per-task workspace budget in bytes.
    """

    in_memory: SubOpKernel
    spilling: SubOpKernel
    memory_budget: int

    def __post_init__(self) -> None:
        if self.memory_budget <= 0:
            raise ConfigurationError("memory_budget must be positive")

    def fits(self, workspace_bytes: int) -> bool:
        return workspace_bytes <= self.memory_budget

    def per_record_us(self, record_size: int, workspace_bytes: int = 0) -> float:
        """Per-record µs; regime chosen by the required workspace size."""
        kernel = self.in_memory if self.fits(workspace_bytes) else self.spilling
        return kernel.per_record_us(record_size)

    def total_seconds(
        self, num_records: int, record_size: int, workspace_bytes: int = 0
    ) -> float:
        if num_records < 0:
            raise ConfigurationError("num_records must be >= 0")
        return num_records * self.per_record_us(record_size, workspace_bytes) * 1e-6


class KernelSet:
    """The full kernel table of one engine."""

    def __init__(
        self,
        kernels: Mapping[SubOp, SubOpKernel],
        hash_build: TwoRegimeKernel,
    ) -> None:
        missing = [op for op in SubOp if op not in kernels and op is not SubOp.HASH_BUILD]
        if missing:
            raise ConfigurationError(f"kernel set missing sub-ops: {missing}")
        self._kernels: Dict[SubOp, SubOpKernel] = dict(kernels)
        self.hash_build = hash_build

    def kernel(self, op: SubOp) -> SubOpKernel:
        if op is SubOp.HASH_BUILD:
            raise ConfigurationError(
                "HASH_BUILD is two-regime; use KernelSet.hash_build"
            )
        return self._kernels[op]

    def seconds(
        self,
        op: SubOp,
        num_records: int,
        record_size: int,
        workspace_bytes: int = 0,
    ) -> float:
        """Total true seconds for ``num_records`` applications of ``op``."""
        if op is SubOp.HASH_BUILD:
            return self.hash_build.total_seconds(
                num_records, record_size, workspace_bytes=workspace_bytes
            )
        return self._kernels[op].total_seconds(num_records, record_size)


def hive_kernels(per_task_memory: int) -> KernelSet:
    """Hive/Hadoop kernel set calibrated to the paper's measured fits."""
    kernels = {
        SubOp.READ_DFS: SubOpKernel(slope=0.0041, intercept=0.6323),
        SubOp.WRITE_DFS: SubOpKernel(slope=0.0314, intercept=0.7403),
        # Local I/O avoids the DFS protocol overhead: cheaper than DFS I/O.
        SubOp.READ_LOCAL: SubOpKernel(slope=0.0028, intercept=0.35),
        SubOp.WRITE_LOCAL: SubOpKernel(slope=0.0190, intercept=0.45),
        SubOp.SHUFFLE: SubOpKernel(slope=0.0126, intercept=5.2551),
        # Broadcast per record per receiving machine (Fig. 5's b).
        SubOp.BROADCAST: SubOpKernel(slope=0.0095, intercept=1.8),
        SubOp.SORT: SubOpKernel(slope=0.0061, intercept=2.4),
        SubOp.SCAN: SubOpKernel(slope=0.0012, intercept=0.18),
        SubOp.HASH_PROBE: SubOpKernel(slope=0.0035, intercept=1.1),
        SubOp.REC_MERGE: SubOpKernel(slope=0.0344, intercept=36.701),
    }
    hash_build = TwoRegimeKernel(
        in_memory=SubOpKernel(slope=0.0248, intercept=18.241),
        spilling=SubOpKernel(slope=0.1821, intercept=-51.614),
        memory_budget=per_task_memory,
    )
    return KernelSet(kernels, hash_build)


def spark_kernels(per_task_memory: int) -> KernelSet:
    """Spark kernel set: in-memory pipeline, so cheaper I/O and shuffle."""
    kernels = {
        SubOp.READ_DFS: SubOpKernel(slope=0.0041, intercept=0.6323),
        SubOp.WRITE_DFS: SubOpKernel(slope=0.0314, intercept=0.7403),
        SubOp.READ_LOCAL: SubOpKernel(slope=0.0016, intercept=0.2),
        SubOp.WRITE_LOCAL: SubOpKernel(slope=0.0110, intercept=0.3),
        # Spark shuffles through memory buffers; roughly half Hive's cost.
        SubOp.SHUFFLE: SubOpKernel(slope=0.0068, intercept=2.6),
        SubOp.BROADCAST: SubOpKernel(slope=0.0070, intercept=1.2),
        SubOp.SORT: SubOpKernel(slope=0.0048, intercept=1.7),
        SubOp.SCAN: SubOpKernel(slope=0.0009, intercept=0.12),
        SubOp.HASH_PROBE: SubOpKernel(slope=0.0028, intercept=0.8),
        SubOp.REC_MERGE: SubOpKernel(slope=0.0210, intercept=22.0),
    }
    hash_build = TwoRegimeKernel(
        in_memory=SubOpKernel(slope=0.0180, intercept=12.0),
        spilling=SubOpKernel(slope=0.1500, intercept=-40.0),
        memory_budget=per_task_memory,
    )
    return KernelSet(kernels, hash_build)
