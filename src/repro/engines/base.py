"""Remote-system interface.

A remote system (§2) is any engine with a SQL-like interface that can
receive a SQL operation — join, aggregation, filter, projection — perform
it, and return results.  It may or may not support every operation
(:class:`EngineCapabilities`), and its internal execution model is opaque.

:class:`PrimitiveQuery` models the crafted measurement queries of Fig. 5
(e.g. "read from HDFS and produce no output") that the sub-op costing
approach submits to extract individual sub-operator costs without
instrumenting the engine.
"""

from __future__ import annotations

import abc
import enum
from dataclasses import dataclass, field
from typing import Mapping, Optional

from repro.data.catalog import Catalog
from repro.data.table import TableSpec
from repro.exceptions import ConfigurationError, UnsupportedOperationError
from repro.sql.logical import Aggregate, Filter, Join, LogicalPlan, Project, Scan


@dataclass(frozen=True)
class EngineCapabilities:
    """What SQL operations a remote system supports (§2: a remote system
    may lack e.g. the join capability)."""

    scan: bool = True
    filter: bool = True
    project: bool = True
    join: bool = True
    aggregate: bool = True

    def supports(self, plan: LogicalPlan) -> bool:
        """True when every operator in the plan is supported."""
        for node in plan.walk():
            if isinstance(node, Scan) and not self.scan:
                return False
            if isinstance(node, Filter) and not self.filter:
                return False
            if isinstance(node, Project) and not self.project:
                return False
            if isinstance(node, Join) and not self.join:
                return False
            if isinstance(node, Aggregate) and not self.aggregate:
                return False
        return True


@dataclass(frozen=True)
class QueryResult:
    """Observable outcome of executing an operator on a remote system.

    Attributes:
        elapsed_seconds: Wall-clock elapsed execution time inside the
            remote system — the paper's costing metric.
        output_rows: Number of rows the operation produced.
        output_row_size: Bytes per output row.
        algorithm: Name of the physical algorithm the engine ran.  Real
            systems expose this through EXPLAIN output; the sub-op costing
            evaluation uses it to validate algorithm prediction, never for
            estimation itself.
        breakdown: Per-sub-op contribution to the elapsed time (seconds).
            Diagnostic only — a real blackbox system would not expose it;
            the cost-estimation module must not consume it.
    """

    elapsed_seconds: float
    output_rows: int
    output_row_size: int
    algorithm: str = ""
    breakdown: Mapping[str, float] = field(default_factory=dict)

    @property
    def output_bytes(self) -> int:
        return self.output_rows * self.output_row_size


class PrimitiveKind(enum.Enum):
    """The crafted measurement query types of Fig. 5.

    Each kind reads an input from the DFS and performs one extra primitive
    action, so subtracting the plain READ_DFS measurement isolates that
    action's cost.
    """

    READ_DFS = "read_dfs"
    READ_WRITE_DFS = "read_write_dfs"
    READ_WRITE_LOCAL = "read_write_local"
    READ_LOCAL = "read_local"
    READ_BROADCAST = "read_broadcast"
    READ_HASH_BUILD = "read_hash_build"
    READ_HASH_PROBE = "read_hash_probe"
    READ_SHUFFLE = "read_shuffle"
    READ_SORT = "read_sort"
    READ_SCAN = "read_scan"
    READ_MERGE = "read_merge"


@dataclass(frozen=True)
class PrimitiveQuery:
    """A primitive measurement query over synthetic input.

    Attributes:
        kind: Which Fig. 5 measurement pattern to run.
        num_records: Input cardinality.
        record_size: Input record size in bytes.
    """

    kind: PrimitiveKind
    num_records: int
    record_size: int

    def __post_init__(self) -> None:
        if self.num_records < 0:
            raise ConfigurationError("num_records must be >= 0")
        if self.record_size < 1:
            raise ConfigurationError("record_size must be >= 1")


class RemoteSystem(abc.ABC):
    """Abstract remote system with a SQL-like interface.

    Concrete engines (:class:`~repro.engines.hive.HiveEngine`,
    :class:`~repro.engines.spark.SparkEngine`,
    :class:`~repro.engines.rdbms.RdbmsEngine`) implement the execution
    model; this base class manages the engine-local table registry.
    """

    def __init__(self, name: str, capabilities: Optional[EngineCapabilities] = None):
        if not name:
            raise ConfigurationError("remote system name must be non-empty")
        self.name = name
        self.capabilities = capabilities or EngineCapabilities()
        self._catalog = Catalog()

    # ------------------------------------------------------------------
    # Table registry (the engine's own warehouse)
    # ------------------------------------------------------------------
    @property
    def catalog(self) -> Catalog:
        return self._catalog

    def load_table(self, spec: TableSpec) -> TableSpec:
        """Store a table on this system; returns the relocated spec."""
        located = spec.with_location(self.name, dfs_path=spec.dfs_path)
        self._catalog.register(located, replace=True)
        self._on_table_loaded(located)
        return located

    def drop_table(self, name: str) -> None:
        self._catalog.unregister(name)

    def has_table(self, name: str) -> bool:
        return self._catalog.has_table(name)

    def _on_table_loaded(self, spec: TableSpec) -> None:
        """Hook for engines that track storage (e.g. DFS placement)."""

    # ------------------------------------------------------------------
    # Execution surface
    # ------------------------------------------------------------------
    def execute(self, plan: LogicalPlan) -> QueryResult:
        """Execute a logical operator plan and return its observed cost.

        Raises:
            UnsupportedOperationError: when the plan uses an operator this
                system cannot run, or references a table it does not hold.
        """
        if not self.capabilities.supports(plan):
            raise UnsupportedOperationError(
                f"remote system {self.name!r} cannot execute plan:\n"
                + plan.describe()
            )
        for table in plan.referenced_tables:
            if not self._catalog.has_table(table):
                raise UnsupportedOperationError(
                    f"table {table!r} is not stored on system {self.name!r}"
                )
        return self._execute(plan)

    def execute_sql(self, sql: str) -> QueryResult:
        """Execute a SQL text statement (the §2 SQL-like interface).

        This is the surface a QueryGrid connector drives: the master
        renders a placed operator to SQL
        (:func:`repro.sql.render.render_plan`) and ships the text.
        """
        from repro.sql.parser import parse_select

        return self.execute(parse_select(sql))

    @abc.abstractmethod
    def _execute(self, plan: LogicalPlan) -> QueryResult:
        """Engine-specific execution model."""

    def execute_primitive(self, query: PrimitiveQuery) -> float:
        """Run a Fig. 5 measurement query; returns elapsed seconds.

        Raises:
            UnsupportedOperationError: engines without a DFS substrate
                (e.g. a single-node RDBMS) reject primitive queries.
        """
        raise UnsupportedOperationError(
            f"remote system {self.name!r} does not support primitive "
            "measurement queries"
        )

    def __repr__(self) -> str:
        return f"{type(self).__name__}(name={self.name!r})"
