"""Blackbox costing: learn a remote RDBMS through queries alone (§3).

Some remote systems expose nothing but a SQL interface — no cluster
facts, no primitive measurement surface.  For those, IntelliSphere uses
*logical-operator costing*: execute a gridded training workload, label
each configuration with the observed time, and fit a small neural
network per operator.  This example:

1. simulates a blackbox single-node RDBMS holding synthetic tables;
2. trains the aggregation logical-op model (Fig. 2 four-dim descriptor);
3. measures estimate accuracy on held-out queries;
4. pushes a query *out of the trained range* and shows the online remedy
   and offline tuning recovering the estimate (Figs. 3-4).

Run with::

    python examples/blackbox_costing.py
"""

import numpy as np

from repro import (
    Catalog,
    CostEstimationModule,
    CostingApproach,
    LogicalOpModel,
    OperatorKind,
    RdbmsEngine,
    RemoteSystemProfile,
    build_paper_corpus,
)
from repro.ml.metrics import fit_line, rmse_percent
from repro.workloads import AggregationWorkload


def main() -> None:
    # -- 1. A blackbox RDBMS remote system -------------------------------
    corpus = build_paper_corpus(
        row_counts=(10_000, 100_000, 1_000_000, 4_000_000, 8_000_000),
        row_sizes=(40, 100, 250, 1000),
        location="warehouse-db",
    )
    rdbms = RdbmsEngine(name="warehouse-db", seed=3)
    catalog = Catalog()
    for spec in corpus:
        rdbms.load_table(spec)
        catalog.register(spec)

    module = CostEstimationModule()
    module.register_system(
        rdbms,
        RemoteSystemProfile(
            name="warehouse-db",
            openbox=False,  # nothing known about its internals
            approach=CostingApproach.LOGICAL_OP,
        ),
    )

    # -- 2. Train the aggregation model on the remote system ------------
    workload = AggregationWorkload(corpus, max_queries=500)
    queries = workload.training_queries(catalog)
    # The grid is ordered by table size; shuffle so the held-out split
    # covers the same distribution as the training split.
    rng = np.random.default_rng(0)
    order = rng.permutation(len(queries))
    queries = [queries[i] for i in order]
    train, held_out = queries[:400], queries[400:]
    model = LogicalOpModel(
        OperatorKind.AGGREGATE,
        search_topology=True,
        search_iterations=1_000,
        max_search_candidates=4,
        nn_iterations=8_000,
        seed=0,
    )
    report = module.train_logical_op(
        "warehouse-db", OperatorKind.AGGREGATE, train, model=model
    )
    print(
        f"trained on {report.num_queries} queries "
        f"({report.remote_training_seconds / 3600:.2f} simulated hours of "
        f"remote time), topology {report.topology}, "
        f"final training RMSE% {report.history.final_error:.1f}"
    )

    # -- 3. Held-out accuracy --------------------------------------------
    actuals, estimates = [], []
    for query in held_out:
        estimate = module.estimate_plan("warehouse-db", query.plan, catalog)
        actuals.append(rdbms.execute(query.plan).elapsed_seconds)
        estimates.append(estimate.seconds)
    line = fit_line(np.asarray(actuals), np.asarray(estimates))
    print(f"held-out predicted-vs-actual: {line}")

    # -- 4. Out-of-range query: remedy, then offline tuning --------------
    big = build_paper_corpus(
        row_counts=(80_000_000,), row_sizes=(100,), location="warehouse-db"
    )
    for spec in big:
        rdbms.load_table(spec)
        catalog.register(spec)
    oor = AggregationWorkload(big, shrink_factors=(5, 20, 100))
    print("\nout-of-range (80M rows; trained on <= 8M):")
    oor_queries = oor.training_queries(catalog)
    for label in ("raw NN", "NN + online remedy"):
        errors = []
        for query in oor_queries:
            actual = rdbms.execute(query.plan).elapsed_seconds
            if label == "raw NN":
                predicted = model.estimate_nn_only(query.features)
            else:
                estimate = model.estimate(query.features)
                predicted = estimate.seconds
                model.record_actual(estimate, actual)
            errors.append((actual, predicted))
        a = np.asarray([e[0] for e in errors])
        p = np.asarray([e[1] for e in errors])
        print(f"  {label:20s} RMSE% = {rmse_percent(a, p):7.1f}")

    applied = model.run_offline_tuning()
    errors = []
    for query in oor_queries:
        actual = rdbms.execute(query.plan).elapsed_seconds
        errors.append((actual, model.estimate(query.features).seconds))
    a = np.asarray([e[0] for e in errors])
    p = np.asarray([e[1] for e in errors])
    print(
        f"  {'NN + offline tuning':20s} RMSE% = {rmse_percent(a, p):7.1f} "
        f"(after folding {applied} logged executions back in)"
    )


if __name__ == "__main__":
    main()
