"""Quickstart: cost a SQL operator on a remote system and verify it.

This walks the shortest path through the library:

1. simulate a Hive remote system holding part of the paper's synthetic
   corpus;
2. register it in the cost-estimation module with an openbox profile;
3. run the sub-operator training protocol (Fig. 5);
4. estimate the elapsed time of a join and an aggregation, and compare
   each estimate with the engine's actual (simulated) execution time.

Run with::

    python examples/quickstart.py
"""

from repro import (
    Catalog,
    ClusterInfo,
    CostEstimationModule,
    HiveEngine,
    RemoteSystemProfile,
    build_paper_corpus,
    parse_select,
)


def main() -> None:
    # -- 1. A remote Hive system with synthetic tables ------------------
    corpus = build_paper_corpus(
        row_counts=(10_000, 100_000, 1_000_000, 8_000_000),
        row_sizes=(100, 1000),
    )
    hive = HiveEngine(seed=7)
    catalog = Catalog()
    for spec in corpus:
        hive.load_table(spec)
        catalog.register(spec)

    # -- 2. Register it with an openbox profile (§2) --------------------
    profile = RemoteSystemProfile(
        name="hive",
        openbox=True,
        cluster=ClusterInfo(
            num_data_nodes=3, cores_per_node=2, dfs_block_size=128 * 1024 * 1024
        ),
    )
    module = CostEstimationModule()
    module.register_system(hive, profile)

    # -- 3. Sub-op training: a handful of primitive queries (§4) --------
    result = module.train_sub_op("hive")
    print(
        f"sub-op training: {result.num_queries} primitive queries, "
        f"{result.remote_training_seconds / 60:.1f} simulated minutes of "
        "remote time"
    )
    print(f"learned job overhead: {result.model_set.job_overhead_seconds:.2f}s")
    print(
        "learned hash-build memory threshold: "
        f"{result.model_set.hash_build.workspace_threshold / 2**30:.2f} GiB"
    )

    # -- 4. Estimate vs actual ------------------------------------------
    queries = [
        "SELECT r.a1 FROM t8000000_100 r JOIN t100000_100 s ON r.a1 = s.a1",
        "SELECT r.a1 FROM t8000000_1000 r JOIN t8000000_100 s ON r.a1 = s.a1",
        "SELECT SUM(a1), SUM(a2) FROM t1000000_100 GROUP BY a20",
    ]
    print(f"\n{'estimate':>10s} {'actual':>10s} {'predicted algorithm':>24s}")
    for sql in queries:
        plan = parse_select(sql)
        estimate = module.estimate_plan("hive", plan, catalog)
        actual = hive.execute(plan)
        print(
            f"{estimate.seconds:9.1f}s {actual.elapsed_seconds:9.1f}s "
            f"{estimate.detail.predicted_algorithm:>24s}   <- {sql[:60]}"
        )


if __name__ == "__main__":
    main()
