"""Hybrid costing and the §5 switch-over scenario ("system C").

A newly registered system may have limited openbox knowledge and no
spare capacity for the multi-day logical-op training.  §5's answer: use
an *approximate* sub-op costing immediately, train the logical-op models
in the background, and switch the costing profile once they are ready.

This example quantifies that trade-off on a simulated Hive system:

* phase 1 — sub-op costing trained in (simulated) minutes, used at once;
* phase 2 — the join logical-op model finishes its long training and the
  profile switches; accuracy on the evaluation workload is compared.

Run with::

    python examples/hybrid_switchover.py
"""

import numpy as np

from repro import (
    Catalog,
    ClusterInfo,
    CostEstimationModule,
    CostingApproach,
    HiveEngine,
    LogicalOpModel,
    OperatorKind,
    RemoteSystemProfile,
    build_paper_corpus,
)
from repro.ml.metrics import rmse_percent
from repro.workloads import JoinWorkload


def evaluate(module, catalog, engine, queries):
    actuals, estimates = [], []
    for query in queries:
        estimate = module.estimate_plan("hive", query.plan, catalog)
        actuals.append(engine.execute(query.plan).elapsed_seconds)
        estimates.append(estimate.seconds)
    return rmse_percent(np.asarray(actuals), np.asarray(estimates))


def main() -> None:
    counts = (10_000, 100_000, 1_000_000, 4_000_000, 8_000_000)
    corpus = build_paper_corpus(row_counts=counts, row_sizes=(100, 250, 1000))
    engine = HiveEngine(seed=5)
    catalog = Catalog()
    for spec in corpus:
        engine.load_table(spec)
        catalog.register(spec)

    profile = RemoteSystemProfile(
        name="hive",
        cluster=ClusterInfo(
            num_data_nodes=3, cores_per_node=2, dfs_block_size=128 * 1024 * 1024
        ),
    )
    module = CostEstimationModule()
    module.register_system(engine, profile)

    evaluation = JoinWorkload(
        corpus, row_sizes=(100, 1000), max_queries=40
    ).training_queries(catalog)

    # -- Phase 1: fast sub-op costing, available immediately -------------
    subop = module.train_sub_op("hive")
    error_subop = evaluate(module, catalog, engine, evaluation)
    print(
        f"phase 1 (sub-op):      trained in {subop.remote_training_seconds / 60:6.1f} "
        f"simulated minutes -> eval RMSE% {error_subop:6.1f}"
    )

    # -- Phase 2: the long logical-op training completes ------------------
    training = JoinWorkload(corpus, max_queries=1200)
    report = module.train_logical_op(
        "hive",
        OperatorKind.JOIN,
        training.training_queries(catalog),
        model=LogicalOpModel(
            OperatorKind.JOIN,
            search_topology=False,
            nn_iterations=12_000,
            seed=0,
        ),
    )
    print(
        f"phase 2 (logical-op):  trained in {report.remote_training_seconds / 3600:6.1f} "
        f"simulated hours   ({report.num_queries} remote queries)"
    )

    # Switch the costing profile over (§5: a CP update takes effect at once).
    profile.approach = CostingApproach.LOGICAL_OP
    module._systems["hive"].estimator = None
    error_logical = evaluate(module, catalog, engine, evaluation)
    print(f"                        -> eval RMSE% {error_logical:6.1f}")

    ratio = report.remote_training_seconds / subop.remote_training_seconds
    print(
        f"\nthe logical-op training consumed {ratio:.0f}x more remote time; "
        "the hybrid profile let the system cost queries during that whole "
        "window using the sub-op models."
    )


if __name__ == "__main__":
    main()
