"""Operating the costing module over time: persist, reload, detect drift.

The paper treats training as a one-time registration step under a
*supervised ecosystem* (§2): models hold for a fixed cluster
configuration, and configuration changes require re-learning.  This
example walks the operational lifecycle a deployment needs around that:

1. train sub-op costing for a Hive system and **persist** the costing
   profile (CP) to JSON;
2. restart (reload the CP from disk) and keep estimating — bit-identical
   estimates, zero retraining;
3. the remote cluster then *changes* (slower scheduling after a
   reconfiguration); the **drift monitor** watching the estimate/actual
   feedback flags it;
4. re-train against the changed system, reset the monitor, and verify
   estimates track again.

Run with::

    python examples/operations_lifecycle.py
"""

import tempfile
from pathlib import Path

from repro import (
    Catalog,
    ClusterInfo,
    CostEstimationModule,
    HiveEngine,
    RemoteSystemProfile,
    build_paper_corpus,
    parse_select,
)
from repro.core import load_profile, save_profile
from repro.engines.execution import EngineTuning


def load_corpus(engine, catalog, corpus):
    for spec in corpus:
        engine.load_table(spec)
        if not catalog.has_table(spec.name):
            catalog.register(spec)


def feedback_round(module, engine, catalog, plans, rounds=8):
    """Estimate + execute + record actuals; returns the drift report."""
    for _ in range(rounds):
        for plan in plans:
            estimate = module.estimate_plan("hive", plan, catalog)
            actual = engine.execute(plan).elapsed_seconds
            module.record_actual("hive", estimate, actual)
    return module.drift_report("hive")


def main() -> None:
    corpus = build_paper_corpus(
        row_counts=(100_000, 1_000_000, 4_000_000), row_sizes=(100, 1000)
    )
    catalog = Catalog()
    info = ClusterInfo(
        num_data_nodes=3, cores_per_node=2, dfs_block_size=128 * 1024 * 1024
    )

    # -- 1. Train once, persist the CP -----------------------------------
    hive = HiveEngine(seed=4)
    load_corpus(hive, catalog, corpus)
    module = CostEstimationModule()
    profile = RemoteSystemProfile(name="hive", cluster=info)
    module.register_system(hive, profile)
    module.train_sub_op("hive")

    cp_path = Path(tempfile.mkdtemp()) / "hive_profile.json"
    save_profile(profile, cp_path)
    print(f"trained and persisted CP -> {cp_path} ({cp_path.stat().st_size} bytes)")

    # -- 2. "Restart": a fresh module loads the CP from disk -------------
    module = CostEstimationModule()
    module.register_system(hive, load_profile(cp_path))
    plan = parse_select(
        "SELECT r.a1 FROM t4000000_100 r JOIN t1000000_100 s ON r.a1 = s.a1"
    )
    estimate = module.estimate_plan("hive", plan, catalog)
    actual = hive.execute(plan).elapsed_seconds
    print(
        f"after reload: estimate {estimate.seconds:.1f}s vs actual "
        f"{actual:.1f}s — no retraining needed"
    )

    # -- 3. Healthy feedback, then the cluster changes --------------------
    plans = [
        parse_select(
            f"SELECT r.a1 FROM t4000000_{size} r JOIN t{rows}_{size} s "
            "ON r.a1 = s.a1"
        )
        for size in (100, 1000)
        for rows in (100_000, 1_000_000)
    ]
    report = feedback_round(module, hive, catalog, plans)
    print(f"healthy phase: drift={report.drifted} (stat {report.statistic:.1f})")

    degraded = HiveEngine(
        seed=5,
        tuning=EngineTuning(
            job_startup=4.0, wave_startup=0.8, overlap_factor=0.93,
            noise_sigma=0.04,
        ),
    )
    load_corpus(degraded, catalog, corpus)
    report = feedback_round(module, degraded, catalog, plans, rounds=15)
    print(
        f"after cluster change: drift={report.drifted} "
        f"direction={report.direction} (stat {report.statistic:.1f})"
    )

    # -- 4. Re-learn against the changed system, reset the monitor -------
    module = CostEstimationModule()
    module.register_system(
        degraded, RemoteSystemProfile(name="hive", cluster=info)
    )
    module.train_sub_op("hive")
    module.reset_drift("hive")
    report = feedback_round(module, degraded, catalog, plans)
    estimate = module.estimate_plan("hive", plan, catalog)
    actual = degraded.execute(plan).elapsed_seconds
    print(
        f"after retraining: estimate {estimate.seconds:.1f}s vs actual "
        f"{actual:.1f}s, drift={report.drifted}"
    )


if __name__ == "__main__":
    main()
