"""Federated analytics: cost-based operator placement across systems.

The point of accurate remote costing is better *plans* (§1).  This
example assembles the full IntelliSphere architecture of Fig. 1:

* a Hive cluster holding large fact tables,
* a Spark cluster holding mid-size event tables,
* dimension tables resident on the Teradata master,

trains sub-op costing for both remote systems, and then shows how the
optimizer places joins and aggregations differently depending on where
the data lives and how expensive each engine and transfer is.

Run with::

    python examples/federated_analytics.py
"""

from repro import (
    ClusterInfo,
    HiveEngine,
    RemoteSystemProfile,
    SparkEngine,
    TableSpec,
    build_paper_corpus,
)
from repro.data.schema import paper_schema
from repro.master.federation import IntelliSphere


def main() -> None:
    sphere = IntelliSphere(seed=0)
    info = ClusterInfo(
        num_data_nodes=3, cores_per_node=2, dfs_block_size=128 * 1024 * 1024
    )

    # -- Remote systems ---------------------------------------------------
    hive = HiveEngine(seed=1)
    spark = SparkEngine(seed=2)
    sphere.add_remote_system(hive, RemoteSystemProfile(name="hive", cluster=info))
    spark_profile = RemoteSystemProfile(name="spark", cluster=info)
    spark_profile.costing.join_family = "spark"
    sphere.add_remote_system(spark, spark_profile)

    # -- Data layout --------------------------------------------------------
    # Big fact tables live in Hive.
    for spec in build_paper_corpus(
        row_counts=(8_000_000, 20_000_000), row_sizes=(100, 250), location="hive"
    ):
        sphere.add_table(spec)
    # Mid-size event tables live in Spark.
    for rows in (100_000, 1_000_000):
        sphere.add_table(
            TableSpec(
                name=f"events_{rows}",
                schema=paper_schema(100),
                num_rows=rows,
                location="spark",
            )
        )
    # Small dimensions live on the master.
    sphere.add_table(
        TableSpec(
            name="dim_customers",
            schema=paper_schema(250),
            num_rows=50_000,
            location="teradata",
        )
    )

    # -- Train costing for both remotes ----------------------------------
    for name in ("hive", "spark"):
        result = sphere.costing.train_sub_op(name)
        print(
            f"{name}: trained {result.num_queries} primitive queries "
            f"({result.remote_training_seconds / 60:.1f} simulated minutes)"
        )

    # -- Federated queries -------------------------------------------------
    queries = {
        "big fact x fact join (should stay on Hive)": (
            "SELECT r.a1 FROM t20000000_100 r JOIN t8000000_100 s "
            "ON r.a1 = s.a1"
        ),
        "fact x master dimension (placement trade-off)": (
            "SELECT r.a1 FROM t8000000_250 r JOIN dim_customers s "
            "ON r.a1 = s.a1"
        ),
        "spark events x master dimension": (
            "SELECT r.a1 FROM events_1000000 r JOIN dim_customers s "
            "ON r.a1 = s.a1"
        ),
        "aggregate on Hive fact": (
            "SELECT SUM(a1) FROM t20000000_100 GROUP BY a100"
        ),
    }
    for label, sql in queries.items():
        placement = sphere.explain(sql)
        print(f"\n=== {label}")
        print(placement.describe())
        others = ", ".join(
            f"{opt.location}={opt.seconds:.1f}s"
            for opt in placement.alternatives
        )
        print(f"  alternatives: {others}")

    # -- Run one end to end -----------------------------------------------
    result = sphere.run(
        "SELECT SUM(a1) FROM t8000000_100 r JOIN t8000000_250 s "
        "ON r.a1 = s.a1 GROUP BY a20"
    )
    print("\n=== executed: aggregate over fact-fact join")
    for step in result.steps:
        print(
            f"  {step.description:50s} @ {step.system:9s} "
            f"est {step.estimated_seconds:8.1f}s  obs {step.observed_seconds:8.1f}s"
        )
    print(
        f"  total: estimated {result.estimated_seconds:.1f}s, "
        f"observed {result.observed_seconds:.1f}s"
    )


if __name__ == "__main__":
    main()
