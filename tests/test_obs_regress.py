"""Regression gate: comparison logic and the benchmarks/regress.py CLI."""

import json
import os
import subprocess
import sys

import pytest

from repro.obs import regress

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
GATE_SCRIPT = os.path.join(REPO_ROOT, "benchmarks", "regress.py")
COMMITTED_BASELINE = os.path.join(REPO_ROOT, "benchmarks", "BENCH_baseline.json")


def _snapshot(latencies=None, counters=None, thresholds=None):
    snapshot = {
        "latencies": {
            name: {"seconds": value, "normalized": value}
            for name, value in (latencies or {}).items()
        },
        "counters": dict(counters or {}),
    }
    if thresholds is not None:
        snapshot["thresholds"] = dict(thresholds)
    return snapshot


class TestCompareSnapshots:
    def test_identical_snapshots_pass(self):
        base = _snapshot(latencies={"a": 1.0}, counters={"c": 5})
        report = regress.compare_snapshots(base, base)
        assert report.ok
        assert report.compared == 2
        assert not report.regressions

    def test_slowdown_past_threshold_fails(self):
        base = _snapshot(latencies={"a": 1.0})
        cur = _snapshot(latencies={"a": 1.2})
        report = regress.compare_snapshots(base, cur)
        assert not report.ok
        assert report.regressions[0].name == "a"
        assert report.regressions[0].kind == "latency"
        assert report.regressions[0].change == pytest.approx(0.2)

    def test_slowdown_within_threshold_passes(self):
        base = _snapshot(latencies={"a": 1.0})
        cur = _snapshot(latencies={"a": 1.1})
        assert regress.compare_snapshots(base, cur).ok

    def test_per_metric_threshold_from_baseline(self):
        base = _snapshot(latencies={"a": 1.0}, thresholds={"a": 0.5})
        cur = _snapshot(latencies={"a": 1.4})
        assert regress.compare_snapshots(base, cur).ok
        cur = _snapshot(latencies={"a": 1.6})
        assert not regress.compare_snapshots(base, cur).ok

    def test_speedup_reported_not_failed(self):
        base = _snapshot(latencies={"a": 1.0})
        cur = _snapshot(latencies={"a": 0.5})
        report = regress.compare_snapshots(base, cur)
        assert report.ok
        assert report.improvements[0].name == "a"

    def test_changed_counter_fails_exactly(self):
        base = _snapshot(counters={"calls": 9})
        cur = _snapshot(counters={"calls": 10})
        report = regress.compare_snapshots(base, cur)
        assert not report.ok
        assert report.regressions[0].kind == "counter"

    def test_missing_metric_fails(self):
        base = _snapshot(latencies={"a": 1.0}, counters={"c": 1})
        cur = _snapshot()
        report = regress.compare_snapshots(base, cur)
        assert not report.ok
        assert set(report.missing) == {"latency:a", "counter:c"}

    def test_extra_current_metrics_are_ignored(self):
        base = _snapshot(latencies={"a": 1.0})
        cur = _snapshot(latencies={"a": 1.0, "new": 99.0})
        assert regress.compare_snapshots(base, cur).ok


class TestBaselineFiles:
    def test_write_and_load_round_trip(self, tmp_path):
        path = tmp_path / "BENCH_baseline.json"
        regress.write_baseline(path, _snapshot(latencies={"a": 1.0}))
        baseline = regress.load_baseline(path)
        assert baseline["version"] == regress.BASELINE_VERSION
        assert baseline["latencies"]["a"]["normalized"] == 1.0

    def test_written_baseline_is_deterministic(self, tmp_path):
        snapshot = _snapshot(latencies={"b": 2.0, "a": 1.0})
        first, second = tmp_path / "one.json", tmp_path / "two.json"
        regress.write_baseline(first, snapshot)
        regress.write_baseline(second, snapshot)
        assert first.read_bytes() == second.read_bytes()

    def test_load_rejects_junk(self, tmp_path):
        path = tmp_path / "junk.json"
        path.write_text(json.dumps({"not": "a baseline"}))
        with pytest.raises(ValueError):
            regress.load_baseline(path)

    def test_load_rejects_newer_version(self, tmp_path):
        path = tmp_path / "future.json"
        payload = _snapshot(latencies={"a": 1.0})
        payload["version"] = regress.BASELINE_VERSION + 1
        path.write_text(json.dumps(payload))
        with pytest.raises(ValueError):
            regress.load_baseline(path)


class TestRenderGateReport:
    def test_failure_lines(self):
        report = regress.compare_snapshots(
            _snapshot(latencies={"a": 1.0}, counters={"c": 1, "gone": 2}),
            _snapshot(latencies={"a": 2.0}, counters={"c": 3}),
        )
        text = regress.render_gate_report(report)
        assert "regression gate FAILED" in text
        assert "SLOWER  a" in text
        assert "CHANGED c" in text
        assert "MISSING counter:gone" in text

    def test_ok_line(self):
        base = _snapshot(latencies={"a": 1.0})
        text = regress.render_gate_report(regress.compare_snapshots(base, base))
        assert "regression gate OK" in text


# ----------------------------------------------------------------------
# The gate script end to end (the tentpole acceptance test)
# ----------------------------------------------------------------------
def _run_gate(*args):
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        part
        for part in (os.path.join(REPO_ROOT, "src"), env.get("PYTHONPATH"))
        if part
    )
    return subprocess.run(
        [sys.executable, GATE_SCRIPT, *args],
        capture_output=True,
        text=True,
        env=env,
        cwd=REPO_ROOT,
    )


def _run_gate_retrying(*args, attempts=3):
    """Re-run a gate that failed on timing only.

    The --fast gate times with few repeats, so a scheduler hiccup while
    the test suite loads the machine can push one latency past its
    budget.  A genuine regression fails every attempt; pure noise does
    not, so retrying SLOWER-only failures keeps the test meaningful
    without loosening any threshold.
    """
    for _ in range(attempts):
        proc = _run_gate(*args)
        timing_only = (
            proc.returncode == 1
            and "SLOWER" in proc.stdout
            and "CHANGED" not in proc.stdout
            and "MISSING" not in proc.stdout
        )
        if not timing_only:
            return proc
    return proc


@pytest.mark.slow
class TestGateScript:
    def test_passes_against_committed_baseline(self):
        proc = _run_gate_retrying("--fast")
        assert proc.returncode == 0, proc.stdout + proc.stderr
        assert "regression gate OK" in proc.stdout

    def test_fails_on_injected_2x_slowdown(self):
        proc = _run_gate("--fast", "--inject-slowdown", "2.0")
        assert proc.returncode == 1, proc.stdout + proc.stderr
        assert "SLOWER" in proc.stdout

    def test_missing_baseline_is_usage_error(self, tmp_path):
        proc = _run_gate("--fast", "--baseline", str(tmp_path / "nope.json"))
        assert proc.returncode == 2
        assert "baseline not found" in proc.stderr

    def test_update_writes_baseline_and_gate_passes(self, tmp_path):
        baseline = tmp_path / "BENCH_baseline.json"
        update = _run_gate("--fast", "--update", "--baseline", str(baseline))
        assert update.returncode == 0, update.stdout + update.stderr
        assert baseline.exists()
        gate = _run_gate_retrying(
            "--fast",
            "--baseline",
            str(baseline),
            "--output",
            str(tmp_path / "current.json"),
        )
        assert gate.returncode == 0, gate.stdout + gate.stderr
        assert (tmp_path / "current.json").exists()
