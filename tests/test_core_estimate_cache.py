"""Tests for the quantized-key estimate cache and its invalidation."""

import pytest

from repro.core import (
    CostEstimationModule,
    CostingApproach,
    EstimateCache,
    EstimationRequest,
    LogicalOpModel,
    OperatorKind,
    RemoteSystemProfile,
    SubOpTrainer,
    TrainingSet,
)
from repro.core.operators import JoinOperatorStats, ScanOperatorStats
from repro.data import Catalog, build_paper_corpus
from repro.engines import HiveEngine
from repro.exceptions import ConfigurationError
from repro.sql.parser import parse_select


def scan_stats(rows=1_000_000, out=100_000):
    return ScanOperatorStats(
        num_input_rows=rows,
        input_row_size=100,
        num_output_rows=out,
        output_row_size=100,
    )


def join_stats(**kw):
    defaults = dict(
        row_size_r=100,
        num_rows_r=1_000_000,
        row_size_s=100,
        num_rows_s=10_000,
        projected_size_r=100,
        projected_size_s=100,
        num_output_rows=10_000,
    )
    defaults.update(kw)
    return JoinOperatorStats(**defaults)


class TestQuantizedKeys:
    def test_nearby_values_share_a_bucket(self):
        cache = EstimateCache()
        a = cache.key_for("hive", 0, scan_stats(rows=1_000_000))
        b = cache.key_for("hive", 0, scan_stats(rows=1_000_001))
        assert a == b

    def test_distinct_magnitudes_split_buckets(self):
        cache = EstimateCache()
        a = cache.key_for("hive", 0, scan_stats(rows=1_000_000))
        b = cache.key_for("hive", 0, scan_stats(rows=2_000_000))
        assert a != b

    def test_boolean_flags_stay_exact(self):
        cache = EstimateCache()
        a = cache.key_for("hive", 0, join_stats())
        b = cache.key_for("hive", 0, join_stats(r_partitioned_on_key=True))
        assert a != b

    def test_system_and_generation_partition_keys(self):
        cache = EstimateCache()
        stats = scan_stats()
        assert cache.key_for("hive", 0, stats) != cache.key_for(
            "spark", 0, stats
        )
        assert cache.key_for("hive", 0, stats) != cache.key_for(
            "hive", 1, stats
        )

    def test_quantize_is_monotone(self):
        cache = EstimateCache()
        values = [0.0, 1.0, 10.0, 1e3, 1e6, 1e9]
        buckets = [cache.quantize(v) for v in values]
        assert buckets == sorted(buckets)

    def test_invalid_construction_rejected(self):
        with pytest.raises(ConfigurationError):
            EstimateCache(max_entries=-1)
        with pytest.raises(ConfigurationError):
            EstimateCache(resolution=0)


class TestLruBehaviour:
    def _estimate(self, seconds):
        from repro.core.estimator import OperatorEstimate
        from repro.core.logical_op import CostEstimate

        return OperatorEstimate(
            seconds=seconds,
            approach=CostingApproach.SUB_OP,
            operator=OperatorKind.SCAN,
            detail=CostEstimate(seconds=seconds, features=(1.0,)),
        )

    def test_eviction_at_capacity(self):
        cache = EstimateCache(max_entries=2)
        for i, rows in enumerate((1_000, 1_000_000, 1_000_000_000)):
            cache.put(cache.key_for("hive", 0, scan_stats(rows=rows)), self._estimate(float(i)))
        assert len(cache) == 2
        assert cache.evictions == 1
        assert cache.get(cache.key_for("hive", 0, scan_stats(rows=1_000))) is None

    def test_get_marks_cache_hit(self):
        cache = EstimateCache()
        key = cache.key_for("hive", 0, scan_stats())
        cache.put(key, self._estimate(2.5))
        cached = cache.get(key)
        assert cached.cache_hit
        assert cached.seconds == 2.5
        assert cache.hits == 1 and cache.misses == 0

    def test_disabled_cache_stores_nothing(self):
        cache = EstimateCache(max_entries=0)
        assert not cache.enabled
        key = cache.key_for("hive", 0, scan_stats())
        cache.put(key, self._estimate(1.0))
        assert len(cache) == 0
        assert cache.get(key) is None

    def test_invalidate_by_system(self):
        cache = EstimateCache()
        cache.put(cache.key_for("hive", 0, scan_stats()), self._estimate(1.0))
        cache.put(cache.key_for("spark", 0, scan_stats()), self._estimate(2.0))
        assert cache.invalidate("hive") == 1
        assert len(cache) == 1
        assert cache.invalidate() == 1
        assert len(cache) == 0
        assert cache.invalidations == 2

    def test_hit_rate(self):
        cache = EstimateCache()
        key = cache.key_for("hive", 0, scan_stats())
        assert cache.hit_rate == 0.0
        cache.get(key)  # miss
        cache.put(key, self._estimate(1.0))
        cache.get(key)  # hit
        assert cache.hit_rate == pytest.approx(0.5)

    def test_stats_snapshot(self):
        cache = EstimateCache(max_entries=1)
        key_a = cache.key_for("hive", 0, scan_stats(rows=1_000))
        key_b = cache.key_for("hive", 0, scan_stats(rows=1_000_000))
        cache.get(key_a)  # miss
        cache.put(key_a, self._estimate(1.0))
        cache.get(key_a)  # hit
        cache.put(key_b, self._estimate(2.0))  # evicts key_a
        cache.invalidate("hive")
        stats = cache.stats()
        assert stats == {
            "hits": 1,
            "misses": 1,
            "lookups": 2,
            "hit_rate": 0.5,
            "size": 0,
            "evictions": 1,
            "invalidations": 1,
            "generation": 0,
        }

    def test_generation_tracks_highest_seen(self):
        cache = EstimateCache()
        assert cache.generation == 0
        cache.key_for("hive", 3, scan_stats())
        assert cache.generation == 3
        cache.key_for("hive", 1, scan_stats())  # never regresses
        assert cache.generation == 3
        cache.note_generation(7)  # the swap path reports ahead of keys
        assert cache.generation == 7
        assert cache.stats()["generation"] == 7


class TestThreadSafety:
    """Concurrent optimizer threads share one module-level cache; the
    lock must keep the LRU dict and the hit/miss/eviction accounting
    coherent under simultaneous get/put/invalidate traffic."""

    def _estimate(self, seconds):
        from repro.core.estimator import OperatorEstimate
        from repro.core.logical_op import CostEstimate

        return OperatorEstimate(
            seconds=seconds,
            approach=CostingApproach.SUB_OP,
            operator=OperatorKind.SCAN,
            detail=CostEstimate(seconds=seconds, features=(1.0,)),
        )

    def test_concurrent_hits_and_evictions(self):
        import threading

        cache = EstimateCache(max_entries=32)
        # Widely spread row counts -> distinct quantized keys.
        keys = [
            cache.key_for("hive", 0, scan_stats(rows=1000 * 4**i))
            for i in range(12)
        ]
        estimate = self._estimate(1.0)
        errors = []
        barrier = threading.Barrier(8)

        def worker(seed):
            try:
                barrier.wait()
                for step in range(500):
                    key = keys[(seed * 7 + step) % len(keys)]
                    if cache.get(key) is None:
                        cache.put(key, estimate)
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)

        threads = [
            threading.Thread(target=worker, args=(t,)) for t in range(8)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert errors == []
        stats = cache.stats()
        assert stats["lookups"] == 8 * 500
        assert stats["hits"] + stats["misses"] == stats["lookups"]
        assert stats["size"] <= 32
        assert len(cache) == stats["size"]

    def test_concurrent_eviction_pressure_respects_capacity(self):
        import threading

        cache = EstimateCache(max_entries=4)
        keys = [
            cache.key_for("hive", 0, scan_stats(rows=1000 * 4**i))
            for i in range(16)
        ]
        estimate = self._estimate(1.0)
        errors = []

        def writer(seed):
            try:
                for step in range(400):
                    cache.put(keys[(seed + step) % len(keys)], estimate)
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)

        threads = [
            threading.Thread(target=writer, args=(t,)) for t in range(6)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert errors == []
        assert len(cache) <= 4
        # Every insert beyond capacity evicted exactly one entry.
        stats = cache.stats()
        assert stats["evictions"] >= len(keys) - 4

    def test_concurrent_invalidation_races_with_lookups(self):
        import threading

        cache = EstimateCache(max_entries=256)
        hive_keys = [
            cache.key_for("hive", 0, scan_stats(rows=1000 * 4**i))
            for i in range(8)
        ]
        spark_keys = [
            cache.key_for("spark", 0, scan_stats(rows=1000 * 4**i))
            for i in range(8)
        ]
        estimate = self._estimate(1.0)
        errors = []
        stop = threading.Event()

        def reader():
            try:
                while not stop.is_set():
                    for key in hive_keys + spark_keys:
                        found = cache.get(key)
                        if found is None:
                            cache.put(key, estimate)
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)

        def invalidator():
            try:
                for _ in range(200):
                    cache.invalidate("hive")
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)

        readers = [threading.Thread(target=reader) for _ in range(4)]
        for thread in readers:
            thread.start()
        killer = threading.Thread(target=invalidator)
        killer.start()
        killer.join()
        stop.set()
        for thread in readers:
            thread.join()
        assert errors == []
        assert cache.invalidations == 200
        # Spark entries survived the hive-scoped invalidations.
        assert any(cache.get(key) is not None for key in spark_keys)


# ----------------------------------------------------------------------
# Module-level wiring
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def trained_setup():
    """One sub-op-trained hive profile, shared; modules are per-test."""
    from repro.core import ClusterInfo

    corpus = build_paper_corpus(
        row_counts=(10_000, 1_000_000, 8_000_000), row_sizes=(40, 100)
    )
    engine = HiveEngine(seed=0, noise_sigma=0.0)
    catalog = Catalog()
    for spec in corpus:
        engine.load_table(spec)
        catalog.register(spec)
    cluster = ClusterInfo(
        num_data_nodes=3, cores_per_node=2, dfs_block_size=128 * 1024 * 1024
    )
    profile = RemoteSystemProfile(name="hive", cluster=cluster)
    module = CostEstimationModule()
    module.register_system(engine, profile)
    module.train_sub_op(
        "hive", SubOpTrainer(record_counts=(1_000_000, 2_000_000))
    )
    return engine, profile, catalog


@pytest.fixture()
def module(trained_setup):
    engine, profile, _ = trained_setup
    fresh = CostEstimationModule()
    fresh.register_system(engine, profile)
    return fresh


@pytest.fixture()
def catalog(trained_setup):
    return trained_setup[2]


PLAN = "SELECT a1 FROM t1000000_100 WHERE a1 < 500"


class TestLockContentionTelemetry:
    """The USE-method contention counters on the cache's internal lock:
    the uncontended path touches no instrument; a blocked acquisition
    counts and times itself."""

    @pytest.fixture(autouse=True)
    def obs_state(self):
        from repro import obs
        from repro.obs.metrics import MetricsRegistry

        previous = obs.set_registry(MetricsRegistry())
        yield
        obs.set_registry(previous)

    def _estimate(self, seconds):
        from repro.core.estimator import OperatorEstimate
        from repro.core.logical_op import CostEstimate

        return OperatorEstimate(
            seconds=seconds,
            approach=CostingApproach.SUB_OP,
            operator=OperatorKind.SCAN,
            detail=CostEstimate(seconds=seconds, features=(1.0,)),
        )

    def test_uncontended_traffic_creates_no_wait_metrics(self):
        from repro import obs

        cache = EstimateCache()
        key = cache.key_for("hive", 0, scan_stats())
        cache.get(key)
        cache.put(key, self._estimate(1.0))
        cache.get(key)
        cache.invalidate()
        assert obs.get_registry().get(
            "costing.estimate_cache.lock_waits"
        ) is None
        assert obs.get_registry().get(
            "costing.estimate_cache.lock_wait_seconds"
        ) is None

    def test_blocked_get_counts_and_times_the_wait(self):
        import threading

        from repro import obs

        cache = EstimateCache()
        key = cache.key_for("hive", 0, scan_stats())
        cache.put(key, self._estimate(1.0))
        holder_in = threading.Event()
        release = threading.Event()

        def holder():
            # Force contention: sit on the internal lock from a foreign
            # thread while the main thread runs a lookup.
            cache._lock.acquire()
            holder_in.set()
            release.wait(timeout=5.0)
            cache._lock.release()

        thread = threading.Thread(target=holder, daemon=True)
        thread.start()
        assert holder_in.wait(timeout=5.0)
        timer = threading.Timer(0.05, release.set)
        timer.start()
        result = cache.get(key)  # blocks until the holder lets go
        thread.join(timeout=5.0)
        assert result is not None
        assert obs.counter("costing.estimate_cache.lock_waits").value >= 1.0
        snapshot = obs.get_registry().get(
            "costing.estimate_cache.lock_wait_seconds"
        ).snapshot()
        assert snapshot["count"] >= 1
        assert snapshot["sum"] >= 0.04  # parked for the holder's sleep


class TestModuleCaching:
    def test_repeat_estimate_hits(self, module, catalog):
        plan = parse_select(PLAN)
        first = module.estimate_plan("hive", plan, catalog)
        second = module.estimate_plan("hive", plan, catalog)
        assert not first.cache_hit
        assert second.cache_hit
        assert second.seconds == first.seconds
        assert module.cache.hits == 1 and module.cache.misses == 1

    def test_batch_reports_hits_and_misses(self, module, catalog):
        requests = tuple(
            EstimationRequest(system="hive", stats=scan_stats(rows=rows))
            for rows in (10_000, 1_000_000, 8_000_000)
        )
        cold = module.estimate_batch(requests)
        warm = module.estimate_batch(requests)
        assert (cold.cache_hits, cold.cache_misses) == (0, 3)
        assert (warm.cache_hits, warm.cache_misses) == (3, 0)
        for a, b in zip(cold, warm):
            assert a.seconds == b.seconds
            assert b.cache_hit

    def test_disabled_cache_never_hits(self, trained_setup, catalog):
        engine, profile, _ = trained_setup
        module = CostEstimationModule(cache=EstimateCache(max_entries=0))
        module.register_system(engine, profile)
        plan = parse_select(PLAN)
        module.estimate_plan("hive", plan, catalog)
        estimate = module.estimate_plan("hive", plan, catalog)
        assert not estimate.cache_hit

    def test_invalidate_cache_forces_recompute(self, module, catalog):
        plan = parse_select(PLAN)
        module.estimate_plan("hive", plan, catalog)
        removed = module.invalidate_cache("hive")
        assert removed == 1
        assert not module.estimate_plan("hive", plan, catalog).cache_hit

    def test_train_sub_op_invalidates(self, module, catalog):
        plan = parse_select(PLAN)
        module.estimate_plan("hive", plan, catalog)
        module.train_sub_op(
            "hive", SubOpTrainer(record_counts=(1_000_000, 2_000_000))
        )
        assert len(module.cache) == 0
        assert not module.estimate_plan("hive", plan, catalog).cache_hit

    def test_recalibrate_alpha_invalidates(self, module, catalog):
        model = LogicalOpModel(
            OperatorKind.AGGREGATE,
            search_topology=False,
            nn_iterations=300,
            seed=0,
        )
        ts = TrainingSet(model.dimension_names)
        for rows in (1e5, 1e6, 4e6, 8e6):
            for size in (40, 100, 1000):
                ts.add((rows, size, rows / 10, 12), 1 + rows * 2e-6)
        model.train(ts)
        module.attach_logical_model("hive", model)
        plan = parse_select(PLAN)
        module.estimate_plan("hive", plan, catalog)
        assert len(module.cache) == 1
        module.recalibrate_alpha("hive", OperatorKind.AGGREGATE)
        assert len(module.cache) == 0

    def test_offline_tuning_invalidates(self, module, catalog):
        model = LogicalOpModel(
            OperatorKind.AGGREGATE,
            search_topology=False,
            nn_iterations=300,
            seed=0,
        )
        ts = TrainingSet(model.dimension_names)
        for rows in (1e5, 1e6, 4e6, 8e6):
            for size in (40, 100, 1000):
                ts.add((rows, size, rows / 10, 12), 1 + rows * 2e-6)
        model.train(ts)
        module.attach_logical_model("hive", model)
        plan = parse_select(PLAN)
        module.estimate_plan("hive", plan, catalog)
        assert len(module.cache) == 1
        model.execution_log.record((1e6, 100, 1e5, 12), 3.0)
        applied = module.run_offline_tuning("hive", OperatorKind.AGGREGATE)
        assert applied > 0
        assert len(module.cache) == 0

    def test_routing_change_retires_entries(self, module, catalog):
        """route()/switch_to() bump the generation, so old keys go cold."""
        plan = parse_select(PLAN)
        module.estimate_plan("hive", plan, catalog)
        estimator = module.estimator("hive")
        generation = estimator.generation
        estimator.route(OperatorKind.SCAN, CostingApproach.SUB_OP)
        assert estimator.generation == generation + 1
        assert not module.estimate_plan("hive", plan, catalog).cache_hit

    def test_estimate_full_plan_warm_run_all_hits(self, module, catalog):
        plan = parse_select(
            "SELECT SUM(a1) FROM t8000000_100 r JOIN t1000000_100 s "
            "ON r.a1 = s.a1 GROUP BY a5"
        )
        cold_total, cold = module.estimate_full_plan("hive", plan, catalog)
        warm_total, warm = module.estimate_full_plan("hive", plan, catalog)
        assert warm_total == cold_total
        assert all(e.cache_hit for e in warm)
        assert not any(e.cache_hit for e in cold)
