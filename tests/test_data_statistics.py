"""Tests for table/column statistics derivation."""

import pytest

from repro.data.schema import paper_schema
from repro.data.statistics import ColumnStatistics, TableStatistics
from repro.data.table import TableSpec
from repro.exceptions import CatalogError, ConfigurationError


@pytest.fixture()
def spec():
    return TableSpec(name="t", schema=paper_schema(100), num_rows=1_000_000)


class TestColumnStatistics:
    def test_rejects_inverted_bounds(self):
        with pytest.raises(ConfigurationError):
            ColumnStatistics(name="a", ndv=10, min_value=5, max_value=1)

    def test_range_selectivity_uniform(self):
        stat = ColumnStatistics(name="a", ndv=100, min_value=0, max_value=100)
        assert stat.selectivity_range(0, 50) == pytest.approx(0.5)
        assert stat.selectivity_range(-10, 200) == 1.0
        assert stat.selectivity_range(200, 300) == 0.0

    def test_unknown_bounds_conservative(self):
        stat = ColumnStatistics(name="a", ndv=10)
        assert stat.selectivity_range(0, 1) == 1.0


class TestFromSpec:
    def test_row_counts(self, spec):
        stats = TableStatistics.from_spec(spec)
        assert stats.num_rows == 1_000_000
        assert stats.avg_row_size == 100.0

    def test_ndv_follows_duplication_rate(self, spec):
        stats = TableStatistics.from_spec(spec)
        assert stats.column("a1").ndv == 1_000_000
        assert stats.column("a5").ndv == 200_000
        assert stats.column("a100").ndv == 10_000

    def test_constant_column_ndv_one(self, spec):
        stats = TableStatistics.from_spec(spec)
        z = stats.column("z")
        assert z.ndv == 1
        assert z.min_value == 0.0
        assert z.max_value == 0.0

    def test_value_bounds(self, spec):
        stats = TableStatistics.from_spec(spec)
        a1 = stats.column("a1")
        assert a1.min_value == 0.0
        assert a1.max_value == 999_999.0

    def test_char_column_has_no_bounds(self, spec):
        stats = TableStatistics.from_spec(spec)
        dummy = stats.column("dummy")
        assert dummy.min_value is None

    def test_empty_table(self):
        empty = TableSpec(name="e", schema=paper_schema(40), num_rows=0)
        stats = TableStatistics.from_spec(empty)
        assert stats.num_rows == 0
        assert stats.column("a1").ndv == 0

    def test_missing_column_raises(self, spec):
        stats = TableStatistics.from_spec(spec)
        with pytest.raises(CatalogError):
            stats.column("nope")

    def test_total_bytes(self, spec):
        stats = TableStatistics.from_spec(spec)
        assert stats.total_bytes == 100_000_000
