"""Tests for the federated catalog."""

import pytest

from repro.data import Catalog, TableSpec
from repro.data.schema import paper_schema
from repro.exceptions import CatalogError


@pytest.fixture()
def spec():
    return TableSpec(name="t1", schema=paper_schema(40), num_rows=100, location="hive")


class TestRegistration:
    def test_register_and_lookup(self, spec):
        cat = Catalog()
        cat.register(spec)
        assert cat.table("t1") is spec
        assert cat.has_table("t1")
        assert "t1" in cat

    def test_statistics_derived_automatically(self, spec):
        cat = Catalog()
        cat.register(spec)
        assert cat.statistics("t1").num_rows == 100

    def test_duplicate_rejected(self, spec):
        cat = Catalog()
        cat.register(spec)
        with pytest.raises(CatalogError):
            cat.register(spec)

    def test_replace_allowed(self, spec):
        cat = Catalog()
        cat.register(spec)
        bigger = TableSpec(
            name="t1", schema=spec.schema, num_rows=999, location="hive"
        )
        cat.register(bigger, replace=True)
        assert cat.table("t1").num_rows == 999

    def test_unregister(self, spec):
        cat = Catalog()
        cat.register(spec)
        cat.unregister("t1")
        assert not cat.has_table("t1")
        with pytest.raises(CatalogError):
            cat.unregister("t1")


class TestLookups:
    def test_missing_table_raises(self):
        with pytest.raises(CatalogError):
            Catalog().table("nope")
        with pytest.raises(CatalogError):
            Catalog().statistics("nope")

    def test_tables_at_location(self, spec):
        cat = Catalog()
        cat.register(spec)
        other = TableSpec(
            name="t2", schema=spec.schema, num_rows=5, location="spark"
        )
        cat.register(other)
        assert [t.name for t in cat.tables_at("hive")] == ["t1"]
        assert [t.name for t in cat.tables_at("spark")] == ["t2"]
        assert cat.tables_at("nowhere") == ()

    def test_iteration_and_len(self, spec):
        cat = Catalog()
        cat.register(spec)
        assert len(cat) == 1
        assert [t.name for t in cat] == ["t1"]
