"""Tail-based sampling: completion-time keep/drop decisions, the env
configuration surface, and the head-floor retention guarantee."""

import pytest

from repro import obs
from repro.obs import context as ctx
from repro.obs import tail


@pytest.fixture(autouse=True)
def _fresh_obs_state():
    """Isolate ids, samplers, registry, and the global tracer per test."""
    obs.reset_query_ids()
    previous_registry = obs.set_registry(obs.MetricsRegistry())
    previous_sampler = obs.set_sampler(ctx.HeadSampler(rate=1.0))
    previous_store = obs.set_exemplar_store(ctx.ExemplarStore())
    previous_tail = obs.set_tail_sampler(None)
    tracer = obs.get_tracer()
    was_enabled = tracer.enabled
    tracer.clear()
    yield
    tracer.enabled = was_enabled
    tracer.clear()
    obs.set_tail_sampler(previous_tail)
    obs.set_exemplar_store(previous_store)
    obs.set_sampler(previous_sampler)
    obs.set_registry(previous_registry)
    obs.reset_query_ids()


def outcome(**overrides):
    defaults = dict(query_id="q-000001", sampled=False)
    defaults.update(overrides)
    return tail.QueryOutcome(**defaults)


class TestTailSampler:
    def test_validates_thresholds(self):
        with pytest.raises(ValueError):
            tail.TailSampler(latency_seconds=-1.0)
        with pytest.raises(ValueError):
            tail.TailSampler(max_q_error=0.5)

    def test_no_criterion_matches_drops(self):
        sampler = tail.TailSampler(latency_seconds=1.0, max_q_error=2.0)
        decision = sampler.decide(outcome(wall_seconds=0.1, max_q_error=1.1))
        assert decision.keep is False
        assert decision.reasons == ()

    def test_latency_breach_keeps(self):
        sampler = tail.TailSampler(latency_seconds=1.0)
        decision = sampler.decide(outcome(wall_seconds=1.0))
        assert decision.keep is True
        assert decision.reasons == ("latency",)

    def test_q_error_breach_keeps(self):
        sampler = tail.TailSampler(max_q_error=2.0)
        decision = sampler.decide(outcome(max_q_error=2.5))
        assert decision.reasons == ("q_error",)

    def test_error_keeps_and_can_be_disabled(self):
        erroring = outcome(error="ValueError")
        assert tail.TailSampler().decide(erroring).reasons == ("error",)
        relaxed = tail.TailSampler(keep_errors=False)
        assert relaxed.decide(erroring).keep is False

    def test_head_sampled_is_a_floor_and_can_be_disabled(self):
        head_kept = outcome(sampled=True)
        assert tail.TailSampler().decide(head_kept).reasons == ("head",)
        strict = tail.TailSampler(keep_head_sampled=False)
        assert strict.decide(head_kept).keep is False

    def test_reasons_follow_declared_order(self):
        sampler = tail.TailSampler(latency_seconds=1.0, max_q_error=2.0)
        decision = sampler.decide(
            outcome(
                sampled=True, wall_seconds=5.0, max_q_error=9.0, error="OSError"
            )
        )
        assert decision.reasons == tail.KEEP_REASONS
        assert decision.reasons == ("head", "latency", "q_error", "error")

    def test_decisions_counted_by_verdict_and_reason(self):
        registry = obs.get_registry()
        sampler = tail.TailSampler(latency_seconds=1.0, max_q_error=2.0)
        sampler.decide(outcome(wall_seconds=2.0, max_q_error=3.0))
        sampler.decide(outcome())
        sampler.decide(outcome())
        assert registry.counter("obs.tail.kept").value == 1.0
        assert registry.counter("obs.tail.dropped").value == 2.0
        assert registry.counter("obs.tail.kept_latency").value == 1.0
        assert registry.counter("obs.tail.kept_q_error").value == 1.0


class TestEnvConfiguration:
    def test_unset_environment_means_off(self, monkeypatch):
        monkeypatch.delenv(tail.TAIL_LATENCY_ENV_VAR, raising=False)
        monkeypatch.delenv(tail.TAIL_QERROR_ENV_VAR, raising=False)
        obs.set_tail_sampler(None)
        assert obs.get_tail_sampler() is None

    def test_latency_env_var_installs_sampler(self, monkeypatch):
        monkeypatch.setenv(tail.TAIL_LATENCY_ENV_VAR, "2.5")
        obs.set_tail_sampler(None)
        sampler = obs.get_tail_sampler()
        assert sampler is not None
        assert sampler.latency_seconds == 2.5
        assert sampler.max_q_error is None

    def test_q_error_env_var_clamped_to_valid_range(self, monkeypatch):
        monkeypatch.setenv(tail.TAIL_QERROR_ENV_VAR, "0.5")
        obs.set_tail_sampler(None)
        sampler = obs.get_tail_sampler()
        assert sampler is not None
        assert sampler.max_q_error == 1.0

    def test_invalid_values_mean_off(self, monkeypatch):
        monkeypatch.setenv(tail.TAIL_LATENCY_ENV_VAR, "not-a-number")
        monkeypatch.setenv(tail.TAIL_QERROR_ENV_VAR, "-3")
        obs.set_tail_sampler(None)
        assert obs.get_tail_sampler() is None

    def test_set_sampler_overrides_environment(self, monkeypatch):
        monkeypatch.setenv(tail.TAIL_LATENCY_ENV_VAR, "2.5")
        installed = tail.TailSampler(max_q_error=4.0)
        obs.set_tail_sampler(installed)
        assert obs.get_tail_sampler() is installed


class TestCompletionDispatch:
    """The context scope asks the tail sampler at close and dispatches
    (outcome, decision) to every registered hook."""

    def test_without_tail_sampler_decision_mirrors_head(self):
        seen = []
        hook = lambda o, d: seen.append((o, d))  # noqa: E731
        obs.add_completion_hook(hook)
        try:
            with obs.query_context(sampled=True):
                pass
            with obs.query_context(sampled=False):
                pass
        finally:
            obs.remove_completion_hook(hook)
        assert seen[0][1].keep is True
        assert seen[0][1].reasons == ("head",)
        assert seen[1][1].keep is False

    def test_tail_sampler_keeps_breaching_unsampled_query(self):
        obs.set_tail_sampler(tail.TailSampler(max_q_error=2.0))
        seen = []
        hook = lambda o, d: seen.append((o, d))  # noqa: E731
        obs.add_completion_hook(hook)
        try:
            with obs.query_context(query="SELECT 1", sampled=False):
                obs.note_query_q_error(5.0)
        finally:
            obs.remove_completion_hook(hook)
        (outcome_seen, decision), = seen
        assert outcome_seen.max_q_error == 5.0
        assert outcome_seen.query == "SELECT 1"
        assert decision.keep is True
        assert decision.reasons == ("q_error",)


class TestTailRetention:
    """The headline guarantee: a 1% head rate keeps tracing cost bounded
    while the tail verdict retains 100% of threshold-breaching queries."""

    def test_one_percent_head_rate_retains_every_breaching_query(self):
        tracer = obs.get_tracer()
        tracer.enable()
        obs.set_sampler(ctx.HeadSampler(rate=0.01))
        obs.set_tail_sampler(
            tail.TailSampler(latency_seconds=30.0, max_q_error=2.0)
        )
        breaching = []
        total = 200
        for index in range(total):
            with obs.query_context(query=f"SELECT {index}") as context:
                with tracer.span("costing.estimate"):
                    pass
                if index % 10 == 3:
                    obs.note_query_q_error(5.0)
                    breaching.append(context.query_id)
        traced = {
            root.attributes.get("query_id") for root in tracer.traces()
        }
        # 100% of threshold-breaching queries kept their full trace.
        assert set(breaching) <= traced
        # The healthy bulk was dropped down to the 1% head floor.
        head_floor = traced - set(breaching)
        assert len(head_floor) == 2  # 1% of 200
        registry = obs.get_registry()
        kept = registry.counter("obs.tail.kept").value
        dropped = registry.counter("obs.tail.dropped").value
        assert kept == len(breaching) + len(head_floor)
        assert kept + dropped == total
        assert tracer.pending_count() == 0  # nothing leaks in the buffer

    def test_dropped_queries_never_reach_the_trace_ring(self):
        tracer = obs.get_tracer()
        tracer.enable()
        obs.set_sampler(ctx.HeadSampler(rate=0.0))
        obs.set_tail_sampler(tail.TailSampler(latency_seconds=30.0))
        for index in range(10):
            with obs.query_context(query=f"SELECT {index}"):
                with tracer.span("costing.estimate"):
                    pass
        assert tracer.traces() == ()
        assert tracer.pending_count() == 0
