"""Tests for dimension metadata and the continuity expansion rule."""

import pytest

from repro.core.metadata import DimensionMetadata, find_pivots
from repro.exceptions import ConfigurationError


@pytest.fixture()
def meta():
    """The Fig. 2 example: range [100, 1000] with step 100."""
    return DimensionMetadata(
        name="row_size", min_value=100, max_value=1000, step_size=100
    )


class TestConstruction:
    def test_from_values_derives_step(self):
        meta = DimensionMetadata.from_values("d", [100, 200, 300, 400])
        assert meta.min_value == 100
        assert meta.max_value == 400
        assert meta.step_size == 100

    def test_from_values_median_gap_robust_to_irregularity(self):
        meta = DimensionMetadata.from_values("d", [0, 100, 200, 300, 1000])
        assert meta.step_size == 100  # median gap, not mean

    def test_single_value_dimension(self):
        meta = DimensionMetadata.from_values("d", [500, 500])
        assert meta.min_value == meta.max_value == 500
        assert meta.step_size > 0

    def test_empty_rejected(self):
        with pytest.raises(ConfigurationError):
            DimensionMetadata.from_values("d", [])

    def test_inverted_range_rejected(self):
        with pytest.raises(ConfigurationError):
            DimensionMetadata(name="d", min_value=10, max_value=5, step_size=1)


class TestWayOffCheck:
    def test_paper_example(self, meta):
        """Fig. 2 narrative: a 10,000-byte row size is way off [100, 1000]."""
        assert meta.is_way_off(10_000, beta=2.0)

    def test_inside_range_not_off(self, meta):
        assert not meta.is_way_off(500, beta=2.0)

    def test_proximity_band_not_off(self, meta):
        # within beta * step = 200 of the boundary
        assert not meta.is_way_off(1150, beta=2.0)
        assert not meta.is_way_off(0, beta=2.0)

    def test_just_past_band_is_off(self, meta):
        assert meta.is_way_off(1201, beta=2.0)

    def test_beta_must_exceed_one(self, meta):
        with pytest.raises(ConfigurationError):
            meta.is_way_off(5000, beta=1.0)

    def test_extra_points_count_as_covered(self, meta):
        meta.extra_points = [8000.0, 10_000.0]
        assert not meta.is_way_off(8100, beta=2.0)
        assert meta.is_way_off(5000, beta=2.0)  # the gap is still uncovered


class TestAbsorption:
    def test_contiguous_expansion(self, meta):
        """Values within β·step of the boundary extend the range (§3)."""
        meta.absorb([1100, 1200], beta=2.0)
        assert meta.max_value == 1200
        assert meta.extra_points == []

    def test_discontiguous_values_become_extra_points(self, meta):
        """The paper's 8,000/10,000-byte example: range stays intact."""
        meta.absorb([8000, 10_000], beta=2.0)
        assert meta.max_value == 1000
        assert meta.extra_points == [8000.0, 10_000.0]

    def test_bridging_merges_extras_into_range(self, meta):
        meta.absorb([8000], beta=2.0)
        assert meta.extra_points == [8000.0]
        # Now fill the gap with a chain of near-step values.
        chain = list(range(1200, 8001, 150))
        meta.absorb(chain, beta=2.0)
        assert meta.max_value == 8000
        assert meta.extra_points == []

    def test_downward_expansion(self, meta):
        meta.absorb([0], beta=2.0)
        assert meta.min_value == 0

    def test_duplicate_extras_not_stored(self, meta):
        meta.absorb([8000], beta=2.0)
        meta.absorb([8000], beta=2.0)
        assert meta.extra_points == [8000.0]


class TestPivotReport:
    def test_classification(self, meta):
        other = DimensionMetadata(
            name="rows", min_value=1e4, max_value=8e6, step_size=1e5
        )
        report = find_pivots([meta, other], [500, 2e7], beta=2.0)
        assert report.pivots == (1,)
        assert report.in_range == (0,)
        assert report.needs_remedy

    def test_all_in_range(self, meta):
        report = find_pivots([meta], [500], beta=2.0)
        assert not report.needs_remedy

    def test_length_mismatch_rejected(self, meta):
        with pytest.raises(ConfigurationError):
            find_pivots([meta], [1, 2])
