"""Tests for the topology search and train/test splitting."""

import numpy as np
import pytest

from repro.exceptions import ConfigurationError
from repro.ml.crossval import (
    candidate_topologies,
    topology_search,
    train_test_split,
)


class TestSplit:
    def test_sizes(self):
        x = np.arange(100.0).reshape(-1, 1)
        y = np.arange(100.0)
        x_tr, y_tr, x_te, y_te = train_test_split(x, y, test_fraction=0.3, seed=0)
        assert len(x_te) == 30
        assert len(x_tr) == 70

    def test_disjoint_and_complete(self):
        x = np.arange(50.0).reshape(-1, 1)
        y = np.arange(50.0)
        x_tr, y_tr, x_te, y_te = train_test_split(x, y, seed=1)
        combined = sorted(np.concatenate([y_tr, y_te]).tolist())
        assert combined == sorted(y.tolist())

    def test_deterministic(self):
        x = np.arange(20.0).reshape(-1, 1)
        y = np.arange(20.0)
        a = train_test_split(x, y, seed=5)[1]
        b = train_test_split(x, y, seed=5)[1]
        assert np.array_equal(a, b)

    def test_bad_fraction_rejected(self):
        x = np.ones((10, 1))
        with pytest.raises(ConfigurationError):
            train_test_split(x, np.ones(10), test_fraction=1.5)


class TestCandidateGrid:
    def test_paper_bounds_for_join(self):
        """Join has 7 inputs: layer1 in [7, 14], layer2 in [3, layer1/2]."""
        grid = candidate_topologies(7)
        layer1s = {a for a, _ in grid}
        assert layer1s == set(range(7, 15))
        for layer1, layer2 in grid:
            assert 3 <= layer2 <= max(3, layer1 // 2)

    def test_small_input_count(self):
        grid = candidate_topologies(4)
        assert all(layer2 >= 3 for _, layer2 in grid)
        assert grid  # non-empty

    def test_thinning(self):
        grid = candidate_topologies(7, max_candidates=5)
        assert len(grid) <= 5

    def test_invalid_inputs(self):
        with pytest.raises(ConfigurationError):
            candidate_topologies(0)


class TestTopologySearch:
    def test_returns_valid_result(self):
        rng = np.random.default_rng(0)
        x = rng.uniform(1, 50, size=(200, 4))
        y = x[:, 0] * 2 + x[:, 1] * x[:, 2] * 0.1 + 5
        result = topology_search(
            x, y, iterations=300, seed=0, max_candidates=3
        )
        assert result.best_topology in [t for t, _ in result.scores]
        assert result.best_rmse == min(s for _, s in result.scores)
        assert len(result.scores) <= 3

    def test_deterministic(self):
        rng = np.random.default_rng(0)
        x = rng.uniform(1, 50, size=(120, 3))
        y = x.sum(axis=1)
        a = topology_search(x, y, iterations=150, seed=3, max_candidates=2)
        b = topology_search(x, y, iterations=150, seed=3, max_candidates=2)
        assert a.best_topology == b.best_topology
        assert a.best_rmse == b.best_rmse
