"""Tests for the fluent query builder."""

import pytest

from repro.exceptions import ConfigurationError
from repro.sql.ast import column, lit
from repro.sql.builder import QueryBuilder, scan
from repro.sql.logical import Aggregate, Filter, Join, Project, Scan


class TestBuilder:
    def test_scan(self):
        plan = scan("t").plan()
        assert isinstance(plan, Scan)
        assert plan.table == "t"

    def test_scan_with_pushdown(self):
        plan = scan("t", projection=("a1",), predicate=column("a1").lt(5)).plan()
        assert plan.projection == ("a1",)
        assert plan.predicate is not None

    def test_filter_project_chain(self):
        plan = scan("t").filter(column("a1").lt(5)).project("a1", "a2").plan()
        assert isinstance(plan, Project)
        assert isinstance(plan.input, Filter)
        assert isinstance(plan.input.input, Scan)

    def test_join_by_table_name(self):
        plan = scan("r").join("s", on=("a1", "a2")).plan()
        assert isinstance(plan, Join)
        assert plan.condition.left_column == "a1"
        assert plan.condition.right_column == "a2"

    def test_join_with_builder_right(self):
        right = scan("s").filter(column("a1").lt(10))
        plan = scan("r").join(right, on=("a1", "a1")).plan()
        assert isinstance(plan.right, Filter)

    def test_join_with_extra_and_projection(self):
        extra = (column("a1") + column("z")).lt(lit(100))
        plan = scan("r").join("s", on=("a1", "a1"), extra=extra, project=("a1",)).plan()
        assert plan.extra_predicate is extra
        assert plan.projection == ("a1",)

    def test_sum_of_shorthand(self):
        plan = scan("t").sum_of("a1", "a2", group_by=("a5",)).plan()
        assert isinstance(plan, Aggregate)
        assert len(plan.aggregates) == 2
        assert plan.group_by == ("a5",)

    def test_builder_is_immutable(self):
        base = scan("t")
        base.filter(column("a1").lt(5))
        assert isinstance(base.plan(), Scan)  # unchanged

    def test_invalid_right_operand(self):
        with pytest.raises(ConfigurationError):
            scan("r").join(42, on=("a", "b"))  # type: ignore[arg-type]
