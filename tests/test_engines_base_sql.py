"""Tests for the SQL-text execution surface and plan shipping."""

import pytest

from repro.sql.parser import parse_select
from repro.sql.render import render_plan


class TestExecuteSql:
    def test_sql_text_equals_plan_execution(self, small_hive):
        sql = "SELECT SUM(a1) FROM t1000000_100 GROUP BY a5"
        via_text = small_hive.execute_sql(sql)
        via_plan = small_hive.execute(parse_select(sql))
        assert via_text.output_rows == via_plan.output_rows
        assert via_text.algorithm == via_plan.algorithm

    def test_rendered_plan_ships_and_runs(self, small_hive):
        """The connector path: plan -> SQL text -> remote execution."""
        plan = parse_select(
            "SELECT r.a1 FROM t1000000_100 r JOIN t10000_100 s "
            "ON r.a1 = s.a1 AND r.a1 + s.z < 5000"
        )
        shipped = render_plan(plan)
        direct = small_hive.execute(plan)
        remote = small_hive.execute_sql(shipped)
        assert remote.output_rows == direct.output_rows
        assert remote.algorithm == direct.algorithm
        assert remote.elapsed_seconds == pytest.approx(
            direct.elapsed_seconds, rel=0.2
        )
