"""Observation building (live / journal / snapshot) and the per-system
composite health score."""

import pytest

from repro import obs
from repro.obs.health import (
    _CACHE_WARMUP_LOOKUPS,
    evaluate_health,
    worst_grade,
)
from repro.obs.journal import JournalEvent


def ledger_entry(mean_q=1.0, rmse=10.0, count=32, remedy=0.0):
    return {
        "count": count,
        "mean_q_error": mean_q,
        "rmse_percent": rmse,
        "slope": 1.0,
        "remedy_fraction": remedy,
    }


def make_observation(ledger=None, drift=None, cache=None):
    observation = {
        "version": obs.OBSERVATION_VERSION,
        "metrics": {},
        "ledger": ledger or {},
        "drift": drift or {},
        "cache": {
            "hits": 0,
            "misses": 0,
            "lookups": 0,
            "hit_rate": 0.0,
            "size": 0,
            "evictions": 0,
            "invalidations": 0,
        },
        "exemplars": {},
    }
    if cache:
        observation["cache"].update(cache)
    return observation


class TestBuildObservation:
    def test_live_observation_shape(self):
        registry = obs.MetricsRegistry()
        registry.counter("context.queries").inc(3)
        ledger = obs.AccuracyLedger()
        observation = obs.build_observation(
            registry=registry,
            ledger=ledger,
            drift={"hive": {"drifted": False, "statistic": 0.0}},
            cache={"hits": 5, "misses": 5, "lookups": 10, "hit_rate": 0.5},
            exemplars={"hive": ["q-000001"]},
        )
        assert observation["version"] == obs.OBSERVATION_VERSION
        assert observation["metrics"]["context.queries"]["value"] == 3.0
        assert observation["drift"]["hive"]["drifted"] is False
        assert observation["cache"]["hit_rate"] == 0.5
        # Missing cache fields are defaulted, not dropped.
        assert observation["cache"]["evictions"] == 0
        assert observation["exemplars"]["hive"] == ["q-000001"]

    def test_defaults_to_process_wide_sources(self):
        observation = obs.build_observation()
        assert observation["version"] == obs.OBSERVATION_VERSION
        assert isinstance(observation["metrics"], dict)
        assert observation["drift"] == {}


class TestObservationFromJournal:
    def _events(self):
        return [
            JournalEvent(
                seq=1,
                type="actual",
                payload={
                    "system": "hive",
                    "operator": "join",
                    "approach": "sub_op",
                    "estimated_seconds": 10.0,
                    "actual_seconds": 20.0,
                    "remedy_active": False,
                    "drift_flagged": False,
                    "query_id": "q-000001",
                },
            ),
            JournalEvent(
                seq=2,
                type="estimate",
                payload={
                    "system": "hive",
                    "approach": "sub_op",
                    "seconds": 5.0,
                    "remedy_active": False,
                    "query_id": "q-000002",
                },
            ),
            JournalEvent(
                seq=3,
                type="drift",
                payload={
                    "system": "hive",
                    "direction": "slower",
                    "statistic": 7.5,
                    "observations": 40,
                },
            ),
        ]

    def test_rebuilds_ledger_drift_and_exemplars(self, tmp_path):
        journal = obs.EventJournal(tmp_path / "j.jsonl")
        for event in self._events():
            journal.append(event.type, **event.payload)
        journal.close()

        observation = obs.observation_from_journal(tmp_path / "j.jsonl")
        assert observation["ledger"]["hive/join"]["count"] == 1
        assert observation["ledger"]["hive/join"]["mean_q_error"] == 2.0
        assert observation["drift"]["hive"]["drifted"] is True
        assert observation["drift"]["hive"]["statistic"] == 7.5
        assert observation["exemplars"]["hive"] == ["q-000001", "q-000002"]
        # Cache stats are process-local, never journaled: all-zero.
        assert observation["cache"]["lookups"] == 0

    def test_does_not_touch_live_state(self, tmp_path):
        journal = obs.EventJournal(tmp_path / "j.jsonl")
        for event in self._events():
            journal.append(event.type, **event.payload)
        journal.close()
        live_before = obs.get_registry().snapshot()
        obs.observation_from_journal(tmp_path / "j.jsonl")
        assert obs.get_registry().snapshot() == live_before

    def test_exemplar_buffer_is_bounded_and_distinct(self):
        events = [
            JournalEvent(
                seq=index + 1,
                type="estimate",
                payload={
                    "system": "hive",
                    "seconds": 1.0,
                    "query_id": f"q-{index % 10:06d}",
                },
            )
            for index in range(30)
        ]
        from repro.obs.journal import ReadResult

        observation = obs.observation_from_events(
            ReadResult(events=tuple(events), corrupt_lines=0, skipped_versions=0)
        )
        exemplars = observation["exemplars"]["hive"]
        assert len(exemplars) == 8
        assert len(set(exemplars)) == 8


class TestObservationFromSnapshot:
    def test_adapts_metrics_and_ledger_only(self):
        snapshot = {
            "version": 1,
            "metrics": {"context.queries": {"type": "counter", "value": 2.0}},
            "ledger": {"hive/scan": ledger_entry(mean_q=3.0)},
        }
        observation = obs.observation_from_snapshot(snapshot)
        assert observation["metrics"]["context.queries"]["value"] == 2.0
        assert observation["ledger"]["hive/scan"]["mean_q_error"] == 3.0
        assert observation["drift"] == {}
        assert observation["exemplars"] == {}
        assert observation["cache"]["lookups"] == 0

    def test_tolerates_malformed_input(self):
        observation = obs.observation_from_snapshot({"metrics": "garbage"})
        assert observation["metrics"] == {}
        assert observation["ledger"] == {}


class TestHealthScore:
    def test_accurate_system_is_healthy(self):
        healths = evaluate_health(
            make_observation(ledger={"hive/scan": ledger_entry(mean_q=1.2)})
        )
        assert len(healths) == 1
        health = healths[0]
        assert health.system == "hive"
        assert health.grade == "healthy"
        assert health.components["accuracy"] == round(1 / 1.2, 4)
        assert health.observations == 32

    def test_degraded_accuracy_tanks_the_score(self):
        healths = evaluate_health(
            make_observation(ledger={"hive/scan": ledger_entry(mean_q=10.0)})
        )
        assert healths[0].grade == "critical"
        assert healths[0].components["accuracy"] == 0.1

    def test_drift_alarm_collapses_drift_component(self):
        healths = evaluate_health(
            make_observation(
                ledger={"hive/scan": ledger_entry(mean_q=1.0)},
                drift={"hive": {"drifted": True, "statistic": 9.0}},
            )
        )
        assert healths[0].components["drift"] == 0.25
        assert healths[0].grade == "critical"

    def test_remedy_saturation_degrades(self):
        healths = evaluate_health(
            make_observation(
                ledger={"hive/scan": ledger_entry(mean_q=1.0, remedy=1.0)}
            )
        )
        assert healths[0].components["remedy"] == 0.5
        assert healths[0].grade == "degraded"

    def test_cold_cache_does_not_penalize(self):
        healths = evaluate_health(
            make_observation(
                ledger={"hive/scan": ledger_entry()},
                cache={"lookups": _CACHE_WARMUP_LOOKUPS - 1, "hit_rate": 0.0},
            )
        )
        assert healths[0].components["cache"] == 1.0

    def test_warm_cache_with_no_hits_halves_component(self):
        healths = evaluate_health(
            make_observation(
                ledger={"hive/scan": ledger_entry()},
                cache={"lookups": _CACHE_WARMUP_LOOKUPS, "hit_rate": 0.0},
            )
        )
        assert healths[0].components["cache"] == 0.5

    def test_accuracy_is_count_weighted_across_operators(self):
        healths = evaluate_health(
            make_observation(
                ledger={
                    "hive/scan": ledger_entry(mean_q=1.0, count=30),
                    "hive/join": ledger_entry(mean_q=4.0, count=10),
                }
            )
        )
        # (30*1 + 10*4) / 40 = 1.75 -> accuracy 1/1.75
        assert healths[0].components["accuracy"] == round(1 / 1.75, 4)
        assert healths[0].observations == 40

    def test_drift_only_system_is_discovered(self):
        healths = evaluate_health(
            make_observation(drift={"spark": {"drifted": True}})
        )
        assert [h.system for h in healths] == ["spark"]
        assert healths[0].observations == 0
        assert healths[0].components["accuracy"] == 1.0
        assert healths[0].components["drift"] == 0.25

    def test_systems_sorted_by_name(self):
        healths = evaluate_health(
            make_observation(
                ledger={
                    "spark/scan": ledger_entry(),
                    "hive/scan": ledger_entry(),
                    "presto/scan": ledger_entry(),
                }
            )
        )
        assert [h.system for h in healths] == ["hive", "presto", "spark"]

    def test_empty_observation_yields_no_systems(self):
        assert evaluate_health(make_observation()) == []

    def test_to_dict_round_trips(self):
        health = evaluate_health(
            make_observation(ledger={"hive/scan": ledger_entry()})
        )[0]
        data = health.to_dict()
        assert data["system"] == "hive"
        assert data["grade"] == "healthy"
        assert set(data["components"]) == {
            "accuracy", "drift", "remedy", "cache",
        }


class TestWorstGrade:
    def test_none_with_no_systems(self):
        assert worst_grade([]) is None

    def test_picks_the_worst(self):
        healths = evaluate_health(
            make_observation(
                ledger={
                    "hive/scan": ledger_entry(mean_q=1.0),
                    "spark/scan": ledger_entry(mean_q=10.0),
                }
            )
        )
        assert worst_grade(healths) == "critical"
