"""Observation building (live / journal / snapshot) and the per-system
composite health score."""

import pytest

from repro import obs
from repro.obs.health import (
    _CACHE_WARMUP_LOOKUPS,
    evaluate_health,
    worst_grade,
)
from repro.obs.journal import JournalEvent


def ledger_entry(mean_q=1.0, rmse=10.0, count=32, remedy=0.0):
    return {
        "count": count,
        "mean_q_error": mean_q,
        "rmse_percent": rmse,
        "slope": 1.0,
        "remedy_fraction": remedy,
    }


def make_observation(ledger=None, drift=None, cache=None):
    observation = {
        "version": obs.OBSERVATION_VERSION,
        "metrics": {},
        "ledger": ledger or {},
        "drift": drift or {},
        "cache": {
            "hits": 0,
            "misses": 0,
            "lookups": 0,
            "hit_rate": 0.0,
            "size": 0,
            "evictions": 0,
            "invalidations": 0,
        },
        "exemplars": {},
    }
    if cache:
        observation["cache"].update(cache)
    return observation


class TestBuildObservation:
    def test_live_observation_shape(self):
        registry = obs.MetricsRegistry()
        registry.counter("context.queries").inc(3)
        ledger = obs.AccuracyLedger()
        observation = obs.build_observation(
            registry=registry,
            ledger=ledger,
            drift={"hive": {"drifted": False, "statistic": 0.0}},
            cache={"hits": 5, "misses": 5, "lookups": 10, "hit_rate": 0.5},
            exemplars={"hive": ["q-000001"]},
        )
        assert observation["version"] == obs.OBSERVATION_VERSION
        assert observation["metrics"]["context.queries"]["value"] == 3.0
        assert observation["drift"]["hive"]["drifted"] is False
        assert observation["cache"]["hit_rate"] == 0.5
        # Missing cache fields are defaulted, not dropped.
        assert observation["cache"]["evictions"] == 0
        assert observation["exemplars"]["hive"] == ["q-000001"]

    def test_defaults_to_process_wide_sources(self):
        observation = obs.build_observation()
        assert observation["version"] == obs.OBSERVATION_VERSION
        assert isinstance(observation["metrics"], dict)
        assert observation["drift"] == {}


class TestObservationFromJournal:
    def _events(self):
        return [
            JournalEvent(
                seq=1,
                type="actual",
                payload={
                    "system": "hive",
                    "operator": "join",
                    "approach": "sub_op",
                    "estimated_seconds": 10.0,
                    "actual_seconds": 20.0,
                    "remedy_active": False,
                    "drift_flagged": False,
                    "query_id": "q-000001",
                },
            ),
            JournalEvent(
                seq=2,
                type="estimate",
                payload={
                    "system": "hive",
                    "approach": "sub_op",
                    "seconds": 5.0,
                    "remedy_active": False,
                    "query_id": "q-000002",
                },
            ),
            JournalEvent(
                seq=3,
                type="drift",
                payload={
                    "system": "hive",
                    "direction": "slower",
                    "statistic": 7.5,
                    "observations": 40,
                },
            ),
        ]

    def test_rebuilds_ledger_drift_and_exemplars(self, tmp_path):
        journal = obs.EventJournal(tmp_path / "j.jsonl")
        for event in self._events():
            journal.append(event.type, **event.payload)
        journal.close()

        observation = obs.observation_from_journal(tmp_path / "j.jsonl")
        assert observation["ledger"]["hive/join"]["count"] == 1
        assert observation["ledger"]["hive/join"]["mean_q_error"] == 2.0
        assert observation["drift"]["hive"]["drifted"] is True
        assert observation["drift"]["hive"]["statistic"] == 7.5
        assert observation["exemplars"]["hive"] == ["q-000001", "q-000002"]
        # Cache stats are process-local, never journaled: all-zero.
        assert observation["cache"]["lookups"] == 0

    def test_does_not_touch_live_state(self, tmp_path):
        journal = obs.EventJournal(tmp_path / "j.jsonl")
        for event in self._events():
            journal.append(event.type, **event.payload)
        journal.close()
        live_before = obs.get_registry().snapshot()
        obs.observation_from_journal(tmp_path / "j.jsonl")
        assert obs.get_registry().snapshot() == live_before

    def test_exemplar_buffer_is_bounded_and_distinct(self):
        events = [
            JournalEvent(
                seq=index + 1,
                type="estimate",
                payload={
                    "system": "hive",
                    "seconds": 1.0,
                    "query_id": f"q-{index % 10:06d}",
                },
            )
            for index in range(30)
        ]
        from repro.obs.journal import ReadResult

        observation = obs.observation_from_events(
            ReadResult(events=tuple(events), corrupt_lines=0, skipped_versions=0)
        )
        exemplars = observation["exemplars"]["hive"]
        assert len(exemplars) == 8
        assert len(set(exemplars)) == 8


class TestObservationFromSnapshot:
    def test_adapts_metrics_and_ledger_only(self):
        snapshot = {
            "version": 1,
            "metrics": {"context.queries": {"type": "counter", "value": 2.0}},
            "ledger": {"hive/scan": ledger_entry(mean_q=3.0)},
        }
        observation = obs.observation_from_snapshot(snapshot)
        assert observation["metrics"]["context.queries"]["value"] == 2.0
        assert observation["ledger"]["hive/scan"]["mean_q_error"] == 3.0
        assert observation["drift"] == {}
        assert observation["exemplars"] == {}
        assert observation["cache"]["lookups"] == 0

    def test_tolerates_malformed_input(self):
        observation = obs.observation_from_snapshot({"metrics": "garbage"})
        assert observation["metrics"] == {}
        assert observation["ledger"] == {}


class TestHealthScore:
    def test_accurate_system_is_healthy(self):
        healths = evaluate_health(
            make_observation(ledger={"hive/scan": ledger_entry(mean_q=1.2)})
        )
        assert len(healths) == 1
        health = healths[0]
        assert health.system == "hive"
        assert health.grade == "healthy"
        assert health.components["accuracy"] == round(1 / 1.2, 4)
        assert health.observations == 32

    def test_degraded_accuracy_tanks_the_score(self):
        healths = evaluate_health(
            make_observation(ledger={"hive/scan": ledger_entry(mean_q=10.0)})
        )
        assert healths[0].grade == "critical"
        assert healths[0].components["accuracy"] == 0.1

    def test_drift_alarm_collapses_drift_component(self):
        healths = evaluate_health(
            make_observation(
                ledger={"hive/scan": ledger_entry(mean_q=1.0)},
                drift={"hive": {"drifted": True, "statistic": 9.0}},
            )
        )
        assert healths[0].components["drift"] == 0.25
        assert healths[0].grade == "critical"

    def test_remedy_saturation_degrades(self):
        healths = evaluate_health(
            make_observation(
                ledger={"hive/scan": ledger_entry(mean_q=1.0, remedy=1.0)}
            )
        )
        assert healths[0].components["remedy"] == 0.5
        assert healths[0].grade == "degraded"

    def test_cold_cache_does_not_penalize(self):
        healths = evaluate_health(
            make_observation(
                ledger={"hive/scan": ledger_entry()},
                cache={"lookups": _CACHE_WARMUP_LOOKUPS - 1, "hit_rate": 0.0},
            )
        )
        assert healths[0].components["cache"] == 1.0

    def test_warm_cache_with_no_hits_halves_component(self):
        healths = evaluate_health(
            make_observation(
                ledger={"hive/scan": ledger_entry()},
                cache={"lookups": _CACHE_WARMUP_LOOKUPS, "hit_rate": 0.0},
            )
        )
        assert healths[0].components["cache"] == 0.5

    def test_accuracy_is_count_weighted_across_operators(self):
        healths = evaluate_health(
            make_observation(
                ledger={
                    "hive/scan": ledger_entry(mean_q=1.0, count=30),
                    "hive/join": ledger_entry(mean_q=4.0, count=10),
                }
            )
        )
        # (30*1 + 10*4) / 40 = 1.75 -> accuracy 1/1.75
        assert healths[0].components["accuracy"] == round(1 / 1.75, 4)
        assert healths[0].observations == 40

    def test_drift_only_system_is_discovered(self):
        healths = evaluate_health(
            make_observation(drift={"spark": {"drifted": True}})
        )
        assert [h.system for h in healths] == ["spark"]
        assert healths[0].observations == 0
        assert healths[0].components["accuracy"] == 1.0
        assert healths[0].components["drift"] == 0.25

    def test_systems_sorted_by_name(self):
        healths = evaluate_health(
            make_observation(
                ledger={
                    "spark/scan": ledger_entry(),
                    "hive/scan": ledger_entry(),
                    "presto/scan": ledger_entry(),
                }
            )
        )
        assert [h.system for h in healths] == ["hive", "presto", "spark"]

    def test_empty_observation_yields_no_systems(self):
        assert evaluate_health(make_observation()) == []

    def test_to_dict_round_trips(self):
        health = evaluate_health(
            make_observation(ledger={"hive/scan": ledger_entry()})
        )[0]
        data = health.to_dict()
        assert data["system"] == "hive"
        assert data["grade"] == "healthy"
        assert set(data["components"]) == {
            "accuracy", "drift", "remedy", "cache",
        }


class TestWorstGrade:
    def test_none_with_no_systems(self):
        assert worst_grade([]) is None

    def test_picks_the_worst(self):
        healths = evaluate_health(
            make_observation(
                ledger={
                    "hive/scan": ledger_entry(mean_q=1.0),
                    "spark/scan": ledger_entry(mean_q=10.0),
                }
            )
        )
        assert worst_grade(healths) == "critical"


class TestTimeseriesSlice:
    """Every observation carries a windowed-telemetry slice: live from
    the process-wide aggregator, offline from ``window`` journal events,
    empty where no window source exists."""

    def test_live_observation_uses_default_aggregator(self):
        from repro.obs.timeseries import ManualClock, enable_timeseries

        registry = obs.MetricsRegistry()
        previous = obs.set_timeseries(None)
        try:
            clock = ManualClock()
            aggregator = enable_timeseries(
                width=10.0, clock=clock, registry=registry
            )
            aggregator.on_counter("c", 2.0)
            clock.advance(10.0)
            aggregator.maybe_roll()
            observation = obs.build_observation(
                registry=registry, ledger=obs.AccuracyLedger()
            )
            slice_ = observation["timeseries"]
            assert slice_["closed"] == 1
            assert slice_["windows"][0]["counters"] == {"c": 2.0}
        finally:
            obs.set_timeseries(previous)
            registry.detach_observer()

    def test_live_observation_is_empty_when_plane_off(self):
        previous = obs.set_timeseries(None)
        try:
            observation = obs.build_observation(
                registry=obs.MetricsRegistry(), ledger=obs.AccuracyLedger()
            )
            assert observation["timeseries"] == {
                "width": 0.0, "retention": 0, "closed": 0, "windows": [],
            }
        finally:
            obs.set_timeseries(previous)

    def test_explicit_slice_wins_over_live_aggregator(self):
        explicit = {"width": 5.0, "retention": 1, "closed": 0, "windows": []}
        observation = obs.build_observation(
            registry=obs.MetricsRegistry(),
            ledger=obs.AccuracyLedger(),
            timeseries=explicit,
        )
        assert observation["timeseries"] == explicit

    def test_observation_from_events_rebuilds_windows(self):
        from repro.obs.timeseries import ManualClock, TimeSeriesAggregator

        clock = ManualClock()
        aggregator = TimeSeriesAggregator(
            width=10.0, clock=clock, journal=obs.NOOP_JOURNAL
        )
        aggregator.on_counter("federation.runs", 3.0)
        clock.advance(10.0)
        aggregator.maybe_roll()
        events = [
            JournalEvent(
                seq=1, type="window",
                payload=aggregator.windows()[0].to_payload(),
            )
        ]
        observation = obs.observation_from_events(_read_result(events))
        slice_ = observation["timeseries"]
        assert slice_["width"] == 10.0
        assert slice_["closed"] == 1
        assert slice_["windows"][0]["counters"] == {"federation.runs": 3.0}

    def test_snapshot_observation_has_empty_slice(self):
        observation = obs.observation_from_snapshot({"metrics": {}})
        assert observation["timeseries"]["windows"] == []


def _read_result(events):
    """Wrap bare events in the ReadResult shape observation_from_events
    takes."""
    from repro.obs.journal import ReadResult

    return ReadResult(
        events=tuple(events), corrupt_lines=0, skipped_versions=0
    )


class TestTenantsSlice:
    """The tenants observation slice: live, offline, and snapshot paths
    agree on shape so alert rules and the CLI can consume any of them."""

    def test_live_observation_carries_tenant_snapshot(self):
        previous = obs.set_tenant_ledger(obs.TenantLedger())
        try:
            obs.get_tenant_ledger().record_estimate("etl", 4.0)
            observation = obs.build_observation()
            assert observation["tenants"]["etl"]["estimated_seconds"] == 4.0
        finally:
            obs.set_tenant_ledger(previous)

    def test_explicit_tenants_override_sorted(self):
        observation = obs.build_observation(
            registry=obs.MetricsRegistry(),
            ledger=obs.AccuracyLedger(),
            tenants={"zeta": {"queries": 1}, "alpha": {"queries": 2}},
        )
        assert list(observation["tenants"]) == ["alpha", "zeta"]

    def test_offline_tenants_rebuilt_from_journal_events(self, tmp_path):
        journal = obs.EventJournal(tmp_path / "j.jsonl")
        journal.append(
            "estimate",
            system="hive",
            operator="join",
            seconds=3.0,
            query_id="q-000001",
            tenant="analytics",
        )
        journal.append(
            "actual",
            system="hive",
            operator="join",
            estimated_seconds=3.0,
            actual_seconds=1.5,
            query_id="q-000001",
            tenant="analytics",
        )
        journal.append(
            "estimate", system="hive", operator="scan", seconds=1.0,
            query_id="q-000002",
        )  # unattributed
        journal.close()
        observation = obs.observation_from_journal(tmp_path / "j.jsonl")
        tenants = observation["tenants"]
        assert list(tenants) == ["analytics"]
        stats = tenants["analytics"]
        assert stats["queries"] == 1  # distinct query ids, not events
        assert stats["estimates"] == 1
        assert stats["estimated_seconds"] == 3.0
        assert stats["actuals"] == 1
        assert stats["mean_q_error"] == 2.0
        assert stats["max_q_error"] == 2.0

    def test_offline_layout_matches_live_key_order(self, tmp_path):
        journal = obs.EventJournal(tmp_path / "j.jsonl")
        journal.append(
            "estimate", system="hive", operator="join", seconds=3.0,
            query_id="q-000001", tenant="etl",
        )
        journal.close()
        offline = obs.observation_from_journal(tmp_path / "j.jsonl")
        live_ledger = obs.TenantLedger()
        live_ledger.record_estimate("etl", 3.0)
        live_keys = list(live_ledger.snapshot()["etl"])
        assert list(offline["tenants"]["etl"]) == live_keys

    def test_snapshot_observation_reads_tenants_key(self):
        observation = obs.observation_from_snapshot(
            {"metrics": {}, "ledger": {}, "tenants": {"adhoc": {"queries": 2}}}
        )
        assert observation["tenants"] == {"adhoc": {"queries": 2}}
        bare = obs.observation_from_snapshot({"metrics": {}, "ledger": {}})
        assert bare["tenants"] == {}
