"""Tests for cardinality and selectivity estimation."""

import pytest

from repro.exceptions import CatalogError
from repro.sql.ast import column, lit
from repro.sql.builder import scan
from repro.sql.cardinality import CardinalityEstimator
from repro.sql.parser import parse_select


@pytest.fixture()
def estimator(catalog):
    return CardinalityEstimator(catalog)


class TestScans:
    def test_plain_scan(self, estimator):
        est = estimator.estimate(parse_select("SELECT * FROM t1000000_100"))
        assert est.num_rows == 1_000_000
        assert est.row_size == 100

    def test_projection_shrinks_rows(self, estimator):
        est = estimator.estimate(parse_select("SELECT a1, a2 FROM t1000000_100"))
        assert est.num_rows == 1_000_000
        assert est.row_size == 8

    def test_range_predicate(self, estimator):
        est = estimator.estimate(
            parse_select("SELECT * FROM t1000000_100 WHERE a1 < 500000")
        )
        assert est.num_rows == pytest.approx(500_000, rel=0.01)

    def test_equality_predicate(self, estimator):
        est = estimator.estimate(
            parse_select("SELECT * FROM t1000000_100 WHERE a100 = 5")
        )
        # a100 has ndv = 10,000 -> 1/ndv of a million rows = 100.
        assert est.num_rows == pytest.approx(100, rel=0.05)


class TestJoins:
    def test_unique_key_join_yields_smaller_cardinality(self, estimator):
        """Fig. 10: joining on a1 returns exactly the smaller table size."""
        plan = parse_select(
            "SELECT * FROM t1000000_100 r JOIN t10000_100 s ON r.a1 = s.a1"
        )
        est = estimator.estimate(plan)
        assert est.num_rows == 10_000

    def test_selectivity_control_predicate(self, estimator):
        """R.a1 + S.z < threshold keeps exactly threshold/|S| of output."""
        plan = parse_select(
            "SELECT * FROM t1000000_100 r JOIN t10000_100 s "
            "ON r.a1 = s.a1 AND r.a1 + s.z < 2500"
        )
        est = estimator.estimate(plan)
        assert est.num_rows == pytest.approx(2_500, rel=0.02)

    def test_join_output_row_size_sums_sides(self, estimator):
        plan = parse_select(
            "SELECT * FROM t1000000_100 r JOIN t10000_250 s ON r.a1 = s.a1"
        )
        est = estimator.estimate(plan)
        assert est.row_size == 350

    def test_join_projection_row_size(self, estimator):
        plan = (
            scan("t1000000_100")
            .join("t10000_100", on=("a1", "a1"), project=("a1", "a2"))
            .plan()
        )
        est = estimator.estimate(plan)
        assert est.row_size == 8

    def test_many_to_many_join(self, estimator):
        # a100 on both sides: ndv_r = 10^4, ndv_s = 10^2.
        plan = parse_select(
            "SELECT * FROM t1000000_100 r JOIN t10000_100 s ON r.a100 = s.a100"
        )
        est = estimator.estimate(plan)
        # |R| * |S| / max(ndv) = 1e6 * 1e4 / 1e4 = 1e6
        assert est.num_rows == pytest.approx(1_000_000, rel=0.01)


class TestAggregates:
    def test_group_by_shrink_factor(self, estimator):
        est = estimator.estimate(
            parse_select("SELECT SUM(a1) FROM t1000000_100 GROUP BY a5")
        )
        assert est.num_rows == 200_000  # 1e6 / 5

    def test_global_aggregate_single_row(self, estimator):
        est = estimator.estimate(
            parse_select("SELECT COUNT(*) FROM t1000000_100")
        )
        assert est.num_rows == 1

    def test_output_row_size_counts_aggregates(self, estimator):
        est = estimator.estimate(
            parse_select("SELECT SUM(a1), SUM(a2) FROM t1000000_100 GROUP BY a5")
        )
        assert est.row_size == 4 + 2 * 8

    def test_groups_capped_by_input(self, estimator):
        plan = (
            scan("t10000_40", predicate=column("a1").lt(lit(10)))
            .sum_of("a1", group_by=("a1",))
            .plan()
        )
        est = estimator.estimate(plan)
        assert est.num_rows <= 10


class TestSelectivityRules:
    def test_conjunction_multiplies(self, estimator, catalog):
        stats = catalog.statistics("t1000000_100")
        columns = {n: stats.column(n) for n in stats.column_names}
        pred = column("a1").lt(500_000)
        both = pred.__class__  # keep flake quiet; use estimator API below
        sel_one = estimator.selectivity(pred, columns)
        from repro.sql.ast import BooleanAnd

        sel_two = estimator.selectivity(
            BooleanAnd((column("a1").lt(500_000), column("a1").lt(500_000))),
            columns,
        )
        assert sel_two == pytest.approx(sel_one**2)

    def test_negation_complements(self, estimator, catalog):
        stats = catalog.statistics("t1000000_100")
        columns = {n: stats.column(n) for n in stats.column_names}
        from repro.sql.ast import BooleanNot

        pred = column("a1").lt(250_000)
        sel = estimator.selectivity(pred, columns)
        neg = estimator.selectivity(BooleanNot(pred), columns)
        assert sel + neg == pytest.approx(1.0)

    def test_unknown_column_defaults(self, estimator):
        sel = estimator.selectivity(column("mystery").lt(5), {})
        assert 0 < sel <= 1

    def test_missing_join_column_raises(self, estimator):
        plan = (
            scan("t10000_40")
            .join("t10000_100", on=("nope", "a1"))
            .plan()
        )
        with pytest.raises(CatalogError):
            estimator.estimate(plan)
