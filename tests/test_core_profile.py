"""Tests for remote-system profiles and costing profiles (CP)."""

import pytest

from repro.core.estimator import CostingApproach
from repro.core.logical_op import LogicalOpModel
from repro.core.operators import OperatorKind
from repro.core.profile import CostingProfile, RemoteSystemProfile
from repro.core.subop_model import ClusterInfo, SubOpTrainer
from repro.core.training import TrainingSet
from repro.data import build_paper_corpus
from repro.engines import HiveEngine
from repro.exceptions import ConfigurationError, ModelNotTrainedError


@pytest.fixture(scope="module")
def cluster_info():
    return ClusterInfo(
        num_data_nodes=3, cores_per_node=2, dfs_block_size=128 * 1024 * 1024
    )


@pytest.fixture(scope="module")
def subop_result(cluster_info):
    engine = HiveEngine(seed=0, noise_sigma=0.0)
    for spec in build_paper_corpus(row_counts=(10_000,), row_sizes=(40,)):
        engine.load_table(spec)
    return SubOpTrainer().train(engine, cluster_info)


def trained_logical_model():
    model = LogicalOpModel(
        OperatorKind.AGGREGATE, search_topology=False, nn_iterations=300, seed=0
    )
    ts = TrainingSet(model.dimension_names)
    for rows in (1e5, 1e6, 8e6):
        for size in (40, 100, 1000):
            for groups in (rows, rows / 100):
                ts.add((rows, size, groups, 12), 1 + rows * 1e-6)
    model.train(ts)
    return model


class TestProfileValidation:
    def test_openbox_requires_cluster(self):
        with pytest.raises(ConfigurationError):
            RemoteSystemProfile(name="x", openbox=True, cluster=None)

    def test_blackbox_cannot_default_to_subop(self):
        with pytest.raises(ConfigurationError):
            RemoteSystemProfile(
                name="x",
                openbox=False,
                approach=CostingApproach.SUB_OP,
            )

    def test_blackbox_logical_ok(self):
        profile = RemoteSystemProfile(
            name="x", openbox=False, approach=CostingApproach.LOGICAL_OP
        )
        assert not profile.openbox

    def test_name_required(self, cluster_info):
        with pytest.raises(ConfigurationError):
            RemoteSystemProfile(name="", cluster=cluster_info)


class TestEstimatorAssembly:
    def test_untrained_profile_cannot_build(self, cluster_info):
        profile = RemoteSystemProfile(name="hive", cluster=cluster_info)
        with pytest.raises(ModelNotTrainedError):
            profile.build_estimator()

    def test_subop_only(self, cluster_info, subop_result):
        profile = RemoteSystemProfile(name="hive", cluster=cluster_info)
        profile.costing.subop_result = subop_result
        hybrid = profile.build_estimator()
        assert hybrid.sub_op is not None
        assert hybrid.logical_op is None
        assert hybrid.default_approach is CostingApproach.SUB_OP

    def test_logical_only_blackbox(self):
        profile = RemoteSystemProfile(
            name="bb", openbox=False, approach=CostingApproach.LOGICAL_OP
        )
        profile.costing.logical_models[OperatorKind.AGGREGATE] = (
            trained_logical_model()
        )
        hybrid = profile.build_estimator()
        assert hybrid.sub_op is None
        assert hybrid.default_approach is CostingApproach.LOGICAL_OP

    def test_requested_logical_falls_back_without_models(
        self, cluster_info, subop_result
    ):
        profile = RemoteSystemProfile(
            name="hive",
            cluster=cluster_info,
            approach=CostingApproach.LOGICAL_OP,
        )
        profile.costing.subop_result = subop_result
        hybrid = profile.build_estimator()
        assert hybrid.default_approach is CostingApproach.SUB_OP

    def test_spark_family_selectable(self, cluster_info, subop_result):
        profile = RemoteSystemProfile(name="spark", cluster=cluster_info)
        profile.costing.join_family = "spark"
        profile.costing.subop_result = subop_result
        hybrid = profile.build_estimator()
        names = [a.name for a in hybrid.sub_op.join_selector.algorithms]
        assert "broadcast_hash_join" in names

    def test_unknown_family_rejected(self, cluster_info, subop_result):
        profile = RemoteSystemProfile(name="x", cluster=cluster_info)
        profile.costing.join_family = "postgres"
        profile.costing.subop_result = subop_result
        with pytest.raises(ConfigurationError):
            profile.build_estimator()


class TestCostingProfileFlags:
    def test_flags(self, subop_result):
        cp = CostingProfile()
        assert not cp.has_subop_models
        assert not cp.has_logical_models
        cp.subop_result = subop_result
        assert cp.has_subop_models
        cp.logical_models[OperatorKind.AGGREGATE] = trained_logical_model()
        assert cp.has_logical_models


class TestOperatorRoutes:
    """§5's per-operator hybrid, stored in the CP itself."""

    def test_routes_applied_on_build(self, cluster_info, subop_result):
        profile = RemoteSystemProfile(name="hive", cluster=cluster_info)
        profile.costing.subop_result = subop_result
        profile.costing.logical_models[OperatorKind.AGGREGATE] = (
            trained_logical_model()
        )
        profile.costing.operator_routes[OperatorKind.AGGREGATE] = (
            CostingApproach.LOGICAL_OP
        )
        hybrid = profile.build_estimator()
        from repro.core.operators import AggregateOperatorStats, JoinOperatorStats

        agg = hybrid.estimate(
            AggregateOperatorStats(
                num_input_rows=1_000_000,
                input_row_size=100,
                num_output_rows=1_000,
                output_row_size=12,
            )
        )
        join = hybrid.estimate(
            JoinOperatorStats(
                row_size_r=100,
                num_rows_r=1_000_000,
                row_size_s=100,
                num_rows_s=10_000,
                projected_size_r=100,
                projected_size_s=100,
                num_output_rows=10_000,
            )
        )
        assert agg.approach is CostingApproach.LOGICAL_OP
        assert join.approach is CostingApproach.SUB_OP
