"""Metrics registry: instruments, thread-safety, snapshots, exporters."""

import threading

import pytest

from repro import obs
from repro.obs import exporters
from repro.obs.metrics import Counter, Gauge, Histogram, MetricsRegistry


class TestCounter:
    def test_starts_at_zero_and_accumulates(self):
        c = Counter("c")
        assert c.value == 0.0
        c.inc()
        c.inc(2.5)
        assert c.value == 3.5

    def test_rejects_negative_increment(self):
        c = Counter("c")
        with pytest.raises(ValueError):
            c.inc(-1.0)

    def test_thread_safety_exact_total(self):
        c = Counter("c")
        threads = 8
        per_thread = 5_000

        def work():
            for _ in range(per_thread):
                c.inc()

        workers = [threading.Thread(target=work) for _ in range(threads)]
        for t in workers:
            t.start()
        for t in workers:
            t.join()
        assert c.value == threads * per_thread


class TestGauge:
    def test_set_and_inc(self):
        g = Gauge("g")
        g.set(1.5)
        assert g.value == 1.5
        g.inc(-0.5)
        assert g.value == 1.0


class TestHistogram:
    def test_bucket_placement_upper_bound_inclusive(self):
        h = Histogram("h", buckets=(1.0, 5.0))
        for value in (0.5, 1.0, 3.0, 7.0):
            h.observe(value)
        counts = dict(h.bucket_counts())
        assert counts[1.0] == 2  # 0.5 and the exactly-on-bound 1.0
        assert counts[5.0] == 1
        assert counts[float("inf")] == 1
        assert h.count == 4
        assert h.sum == pytest.approx(11.5)
        assert h.mean == pytest.approx(11.5 / 4)

    def test_rejects_empty_or_duplicate_buckets(self):
        with pytest.raises(ValueError):
            Histogram("h", buckets=())
        with pytest.raises(ValueError):
            Histogram("h", buckets=(1.0, 1.0))

    def test_snapshot_labels_inf_tail(self):
        h = Histogram("h", buckets=(1.0,))
        h.observe(2.0)
        snap = h.snapshot()
        assert snap["buckets"] == [[1.0, 0], ["+Inf", 1]]


class TestRegistry:
    def test_get_or_create_returns_same_instance(self):
        reg = MetricsRegistry()
        assert reg.counter("a") is reg.counter("a")
        assert reg.histogram("h", buckets=(1.0,)) is reg.histogram("h")

    def test_type_conflict_raises(self):
        reg = MetricsRegistry()
        reg.counter("x")
        with pytest.raises(ValueError):
            reg.gauge("x")
        with pytest.raises(ValueError):
            reg.histogram("x")

    def test_names_iteration_and_reset(self):
        reg = MetricsRegistry()
        reg.counter("b")
        reg.gauge("a")
        assert reg.names() == ("a", "b")
        assert [m.name for m in reg] == ["a", "b"]
        assert len(reg) == 2
        reg.reset()
        assert len(reg) == 0

    def test_snapshot_is_json_shaped(self):
        reg = MetricsRegistry()
        reg.counter("c", help="calls").inc(2)
        snap = reg.snapshot()
        assert snap["c"]["type"] == "counter"
        assert snap["c"]["value"] == 2.0
        assert snap["c"]["help"] == "calls"

    def test_concurrent_get_or_create_single_instrument(self):
        reg = MetricsRegistry()
        seen = []

        def work():
            c = reg.counter("shared")
            seen.append(c)
            for _ in range(1_000):
                c.inc()

        workers = [threading.Thread(target=work) for _ in range(8)]
        for t in workers:
            t.start()
        for t in workers:
            t.join()
        assert len(set(id(c) for c in seen)) == 1
        assert reg.counter("shared").value == 8_000


class TestDefaultRegistry:
    def test_module_level_helpers_hit_default_registry(self):
        previous = obs.set_registry(MetricsRegistry())
        try:
            obs.counter("test.helper").inc()
            assert obs.get_registry().counter("test.helper").value == 1
        finally:
            obs.set_registry(previous)

    def test_set_registry_returns_previous(self):
        fresh = MetricsRegistry()
        previous = obs.set_registry(fresh)
        try:
            assert obs.get_registry() is fresh
        finally:
            assert obs.set_registry(previous) is fresh


class TestPrometheusExport:
    def test_counter_gauge_and_histogram_lines(self):
        reg = MetricsRegistry()
        reg.counter("costing.estimate_plan.calls", help="estimate calls").inc(3)
        reg.gauge("remedy.alpha").set(0.5)
        h = reg.histogram("costing.estimate_seconds", buckets=(1.0, 5.0))
        h.observe(0.5)
        h.observe(7.0)
        text = exporters.to_prometheus_text(registry=reg)
        assert "# HELP repro_costing_estimate_plan_calls estimate calls" in text
        assert "# TYPE repro_costing_estimate_plan_calls counter" in text
        assert "repro_costing_estimate_plan_calls 3.0" in text
        assert "repro_remedy_alpha 0.5" in text
        # Buckets are cumulative and end at +Inf == count.
        assert 'repro_costing_estimate_seconds_bucket{le="1.0"} 1' in text
        assert 'repro_costing_estimate_seconds_bucket{le="5.0"} 1' in text
        assert 'repro_costing_estimate_seconds_bucket{le="+Inf"} 2' in text
        assert "repro_costing_estimate_seconds_count 2" in text

    def test_renders_from_snapshot_dict(self):
        reg = MetricsRegistry()
        reg.counter("a.b").inc()
        metrics = reg.snapshot()
        text = exporters.to_prometheus_text(metrics=metrics)
        assert "repro_a_b 1.0" in text


class TestJsonSnapshotRoundtrip:
    def test_write_and_load(self, tmp_path):
        reg = MetricsRegistry()
        reg.counter("roundtrip").inc(4)
        path = tmp_path / "run.metrics.json"
        exporters.write_json_snapshot(path, registry=reg)
        snapshot = exporters.load_json_snapshot(path)
        assert snapshot["version"] == exporters.SNAPSHOT_VERSION
        assert snapshot["metrics"]["roundtrip"]["value"] == 4.0

    def test_load_rejects_non_snapshot(self, tmp_path):
        path = tmp_path / "junk.json"
        path.write_text("[1, 2, 3]")
        with pytest.raises(ValueError):
            exporters.load_json_snapshot(path)


class RecordingObserver(obs.MetricsObserver):
    def __init__(self):
        self.events = []

    def on_counter(self, name, amount):
        self.events.append(("counter", name, amount))

    def on_gauge(self, name, value):
        self.events.append(("gauge", name, value))

    def on_histogram(self, name, value):
        self.events.append(("histogram", name, value))


class TestObserverHook:
    def test_notifications_carry_name_and_update(self):
        registry = MetricsRegistry()
        observer = RecordingObserver()
        registry.attach_observer(observer)
        registry.counter("c").inc(2.5)
        registry.gauge("g").set(1.5)
        registry.gauge("g").inc(-0.5)  # notifies the post-inc value
        registry.histogram("h", buckets=(1.0,)).observe(0.3)
        assert observer.events == [
            ("counter", "c", 2.5),
            ("gauge", "g", 1.5),
            ("gauge", "g", 1.0),
            ("histogram", "h", 0.3),
        ]

    def test_attach_covers_existing_and_future_instruments(self):
        registry = MetricsRegistry()
        pre = registry.counter("pre")
        observer = RecordingObserver()
        registry.attach_observer(observer)
        pre.inc()
        registry.counter("post").inc()
        assert [name for _, name, _ in observer.events] == ["pre", "post"]

    def test_detach_restores_the_silent_fast_path(self):
        registry = MetricsRegistry()
        observer = RecordingObserver()
        registry.attach_observer(observer)
        registry.counter("c").inc()
        registry.detach_observer()
        registry.counter("c").inc()
        assert len(observer.events) == 1
        assert registry.observer is None

    def test_attach_replaces_previous_observer(self):
        registry = MetricsRegistry()
        first, second = RecordingObserver(), RecordingObserver()
        registry.attach_observer(first)
        registry.attach_observer(second)
        registry.counter("c").inc()
        assert first.events == []
        assert len(second.events) == 1
        assert registry.observer is second

    def test_base_observer_methods_are_noops(self):
        registry = MetricsRegistry()
        registry.attach_observer(obs.MetricsObserver())
        registry.counter("c").inc()  # must not raise
        assert registry.counter("c").value == 1.0

    def test_notification_outside_instrument_lock(self):
        # An observer that re-drives the same instrument must not
        # deadlock: notification happens after the lock is released.
        registry = MetricsRegistry()
        counter = registry.counter("c")

        class Reentrant(obs.MetricsObserver):
            def __init__(self):
                self.depth = 0

            def on_counter(self, name, amount):
                if self.depth == 0:
                    self.depth += 1
                    counter.inc(10.0)

        registry.attach_observer(Reentrant())
        counter.inc(1.0)
        assert counter.value == 11.0

    def test_observer_error_does_not_corrupt_instrument_state(self):
        registry = MetricsRegistry()

        class Exploding(obs.MetricsObserver):
            def on_counter(self, name, amount):
                raise RuntimeError("observer bug")

        registry.attach_observer(Exploding())
        with pytest.raises(RuntimeError):
            registry.counter("c").inc()
        # The increment itself landed before the observer ran.
        assert registry.counter("c").value == 1.0
