"""Tests for applicability rules and algorithm selection (§4)."""

import pytest

from repro.core.operators import AggregateOperatorStats, JoinOperatorStats
from repro.core.rules import (
    AggregateAlgorithmSelector,
    BOTH_PARTITIONED_ON_KEY,
    EQUI_JOIN_ONLY,
    JoinAlgorithmSelector,
    RuleContext,
    SelectionStrategy,
    SMALL_FITS_MEMORY,
    hive_join_algorithms,
    spark_join_algorithms,
)
from repro.core.subop_model import ClusterInfo, SubOpTrainer
from repro.data import build_paper_corpus
from repro.engines import HiveEngine
from repro.exceptions import PlanningError

GIB = 1024**3


@pytest.fixture(scope="module")
def subops():
    engine = HiveEngine(seed=0, noise_sigma=0.0)
    for spec in build_paper_corpus(row_counts=(10_000,), row_sizes=(40,)):
        engine.load_table(spec)
    cluster = ClusterInfo(
        num_data_nodes=3, cores_per_node=2, dfs_block_size=128 * 1024 * 1024
    )
    return SubOpTrainer().train(engine, cluster).model_set


@pytest.fixture()
def ctx():
    cluster = ClusterInfo(
        num_data_nodes=3, cores_per_node=2, dfs_block_size=128 * 1024 * 1024
    )
    return RuleContext(cluster=cluster, memory_threshold_bytes=2 * GIB)


def join_stats(s_rows=10_000, size=100, **kw):
    return JoinOperatorStats(
        row_size_r=size,
        num_rows_r=10_000_000,
        row_size_s=size,
        num_rows_s=s_rows,
        projected_size_r=size,
        projected_size_s=size,
        num_output_rows=s_rows,
        **kw,
    )


class TestIndividualRules:
    def test_equi_rule(self, ctx):
        assert EQUI_JOIN_ONLY(join_stats(), ctx)
        assert not EQUI_JOIN_ONLY(join_stats(is_equi=False), ctx)

    def test_memory_rule(self, ctx):
        assert SMALL_FITS_MEMORY(join_stats(s_rows=10_000), ctx)
        huge = join_stats(s_rows=int(3 * GIB / 100))
        assert not SMALL_FITS_MEMORY(huge, ctx)

    def test_partitioning_rule(self, ctx):
        assert not BOTH_PARTITIONED_ON_KEY(join_stats(), ctx)
        assert BOTH_PARTITIONED_ON_KEY(
            join_stats(r_partitioned_on_key=True, s_partitioned_on_key=True), ctx
        )


class TestEliminationExamples:
    """The §4 narrative examples of rule-based elimination."""

    def test_unpartitioned_transfer_eliminates_bucket_joins(self, ctx):
        stats = join_stats()  # nothing partitioned
        applicable = [
            a.name for a in hive_join_algorithms() if a.applicable(stats, ctx)
        ]
        assert "bucket_map_join" not in applicable
        assert "sort_merge_bucket_join" not in applicable

    def test_equi_join_eliminates_spark_nested_loops(self, ctx):
        stats = join_stats()
        applicable = [
            a.name for a in spark_join_algorithms() if a.applicable(stats, ctx)
        ]
        assert "broadcast_nested_loop_join" not in applicable
        assert "cartesian_product_join" not in applicable

    def test_two_large_relations_eliminate_broadcast(self, ctx):
        stats = join_stats(s_rows=int(3 * GIB / 100))
        applicable = [
            a.name for a in hive_join_algorithms() if a.applicable(stats, ctx)
        ]
        assert "broadcast_join" not in applicable
        assert "shuffle_join" in applicable


class TestSelectionStrategies:
    def test_preference_picks_first_applicable(self, subops, ctx):
        selector = JoinAlgorithmSelector(
            hive_join_algorithms(), SelectionStrategy.PREFERENCE
        )
        result = selector.select(join_stats(), subops, ctx)
        assert result.predicted_algorithm == "broadcast_join"

    def test_highest_is_max_of_candidates(self, subops, ctx):
        selector = JoinAlgorithmSelector(
            hive_join_algorithms(), SelectionStrategy.HIGHEST
        )
        result = selector.select(join_stats(), subops, ctx)
        assert result.seconds == max(s for _, s in result.candidates)

    def test_in_house_is_min_of_candidates(self, subops, ctx):
        selector = JoinAlgorithmSelector(
            hive_join_algorithms(), SelectionStrategy.IN_HOUSE
        )
        result = selector.select(join_stats(), subops, ctx)
        assert result.seconds == min(s for _, s in result.candidates)

    def test_average_between_extremes(self, subops, ctx):
        selector = JoinAlgorithmSelector(
            hive_join_algorithms(), SelectionStrategy.AVERAGE
        )
        result = selector.select(join_stats(), subops, ctx)
        values = [s for _, s in result.candidates]
        assert min(values) <= result.seconds <= max(values)

    def test_nothing_applicable_raises(self, subops, ctx):
        only_smb = hive_join_algorithms()[:1]
        selector = JoinAlgorithmSelector(only_smb)
        with pytest.raises(PlanningError):
            selector.select(join_stats(), subops, ctx)


class TestAggregateSelector:
    def test_hash_when_groups_fit(self, subops, ctx):
        stats = AggregateOperatorStats(
            num_input_rows=1_000_000,
            input_row_size=100,
            num_output_rows=1000,
            output_row_size=12,
        )
        result = AggregateAlgorithmSelector().select(stats, subops, ctx)
        assert result.predicted_algorithm == "hash_aggregate"

    def test_sort_when_groups_spill(self, subops, ctx):
        stats = AggregateOperatorStats(
            num_input_rows=500_000_000,
            input_row_size=100,
            num_output_rows=int(3 * GIB / 16),
            output_row_size=16,
        )
        result = AggregateAlgorithmSelector().select(stats, subops, ctx)
        assert result.predicted_algorithm == "sort_aggregate"
