"""Span tracer: no-op fast path, nesting, clocks, export, rendering."""

import json
import threading

from repro.obs.tracing import NOOP_SPAN, Span, Tracer, render_span_tree


class TestDisabledFastPath:
    def test_disabled_tracer_hands_back_the_shared_noop_span(self):
        tracer = Tracer(enabled=False)
        first = tracer.span("a", key="value")
        second = tracer.span("b")
        assert first is NOOP_SPAN
        assert second is NOOP_SPAN
        assert tracer.current() is NOOP_SPAN

    def test_noop_span_absorbs_every_operation(self):
        with NOOP_SPAN as span:
            span.set("k", 1)
            span.set(attr=2)
            span.add_simulated(5.0)
        assert span.enabled is False
        assert span.sim_seconds == 0.0
        assert span.attributes == {}

    def test_disabled_tracer_records_nothing(self):
        tracer = Tracer(enabled=False)
        with tracer.span("root"):
            pass
        assert tracer.traces() == ()
        assert tracer.last_trace() is None


class TestEnabledTracing:
    def test_nested_spans_form_a_tree(self):
        tracer = Tracer(enabled=True)
        with tracer.span("root") as root:
            with tracer.span("child_a"):
                with tracer.span("grandchild"):
                    pass
            with tracer.span("child_b"):
                pass
        assert [c.name for c in root.children] == ["child_a", "child_b"]
        assert root.children[0].children[0].name == "grandchild"
        assert tracer.last_trace() is root
        assert root.wall_seconds >= 0.0

    def test_current_tracks_the_innermost_span(self):
        tracer = Tracer(enabled=True)
        with tracer.span("outer") as outer:
            assert tracer.current() is outer
            with tracer.span("inner") as inner:
                assert tracer.current() is inner
            assert tracer.current() is outer
        assert tracer.current() is NOOP_SPAN

    def test_attributes_via_kwargs_positional_and_update(self):
        tracer = Tracer(enabled=True)
        with tracer.span("s", system="hive") as span:
            span.set("operator", "join")
            span.set(approach="sub_op", remedy="off")
        assert span.attributes == {
            "system": "hive",
            "operator": "join",
            "approach": "sub_op",
            "remedy": "off",
        }

    def test_simulated_seconds_are_explicit_not_wall(self):
        tracer = Tracer(enabled=True)
        with tracer.span("root") as root:
            with tracer.span("engine") as engine:
                engine.add_simulated(100.0)
        # Simulated time is attributed, never inferred from the clock.
        assert engine.sim_seconds == 100.0
        assert root.sim_seconds == 0.0
        assert root.total_sim_seconds == 100.0
        assert root.wall_seconds < 10.0

    def test_exception_is_recorded_and_propagates(self):
        tracer = Tracer(enabled=True)
        try:
            with tracer.span("boom") as span:
                raise RuntimeError("x")
        except RuntimeError:
            pass
        assert span.attributes["error"] == "RuntimeError"
        assert tracer.last_trace() is span

    def test_ring_buffer_caps_recorded_traces(self):
        tracer = Tracer(enabled=True, max_traces=3)
        for index in range(5):
            with tracer.span(f"t{index}"):
                pass
        assert [t.name for t in tracer.traces()] == ["t2", "t3", "t4"]

    def test_find_walks_every_trace(self):
        tracer = Tracer(enabled=True)
        for _ in range(2):
            with tracer.span("root"):
                with tracer.span("leaf"):
                    pass
        assert len(tracer.find("leaf")) == 2
        assert len(tracer.find("root")) == 2

    def test_threads_trace_into_independent_trees(self):
        tracer = Tracer(enabled=True)

        def work(name):
            with tracer.span(name):
                with tracer.span(f"{name}.child"):
                    pass

        workers = [
            threading.Thread(target=work, args=(f"thread{i}",)) for i in range(4)
        ]
        for t in workers:
            t.start()
        for t in workers:
            t.join()
        roots = tracer.traces()
        assert len(roots) == 4
        for root in roots:
            assert len(root.children) == 1


class TestExportAndRendering:
    def _sample_tracer(self):
        tracer = Tracer(enabled=True)
        with tracer.span("costing.estimate_plan", system="hive") as root:
            root.set(approach="sub_op")
            with tracer.span("engine.execute") as child:
                child.add_simulated(7.5)
        return tracer, root

    def test_to_dict_and_json(self):
        tracer, root = self._sample_tracer()
        data = json.loads(tracer.to_json())
        assert data[0]["name"] == "costing.estimate_plan"
        assert data[0]["attributes"]["approach"] == "sub_op"
        assert data[0]["children"][0]["sim_seconds"] == 7.5

    def test_export_json_writes_file(self, tmp_path):
        tracer, _ = self._sample_tracer()
        path = tmp_path / "trace.json"
        tracer.export_json(path)
        assert json.loads(path.read_text())[0]["name"] == "costing.estimate_plan"

    def test_render_span_tree_draws_connectors_and_attrs(self):
        _, root = self._sample_tracer()
        rendered = render_span_tree(root)
        assert "costing.estimate_plan" in rendered
        assert "└─ engine.execute" in rendered
        assert "approach=sub_op" in rendered
        assert "sim=7.50s" in rendered

    def test_clear_drops_recorded_traces(self):
        tracer, _ = self._sample_tracer()
        assert tracer.traces()
        tracer.clear()
        assert tracer.traces() == ()


class TestTailModePendingBuffer:
    """With a tail sampler installed, a head-unsampled query's spans
    record into a per-query pending buffer instead of collapsing to
    no-ops; the completion verdict commits or discards them."""

    def _with_tail(self):
        from repro.obs.tail import TailSampler

        from repro import obs

        return obs, obs.set_tail_sampler(TailSampler(latency_seconds=30.0))

    def test_unsampled_spans_buffer_pending_the_verdict(self):
        obs, previous = self._with_tail()
        try:
            tracer = Tracer(enabled=True)
            with obs.query_context(query_id="q-tail-1", sampled=False):
                with tracer.span("probe") as span:
                    pass
            assert span is not NOOP_SPAN
            assert tracer.traces() == ()
            assert tracer.pending_count() == 1
        finally:
            obs.set_tail_sampler(previous)

    def test_commit_moves_pending_roots_into_the_ring(self):
        obs, previous = self._with_tail()
        try:
            tracer = Tracer(enabled=True)
            with obs.query_context(query_id="q-tail-2", sampled=False):
                with tracer.span("a"):
                    pass
                with tracer.span("b"):
                    pass
            committed = tracer.commit_pending("q-tail-2")
            assert [s.name for s in committed] == ["a", "b"]
            assert [r.name for r in tracer.traces()] == ["a", "b"]
            assert tracer.pending_count() == 0
            # A second commit finds nothing.
            assert tracer.commit_pending("q-tail-2") == ()
        finally:
            obs.set_tail_sampler(previous)

    def test_discard_drops_pending_roots(self):
        obs, previous = self._with_tail()
        try:
            tracer = Tracer(enabled=True)
            with obs.query_context(query_id="q-tail-3", sampled=False):
                with tracer.span("probe"):
                    pass
            assert tracer.discard_pending("q-tail-3") == 1
            assert tracer.traces() == ()
            assert tracer.pending_count() == 0
        finally:
            obs.set_tail_sampler(previous)

    def test_pending_eviction_under_pressure_is_counted(self):
        obs, previous = self._with_tail()
        registry = obs.MetricsRegistry()
        previous_registry = obs.set_registry(registry)
        try:
            tracer = Tracer(enabled=True, max_pending=2)
            for index in range(4):
                with obs.query_context(
                    query_id=f"q-evict-{index}", sampled=False
                ):
                    with tracer.span("probe"):
                        pass
            assert tracer.pending_count() == 2
            assert registry.counter("obs.tail.pending_evicted").value == 2.0
            # The survivors are the newest queries.
            assert tracer.commit_pending("q-evict-3")
            assert tracer.commit_pending("q-evict-0") == ()
        finally:
            obs.set_registry(previous_registry)
            obs.set_tail_sampler(previous)

    def test_roots_per_query_are_capped(self):
        obs, previous = self._with_tail()
        try:
            tracer = Tracer(enabled=True, max_roots_per_pending=2)
            with obs.query_context(query_id="q-cap", sampled=False):
                for _ in range(5):
                    with tracer.span("probe"):
                        pass
            assert len(tracer.commit_pending("q-cap")) == 2
        finally:
            obs.set_tail_sampler(previous)

    def test_clear_also_drops_pending(self):
        obs, previous = self._with_tail()
        try:
            tracer = Tracer(enabled=True)
            with obs.query_context(query_id="q-clear", sampled=False):
                with tracer.span("probe"):
                    pass
            tracer.clear()
            assert tracer.pending_count() == 0
            assert tracer.commit_pending("q-clear") == ()
        finally:
            obs.set_tail_sampler(previous)
