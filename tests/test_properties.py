"""Property-based tests (hypothesis) on core data structures and invariants."""

import math

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.cluster import Cluster, ClusterConfig
from repro.core.metadata import DimensionMetadata
from repro.core.remedy import AlphaCalibrator
from repro.core.subop_model import ClusterInfo
from repro.core.training import TrainingSet
from repro.ml.linear import LinearRegression
from repro.ml.metrics import r_squared, rmse
from repro.ml.scaling import LogStandardScaler, StandardScaler
from repro.sql.cardinality import _uniform_fraction
from repro.sql.ast import ComparisonOp


# ----------------------------------------------------------------------
# Cluster arithmetic
# ----------------------------------------------------------------------
@given(
    num_tasks=st.integers(min_value=0, max_value=10_000),
    nodes=st.integers(min_value=1, max_value=16),
    cores=st.integers(min_value=1, max_value=8),
)
def test_task_waves_bounds(num_tasks, nodes, cores):
    """waves * slots >= tasks > (waves - 1) * slots."""
    from repro.cluster.node import CpuProfile

    cluster = Cluster(
        ClusterConfig(
            num_data_nodes=nodes,
            node_cpu=CpuProfile(cores=cores),
            dfs_replication=1,
        )
    )
    waves = cluster.num_task_waves(num_tasks)
    slots = cluster.total_task_slots
    assert waves * slots >= num_tasks
    if num_tasks > 0:
        assert (waves - 1) * slots < num_tasks


@given(
    records=st.integers(min_value=1, max_value=10**8),
    size=st.integers(min_value=1, max_value=2000),
)
def test_cluster_info_units_cover_input(records, size):
    """Every record is processed at least once: tasks * block_rows >= records."""
    info = ClusterInfo(
        num_data_nodes=3, cores_per_node=2, dfs_block_size=128 * 1024 * 1024
    )
    tasks = info.num_tasks(records * size)
    assert tasks * info.block_rows(records, size) >= records


# ----------------------------------------------------------------------
# Metadata invariants
# ----------------------------------------------------------------------
@given(
    values=st.lists(
        st.integers(min_value=0, max_value=10**7), min_size=1, max_size=50
    )
)
def test_metadata_from_values_brackets_all(values):
    meta = DimensionMetadata.from_values("d", values)
    assert meta.min_value == min(values)
    assert meta.max_value == max(values)
    assert meta.step_size > 0
    for v in values:
        assert not meta.is_way_off(v, beta=2.0)


@given(
    values=st.lists(
        st.floats(min_value=0, max_value=1e6, allow_nan=False),
        min_size=2,
        max_size=30,
    ),
    absorbed=st.lists(
        st.floats(min_value=0, max_value=2e6, allow_nan=False),
        min_size=1,
        max_size=20,
    ),
)
def test_metadata_absorption_never_shrinks(values, absorbed):
    meta = DimensionMetadata.from_values("d", values)
    lo, hi = meta.min_value, meta.max_value
    meta.absorb(absorbed, beta=2.0)
    assert meta.min_value <= lo
    assert meta.max_value >= hi
    # Every absorbed value is now covered: in range or an extra point.
    for v in absorbed:
        assert not meta.is_way_off(v, beta=2.0)


# ----------------------------------------------------------------------
# Training sets
# ----------------------------------------------------------------------
@given(
    costs=st.lists(
        st.floats(min_value=0, max_value=1e4, allow_nan=False),
        min_size=1,
        max_size=40,
    )
)
def test_training_cost_curve_is_cumulative_sum(costs):
    ts = TrainingSet(("x",))
    for i, cost in enumerate(costs):
        ts.add((float(i),), cost)
    _, cumulative = ts.training_cost_curve()
    assert cumulative[-1] == pytest.approx(sum(costs), rel=1e-9, abs=1e-9)
    assert np.all(np.diff(cumulative) >= -1e-12)


# ----------------------------------------------------------------------
# ML invariants
# ----------------------------------------------------------------------
@given(
    slope=st.floats(min_value=-100, max_value=100, allow_nan=False),
    intercept=st.floats(min_value=-100, max_value=100, allow_nan=False),
)
def test_ols_recovers_exact_lines(slope, intercept):
    x = np.linspace(0, 10, 12)
    y = slope * x + intercept
    model = LinearRegression().fit(x, y)
    assert model.slope == pytest.approx(slope, abs=1e-6)
    assert model.intercept == pytest.approx(intercept, abs=1e-6)


@given(
    data=st.lists(
        st.floats(min_value=0.1, max_value=1e7, allow_nan=False),
        min_size=2,
        max_size=50,
    )
)
def test_log_scaler_roundtrip(data):
    x = np.asarray(data).reshape(-1, 1)
    scaler = LogStandardScaler()
    back = scaler.inverse_transform(scaler.fit_transform(x))
    assert np.allclose(back, x, rtol=1e-6)


@given(
    actual=st.lists(
        st.floats(min_value=0.1, max_value=1e4, allow_nan=False),
        min_size=2,
        max_size=30,
    )
)
def test_rmse_zero_iff_perfect(actual):
    y = np.asarray(actual)
    assert rmse(y, y) == 0.0
    assert r_squared(y, y) == 1.0


# ----------------------------------------------------------------------
# Alpha calibration
# ----------------------------------------------------------------------
@given(
    observations=st.lists(
        st.tuples(
            st.floats(min_value=0, max_value=1000, allow_nan=False),
            st.floats(min_value=0, max_value=1000, allow_nan=False),
            st.floats(min_value=0, max_value=1000, allow_nan=False),
        ),
        min_size=0,
        max_size=40,
    )
)
def test_alpha_always_within_bounds(observations):
    calibrator = AlphaCalibrator()
    for nn, reg, actual in observations:
        calibrator.observe(nn, reg, actual)
    alpha = calibrator.recalibrate()
    assert calibrator.min_alpha <= alpha <= calibrator.max_alpha


# ----------------------------------------------------------------------
# Selectivity estimation
# ----------------------------------------------------------------------
@given(
    lo=st.floats(min_value=-1e6, max_value=1e6, allow_nan=False),
    span=st.floats(min_value=0, max_value=1e6, allow_nan=False),
    value=st.floats(min_value=-2e6, max_value=2e6, allow_nan=False),
)
def test_uniform_fraction_is_probability(lo, span, value):
    bounds = (lo, lo + span)
    for op in ComparisonOp:
        fraction = _uniform_fraction(bounds, op, value)
        assert 0.0 <= fraction <= 1.0


@given(
    lo=st.floats(min_value=-1e5, max_value=1e5, allow_nan=False),
    span=st.floats(min_value=0.1, max_value=1e5, allow_nan=False),
    value=st.floats(min_value=-2e5, max_value=2e5, allow_nan=False),
)
def test_lt_gt_complement(lo, span, value):
    bounds = (lo, lo + span)
    below = _uniform_fraction(bounds, ComparisonOp.LT, value)
    above = _uniform_fraction(bounds, ComparisonOp.GT, value)
    assert below + above == pytest.approx(1.0, abs=1e-6)


# ----------------------------------------------------------------------
# Cost formula invariants
# ----------------------------------------------------------------------
def _formula_fixture():
    """Cached sub-op models + cluster for formula property tests."""
    global _FORMULA_CACHE
    try:
        return _FORMULA_CACHE
    except NameError:
        pass
    from repro.core.subop_model import SubOpTrainer
    from repro.data import build_paper_corpus
    from repro.engines import HiveEngine

    engine = HiveEngine(seed=0, noise_sigma=0.0)
    for spec in build_paper_corpus(row_counts=(10_000,), row_sizes=(40,)):
        engine.load_table(spec)
    info = ClusterInfo(
        num_data_nodes=3, cores_per_node=2, dfs_block_size=128 * 1024 * 1024
    )
    subops = SubOpTrainer(record_counts=(1_000_000, 2_000_000)).train(
        engine, info
    ).model_set
    _FORMULA_CACHE = (subops, info)
    return _FORMULA_CACHE


@given(
    r_rows=st.integers(min_value=1_000, max_value=50_000_000),
    s_rows=st.integers(min_value=1_000, max_value=5_000_000),
    size=st.integers(min_value=40, max_value=1000),
    growth=st.integers(min_value=2, max_value=10),
)
@settings(max_examples=25, deadline=None)
def test_join_formulas_monotone_in_big_side(r_rows, s_rows, size, growth):
    """With parallelism saturated (R spans at least one task per slot),
    every join formula's cost grows weakly with the R cardinality.

    Below saturation, growing R can legitimately *reduce* elapsed time:
    extra tasks within a single wave share the fixed output work.
    """
    from repro.core.formulas import HIVE_JOIN_FORMULAS
    from repro.core.operators import JoinOperatorStats

    subops, info = _formula_fixture()
    saturation_rows = math.ceil(info.slots * info.dfs_block_size / size) + 1
    r_rows = max(r_rows, s_rows, saturation_rows)

    def stats(rows):
        return JoinOperatorStats(
            row_size_r=size,
            num_rows_r=rows,
            row_size_s=size,
            num_rows_s=s_rows,
            projected_size_r=size,
            projected_size_s=size,
            num_output_rows=s_rows,
        )

    # Bucketed formulas are excluded: their per-task small-side work
    # amortizes as waves/tasks, which jitters with ceil() — growing R can
    # genuinely reduce their elapsed estimate within a wave boundary.
    monotone = [
        f
        for f in HIVE_JOIN_FORMULAS
        if f.algorithm not in ("sort_merge_bucket_join", "bucket_map_join")
    ]
    for formula in monotone:
        small = formula.estimate_seconds(stats(r_rows), subops, info)
        large = formula.estimate_seconds(stats(r_rows * growth), subops, info)
        # 2% slack absorbs ceil() jitter in task/wave/output arithmetic.
        assert large >= small * 0.98, formula.algorithm


@given(
    rows=st.integers(min_value=1_000, max_value=50_000_000),
    size=st.integers(min_value=40, max_value=1000),
    groups=st.integers(min_value=1, max_value=1_000_000),
)
@settings(max_examples=25, deadline=None)
def test_aggregate_formulas_nonnegative_and_monotone(rows, size, groups):
    from repro.core.formulas import AGGREGATE_FORMULAS
    from repro.core.operators import AggregateOperatorStats

    subops, info = _formula_fixture()
    groups = min(groups, rows)

    def stats(n):
        return AggregateOperatorStats(
            num_input_rows=n,
            input_row_size=size,
            num_output_rows=min(groups, n),
            output_row_size=12,
        )

    for formula in AGGREGATE_FORMULAS:
        base = formula.estimate_seconds(stats(rows), subops, info)
        double = formula.estimate_seconds(stats(rows * 2), subops, info)
        assert base > 0
        assert double >= base * 0.999, formula.algorithm
