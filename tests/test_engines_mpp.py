"""Tests for the pipelined MPP engines (Impala, Presto)."""

import pytest

from repro.core import (
    ClusterInfo,
    CostEstimationModule,
    RemoteSystemProfile,
    SubOpTrainer,
)
from repro.data import Catalog, build_paper_corpus
from repro.engines import HiveEngine, ImpalaEngine, PrestoEngine
from repro.engines.physical import PipelinedEnv, RelShape
from repro.sql.parser import parse_select

MIB = 1024**2


@pytest.fixture(scope="module")
def mpp_corpus():
    return build_paper_corpus(
        row_counts=(10_000, 1_000_000, 8_000_000), row_sizes=(100, 1000)
    )


@pytest.fixture()
def impala(mpp_corpus):
    engine = ImpalaEngine(seed=0, noise_sigma=0.0)
    for spec in mpp_corpus:
        engine.load_table(spec)
    return engine


@pytest.fixture()
def presto(mpp_corpus):
    engine = PrestoEngine(seed=0, noise_sigma=0.0)
    for spec in mpp_corpus:
        engine.load_table(spec)
    return engine


class TestPipelinedEnv:
    def test_no_waves(self, impala):
        shape = RelShape(num_rows=80_000_000, row_size=1000)  # 80 GB
        assert isinstance(impala.env, PipelinedEnv)
        tasks = impala.env.num_tasks(shape)
        assert tasks == impala.env.slots
        assert impala.env.waves(tasks) == 1

    def test_small_input_fewer_fragments(self, impala):
        shape = RelShape(num_rows=1, row_size=100 * MIB)
        assert impala.env.num_tasks(shape) == 1


class TestExecution:
    def test_join_algorithm_names(self, impala):
        small = impala.execute(
            parse_select(
                "SELECT * FROM t1000000_100 r JOIN t10000_100 s ON r.a1 = s.a1"
            )
        )
        assert small.algorithm == "broadcast_hash_join"
        big = impala.execute(
            parse_select(
                "SELECT * FROM t8000000_1000 r JOIN t8000000_1000 s ON r.a1 = s.a1"
            )
        )
        assert big.algorithm == "partitioned_hash_join"

    def test_impala_much_faster_than_hive(self, mpp_corpus):
        plan = parse_select(
            "SELECT SUM(a1) FROM t8000000_100 GROUP BY a100"
        )
        hive = HiveEngine(seed=0, noise_sigma=0.0)
        impala = ImpalaEngine(seed=0, noise_sigma=0.0)
        for spec in mpp_corpus:
            hive.load_table(spec)
            impala.load_table(spec)
        assert impala.execute(plan).elapsed_seconds < 0.5 * hive.execute(
            plan
        ).elapsed_seconds

    def test_presto_between_hive_and_impala(self, mpp_corpus, presto, impala):
        plan = parse_select(
            "SELECT * FROM t8000000_100 r JOIN t1000000_100 s ON r.a1 = s.a1"
        )
        hive = HiveEngine(seed=0, noise_sigma=0.0)
        for spec in mpp_corpus:
            hive.load_table(spec)
        hive_s = hive.execute(plan).elapsed_seconds
        presto_s = presto.execute(plan).elapsed_seconds
        impala_s = impala.execute(plan).elapsed_seconds
        assert impala_s < presto_s < hive_s

    def test_tiny_startup(self, impala):
        result = impala.execute(
            parse_select("SELECT * FROM t10000_100 WHERE a1 < 100")
        )
        assert result.elapsed_seconds < 1.0


class TestMppCosting:
    """End-to-end: sub-op training + costing for a pipelined profile."""

    def test_subop_costing_tracks_impala(self, mpp_corpus, impala):
        catalog = Catalog()
        for spec in mpp_corpus:
            catalog.register(spec)
        info = ClusterInfo(
            num_data_nodes=3,
            cores_per_node=2,
            dfs_block_size=128 * MIB,
            pipelined=True,
        )
        profile = RemoteSystemProfile(name="impala", cluster=info)
        profile.costing.join_family = "impala"
        module = CostEstimationModule()
        module.register_system(impala, profile)
        module.train_sub_op("impala")

        plans = [
            "SELECT * FROM t8000000_100 r JOIN t1000000_100 s ON r.a1 = s.a1",
            "SELECT * FROM t8000000_1000 r JOIN t8000000_100 s ON r.a1 = s.a1",
            "SELECT SUM(a1) FROM t8000000_100 GROUP BY a100",
        ]
        for sql in plans:
            plan = parse_select(sql)
            estimate = module.estimate_plan("impala", plan, catalog)
            actual = impala.execute(plan)
            assert estimate.seconds == pytest.approx(
                actual.elapsed_seconds, rel=0.4
            ), sql

    def test_algorithm_prediction(self, mpp_corpus, impala):
        catalog = Catalog()
        for spec in mpp_corpus:
            catalog.register(spec)
        info = ClusterInfo(
            num_data_nodes=3,
            cores_per_node=2,
            dfs_block_size=128 * MIB,
            pipelined=True,
        )
        profile = RemoteSystemProfile(name="impala", cluster=info)
        profile.costing.join_family = "impala"
        module = CostEstimationModule()
        module.register_system(impala, profile)
        module.train_sub_op("impala")
        plan = parse_select(
            "SELECT * FROM t8000000_100 r JOIN t10000_100 s ON r.a1 = s.a1"
        )
        estimate = module.estimate_plan("impala", plan, catalog)
        actual = impala.execute(plan)
        assert estimate.detail.predicted_algorithm == actual.algorithm
