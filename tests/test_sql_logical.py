"""Tests for logical plan nodes."""

import pytest

from repro.exceptions import ConfigurationError
from repro.sql.ast import AggregateCall, AggregateKind, column
from repro.sql.logical import (
    Aggregate,
    Filter,
    Join,
    JoinCondition,
    Project,
    Scan,
)


def _sum(name):
    return AggregateCall(kind=AggregateKind.SUM, argument=column(name))


class TestNodes:
    def test_scan_requires_table(self):
        with pytest.raises(ConfigurationError):
            Scan(table="")

    def test_project_requires_columns(self):
        with pytest.raises(ConfigurationError):
            Project(input=Scan(table="t"), columns=())

    def test_aggregate_requires_aggregates(self):
        with pytest.raises(ConfigurationError):
            Aggregate(input=Scan(table="t"), group_by=("a1",), aggregates=())

    def test_join_condition_validation(self):
        with pytest.raises(ConfigurationError):
            JoinCondition(left_column="", right_column="a1")


class TestTraversal:
    def test_walk_preorder(self):
        plan = Join(
            left=Scan(table="r"),
            right=Scan(table="s"),
            condition=JoinCondition("a1", "a1"),
        )
        kinds = [type(n).__name__ for n in plan.walk()]
        assert kinds == ["Join", "Scan", "Scan"]

    def test_referenced_tables_in_scan_order(self):
        plan = Aggregate(
            input=Join(
                left=Scan(table="r"),
                right=Scan(table="s"),
                condition=JoinCondition("a1", "a1"),
            ),
            group_by=("a1",),
            aggregates=(_sum("a1"),),
        )
        assert plan.referenced_tables == ("r", "s")

    def test_referenced_tables_deduplicated(self):
        plan = Join(
            left=Scan(table="r"),
            right=Scan(table="r"),
            condition=JoinCondition("a1", "a1"),
        )
        assert plan.referenced_tables == ("r",)

    def test_describe_is_indented(self):
        plan = Filter(input=Scan(table="t"), predicate=column("a1").lt(5))
        text = plan.describe()
        lines = text.splitlines()
        assert lines[0].startswith("Filter")
        assert lines[1].startswith("  Scan")

    def test_children(self):
        scan = Scan(table="t")
        assert scan.children == ()
        filt = Filter(input=scan, predicate=column("a").eq(1))
        assert filt.children == (scan,)
