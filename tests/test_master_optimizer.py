"""Tests for the cost-based placement optimizer."""

import pytest

from repro.core import (
    CostEstimationModule,
    RemoteSystemProfile,
    SubOpTrainer,
)
from repro.data import Catalog, TableSpec, build_paper_corpus
from repro.data.schema import paper_schema
from repro.engines import HiveEngine
from repro.master.optimizer import PlacementOptimizer
from repro.master.querygrid import QueryGrid, TERADATA
from repro.sql.parser import parse_select


@pytest.fixture(scope="module")
def setup(cluster_info_mod):
    """Federated catalog: corpus on hive plus one Teradata-resident table."""
    corpus = build_paper_corpus(
        row_counts=(10_000, 1_000_000, 8_000_000), row_sizes=(40, 100)
    )
    engine = HiveEngine(seed=0, noise_sigma=0.0)
    catalog = Catalog()
    for spec in corpus:
        engine.load_table(spec)
        catalog.register(spec)
    catalog.register(
        TableSpec(
            name="td_dim",
            schema=paper_schema(100),
            num_rows=10_000,
            location=TERADATA,
        )
    )
    module = CostEstimationModule()
    module.register_system(
        engine, RemoteSystemProfile(name="hive", cluster=cluster_info_mod)
    )
    module.train_sub_op("hive", SubOpTrainer(record_counts=(1_000_000, 2_000_000)))
    optimizer = PlacementOptimizer(
        catalog=catalog, costing=module, querygrid=QueryGrid()
    )
    return optimizer, catalog


@pytest.fixture(scope="module")
def cluster_info_mod():
    from repro.core import ClusterInfo

    return ClusterInfo(
        num_data_nodes=3, cores_per_node=2, dfs_block_size=128 * 1024 * 1024
    )


class TestPlacementChoices:
    def test_hive_local_join_stays_on_hive(self, setup):
        """Joining two big Hive tables: moving 800 MB+ to the master costs
        more than running the join in place."""
        optimizer, _ = setup
        plan = parse_select(
            "SELECT r.a1 FROM t8000000_100 r JOIN t1000000_100 s ON r.a1 = s.a1"
        )
        placement = optimizer.optimize(plan)
        execute_steps = [s for s in placement.best.steps if s.kind == "execute"]
        assert execute_steps[-1].system == "hive"

    def test_small_inputs_pulled_to_master(self, setup):
        """Tiny tables: the fast master engine wins despite the transfer."""
        optimizer, _ = setup
        plan = parse_select(
            "SELECT r.a1 FROM t10000_40 r JOIN t10000_100 s ON r.a1 = s.a1"
        )
        placement = optimizer.optimize(plan)
        execute_steps = [s for s in placement.best.steps if s.kind == "execute"]
        assert execute_steps[-1].system == TERADATA

    def test_cross_system_join_considered(self, setup):
        optimizer, _ = setup
        plan = parse_select(
            "SELECT r.a1 FROM t8000000_100 r JOIN td_dim s ON r.a1 = s.a1"
        )
        placement = optimizer.optimize(plan)
        locations = {opt.location for opt in placement.alternatives}
        assert locations == {"hive", TERADATA}

    def test_alternatives_sorted_by_cost(self, setup):
        optimizer, _ = setup
        plan = parse_select(
            "SELECT r.a1 FROM t8000000_100 r JOIN td_dim s ON r.a1 = s.a1"
        )
        placement = optimizer.optimize(plan)
        costs = [opt.seconds for opt in placement.alternatives]
        assert costs == sorted(costs)
        assert placement.best.seconds == costs[0]

    def test_result_lands_at_master(self, setup):
        """The final answer always returns to the master (Fig. 1)."""
        optimizer, _ = setup
        plan = parse_select(
            "SELECT SUM(a1) FROM t8000000_100 GROUP BY a100"
        )
        placement = optimizer.optimize(plan)
        if placement.best.location != TERADATA:
            assert placement.best.steps[-1].kind == "transfer"
            assert placement.best.steps[-1].system == TERADATA

    def test_describe_renders(self, setup):
        optimizer, _ = setup
        plan = parse_select("SELECT SUM(a1) FROM t1000000_100 GROUP BY a5")
        text = optimizer.optimize(plan).describe()
        assert "placement plan" in text
        assert "execute" in text


class TestBatchedCostingCache:
    def test_warm_cache_plan_identical_to_cold(self, setup):
        """A cache-served optimize() must choose the same placement with
        the same costs as the cold run (batched path is bit-identical)."""
        optimizer, _ = setup
        optimizer.costing.invalidate_cache()
        plan = parse_select(
            "SELECT SUM(a1) FROM t8000000_100 r JOIN t1000000_100 s "
            "ON r.a1 = s.a1 GROUP BY a5"
        )
        cold = optimizer.optimize(plan)
        warm = optimizer.optimize(plan)
        assert warm.best.location == cold.best.location
        assert warm.best.seconds == cold.best.seconds
        assert [s.seconds for s in warm.best.steps] == [
            s.seconds for s in cold.best.steps
        ]

    def test_repeat_optimize_serves_from_cache(self, setup):
        optimizer, _ = setup
        cache = optimizer.costing.cache
        optimizer.costing.invalidate_cache()
        plan = parse_select(
            "SELECT SUM(a1) FROM t8000000_100 GROUP BY a100"
        )
        optimizer.optimize(plan)
        misses_after_cold = cache.misses
        hits_after_cold = cache.hits
        optimizer.optimize(plan)
        assert cache.misses == misses_after_cold  # nothing recomputed
        assert cache.hits > hits_after_cold


class TestTransfersAccounting:
    def test_remote_data_to_master_includes_transfer(self, setup):
        optimizer, _ = setup
        plan = parse_select(
            "SELECT r.a1 FROM t10000_40 r JOIN t10000_100 s ON r.a1 = s.a1"
        )
        placement = optimizer.optimize(plan)
        kinds = [s.kind for s in placement.best.steps]
        assert "transfer" in kinds  # tables had to move to the master

    def test_aggregate_over_join_places_both(self, setup):
        optimizer, _ = setup
        plan = parse_select(
            "SELECT SUM(a1) FROM t8000000_100 r JOIN t1000000_100 s "
            "ON r.a1 = s.a1 GROUP BY a5"
        )
        placement = optimizer.optimize(plan)
        execute_steps = [s for s in placement.best.steps if s.kind == "execute"]
        assert len(execute_steps) == 2  # join + aggregate
