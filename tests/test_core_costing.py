"""Tests for the top-level CostEstimationModule and stats derivation."""

import pytest

from repro.core import (
    AggregateOperatorStats,
    ClusterInfo,
    CostEstimationModule,
    CostingApproach,
    JoinOperatorStats,
    LogicalOpModel,
    OperatorKind,
    RemoteSystemProfile,
    ScanOperatorStats,
    SubOpTrainer,
)
from repro.core.costing import derive_join_stats, derive_operator_stats
from repro.data import TableSpec, build_paper_corpus
from repro.engines import HiveEngine
from repro.exceptions import CatalogError, ConfigurationError
from repro.sql.parser import parse_select
from repro.workloads import AggregationWorkload


@pytest.fixture()
def module(small_corpus, cluster_info):
    engine = HiveEngine(seed=0, noise_sigma=0.0)
    for spec in small_corpus:
        engine.load_table(spec)
    module = CostEstimationModule()
    module.register_system(
        engine, RemoteSystemProfile(name="hive", cluster=cluster_info)
    )
    return module


class TestRegistration:
    def test_name_mismatch_rejected(self, cluster_info):
        module = CostEstimationModule()
        engine = HiveEngine(name="a")
        with pytest.raises(ConfigurationError):
            module.register_system(
                engine, RemoteSystemProfile(name="b", cluster=cluster_info)
            )

    def test_duplicate_rejected(self, module, cluster_info):
        with pytest.raises(ConfigurationError):
            module.register_system(
                HiveEngine(name="hive"),
                RemoteSystemProfile(name="hive", cluster=cluster_info),
            )

    def test_unknown_system_raises(self, module):
        with pytest.raises(CatalogError):
            module.system("nope")


class TestSubOpTrainingPath:
    def test_train_and_estimate(self, module, small_catalog):
        result = module.train_sub_op(
            "hive",
            SubOpTrainer(record_counts=(1_000_000, 2_000_000)),
        )
        assert result.num_queries > 0
        plan = parse_select(
            "SELECT * FROM t1000000_100 r JOIN t10000_100 s ON r.a1 = s.a1"
        )
        estimate = module.estimate_plan("hive", plan, small_catalog)
        assert estimate.approach is CostingApproach.SUB_OP
        actual = module.system("hive").execute(plan).elapsed_seconds
        assert estimate.seconds == pytest.approx(actual, rel=0.35)

    def test_blackbox_subop_training_rejected(self, cluster_info):
        module = CostEstimationModule()
        engine = HiveEngine(name="bb")
        module.register_system(
            engine,
            RemoteSystemProfile(
                name="bb", openbox=False, approach=CostingApproach.LOGICAL_OP
            ),
        )
        with pytest.raises(ConfigurationError):
            module.train_sub_op("bb")


class TestLogicalOpTrainingPath:
    def test_train_via_workload(self, module, small_corpus, small_catalog):
        workload = AggregationWorkload(small_corpus, max_queries=60)
        report = module.train_logical_op(
            "hive",
            OperatorKind.AGGREGATE,
            workload.training_queries(small_catalog),
            model=LogicalOpModel(
                OperatorKind.AGGREGATE,
                search_topology=False,
                nn_iterations=1500,
                seed=0,
            ),
        )
        assert report.num_queries == 60
        assert report.remote_training_seconds > 0

        module.profile("hive").approach = CostingApproach.LOGICAL_OP
        plan = parse_select("SELECT SUM(a1) FROM t1000000_100 GROUP BY a5")
        estimate = module.estimate_plan("hive", plan, small_catalog)
        assert estimate.approach is CostingApproach.LOGICAL_OP
        actual = module.system("hive").execute(plan).elapsed_seconds
        assert estimate.seconds == pytest.approx(actual, rel=0.6)

    def test_feedback_and_tuning_cycle(self, module, small_corpus, small_catalog):
        workload = AggregationWorkload(small_corpus, max_queries=40)
        module.train_logical_op(
            "hive",
            OperatorKind.AGGREGATE,
            workload.training_queries(small_catalog),
            model=LogicalOpModel(
                OperatorKind.AGGREGATE,
                search_topology=False,
                nn_iterations=500,
                seed=0,
            ),
        )
        module.profile("hive").approach = CostingApproach.LOGICAL_OP
        plan = parse_select("SELECT SUM(a1) FROM t8000000_1000 GROUP BY a5")
        estimate = module.estimate_plan("hive", plan, small_catalog)
        actual = module.system("hive").execute(plan).elapsed_seconds
        module.record_actual("hive", estimate, actual)
        applied = module.run_offline_tuning("hive", OperatorKind.AGGREGATE)
        assert applied == 1
        alpha = module.recalibrate_alpha("hive", OperatorKind.AGGREGATE)
        assert 0 < alpha < 1


class TestStatsDerivation:
    def test_join_stats(self, small_catalog):
        plan = parse_select(
            "SELECT * FROM t1000000_100 r JOIN t10000_100 s "
            "ON r.a1 = s.a1 AND r.a1 + s.z < 5000"
        )
        stats = derive_join_stats(plan, small_catalog)
        assert isinstance(stats, JoinOperatorStats)
        assert stats.num_rows_r == 1_000_000
        assert stats.num_rows_s == 10_000
        assert stats.num_output_rows == pytest.approx(5000, rel=0.02)
        assert stats.projected_size_r == 100  # no projection -> full rows

    def test_join_projection_split(self, small_catalog):
        from repro.sql.builder import scan

        plan = (
            scan("t1000000_100")
            .join("t10000_100", on=("a1", "a1"), project=("a1", "a2"))
            .plan()
        )
        stats = derive_join_stats(plan, small_catalog)
        assert stats.projected_size_r == 8
        assert stats.projected_size_s == 1  # clamped: all columns on left

    def test_partitioned_layout_flags(self, small_catalog, small_corpus):
        from repro.data.schema import paper_schema

        spec = TableSpec(
            name="bucketed",
            schema=paper_schema(100),
            num_rows=10_000,
            location="hive",
            partitioned_by="a1",
            sorted_by="a1",
        )
        small_catalog.register(spec)
        plan = parse_select(
            "SELECT * FROM bucketed r JOIN t10000_100 s ON r.a1 = s.a1"
        )
        stats = derive_join_stats(plan, small_catalog)
        assert stats.r_partitioned_on_key
        assert stats.r_sorted_on_key
        assert not stats.s_partitioned_on_key

    def test_aggregate_stats(self, small_catalog):
        plan = parse_select("SELECT SUM(a1) FROM t1000000_100 GROUP BY a5")
        stats = derive_operator_stats(plan, small_catalog)
        assert isinstance(stats, AggregateOperatorStats)
        assert stats.num_input_rows == 1_000_000
        assert stats.num_output_rows == 200_000

    def test_scan_stats(self, small_catalog):
        plan = parse_select("SELECT a1 FROM t1000000_100 WHERE a1 < 1000")
        stats = derive_operator_stats(plan, small_catalog)
        assert isinstance(stats, ScanOperatorStats)
        assert stats.num_input_rows == 1_000_000
        assert stats.num_output_rows == pytest.approx(1000, rel=0.05)
        assert stats.output_row_size == 4


class TestFullPlanEstimation:
    def test_agg_over_join_composes(self, module, small_catalog):
        module.train_sub_op("hive")
        plan = parse_select(
            "SELECT SUM(a1) FROM t1000000_100 r JOIN t100000_100 s "
            "ON r.a1 = s.a1 GROUP BY a5"
        )
        total, estimates = module.estimate_full_plan("hive", plan, small_catalog)
        assert len(estimates) == 2  # join + aggregate
        assert total == pytest.approx(sum(e.seconds for e in estimates))
        actual = module.system("hive").execute(plan).elapsed_seconds
        assert total == pytest.approx(actual, rel=0.35)

    def test_single_operator_matches_estimate_plan(self, module, small_catalog):
        module.train_sub_op("hive")
        plan = parse_select(
            "SELECT * FROM t1000000_100 r JOIN t100000_100 s ON r.a1 = s.a1"
        )
        total, estimates = module.estimate_full_plan("hive", plan, small_catalog)
        single = module.estimate_plan("hive", plan, small_catalog)
        assert len(estimates) == 1
        assert total == pytest.approx(single.seconds)

    def test_bare_scan_children_are_free(self, module, small_catalog):
        module.train_sub_op("hive")
        plan = parse_select("SELECT SUM(a1) FROM t1000000_100 GROUP BY a5")
        total, estimates = module.estimate_full_plan("hive", plan, small_catalog)
        assert len(estimates) == 1  # the aggregate only


class TestObservability:
    """record_actual feeds the accuracy ledger and rejects broken actuals."""

    @pytest.fixture()
    def trained(self, module, small_catalog):
        from repro.obs import AccuracyLedger

        ledger = AccuracyLedger()
        module.ledger = ledger
        module.train_sub_op(
            "hive", SubOpTrainer(record_counts=(1_000_000, 2_000_000))
        )
        plan = parse_select(
            "SELECT * FROM t1000000_100 r JOIN t10000_100 s ON r.a1 = s.a1"
        )
        estimate = module.estimate_plan("hive", plan, small_catalog)
        return module, ledger, estimate

    def test_record_actual_populates_ledger(self, trained):
        module, ledger, estimate = trained
        module.record_actual("hive", estimate, 12.5)
        entries = ledger.entries(system="hive", operator="join")
        assert len(entries) == 1
        assert entries[0].estimated_seconds == pytest.approx(estimate.seconds)
        assert entries[0].actual_seconds == 12.5
        assert entries[0].approach == "sub_op"
        assert entries[0].remedy_active is False
        stats = ledger.stats(system="hive", operator="join")
        assert stats.count == 1

    def test_invalid_actual_rejected_and_counted(self, trained):
        from repro import obs
        from repro.obs import MetricsRegistry

        module, ledger, estimate = trained
        previous = obs.set_registry(MetricsRegistry())
        try:
            for bad in (0.0, -1.0, float("nan"), float("inf")):
                module.record_actual("hive", estimate, bad)
            invalid = obs.get_registry().get("costing.record_actual_invalid")
            assert invalid is not None and invalid.value == 4
            assert obs.get_registry().get("costing.record_actual.calls") is None
        finally:
            obs.set_registry(previous)
        assert len(ledger) == 0  # nothing poisoned the accuracy window

    def test_invalid_actual_skips_logical_feedback(
        self, module, small_corpus, small_catalog
    ):
        workload = AggregationWorkload(small_corpus, max_queries=40)
        module.train_logical_op(
            "hive",
            OperatorKind.AGGREGATE,
            workload.training_queries(small_catalog),
            model=LogicalOpModel(
                OperatorKind.AGGREGATE,
                search_topology=False,
                nn_iterations=500,
                seed=0,
            ),
        )
        module.profile("hive").approach = CostingApproach.LOGICAL_OP
        plan = parse_select("SELECT SUM(a1) FROM t1000000_100 GROUP BY a5")
        estimate = module.estimate_plan("hive", plan, small_catalog)
        model = module.profile("hive").costing.logical_models[
            OperatorKind.AGGREGATE
        ]
        module.record_actual("hive", estimate, float("nan"))
        assert len(model.execution_log) == 0
        assert module.run_offline_tuning("hive", OperatorKind.AGGREGATE) == 0


class TestTenantAttributionAndIncidents:
    """The costing emission sites attribute telemetry to the scope's
    tenant, and drift's rising edge freezes the flight recorder."""

    @pytest.fixture()
    def trained(self, module, small_catalog):
        from repro.obs import AccuracyLedger

        module.ledger = AccuracyLedger()
        module.train_sub_op(
            "hive", SubOpTrainer(record_counts=(1_000_000, 2_000_000))
        )
        plan = parse_select(
            "SELECT * FROM t1000000_100 r JOIN t10000_100 s ON r.a1 = s.a1"
        )
        return module, plan

    def test_estimate_path_attributes_to_the_tenant(
        self, trained, small_catalog, tmp_path
    ):
        from repro import obs
        from repro.obs.context import ExemplarStore

        module, plan = trained
        journal = obs.EventJournal(tmp_path / "tenant.jsonl")
        previous_journal = obs.set_journal(journal)
        previous_ledger = obs.set_tenant_ledger(obs.TenantLedger())
        previous_store = obs.set_exemplar_store(ExemplarStore())
        obs.reset_query_ids()
        try:
            with obs.query_context(query="SELECT 1", tenant="etl"):
                estimate = module.estimate_plan("hive", plan, small_catalog)
            journal.close()
            stats = obs.get_tenant_ledger().snapshot()["etl"]
            recent = obs.get_exemplar_store().recent("tenant:etl")
        finally:
            obs.set_exemplar_store(previous_store)
            obs.set_tenant_ledger(previous_ledger)
            obs.set_journal(previous_journal)
        assert stats["estimates"] > 0
        assert stats["estimated_seconds"] > 0.0
        assert stats["estimated_seconds"] >= estimate.seconds
        assert recent == ("q-000001",)
        events = obs.read_journal(tmp_path / "tenant.jsonl").events
        estimates = [e for e in events if e.type == "estimate"]
        assert estimates
        assert {e.payload.get("tenant") for e in estimates} == {"etl"}

    def test_untenanted_estimate_emits_no_tenant_fields(
        self, trained, small_catalog, tmp_path
    ):
        from repro import obs

        module, plan = trained
        journal = obs.EventJournal(tmp_path / "plain.jsonl")
        previous_journal = obs.set_journal(journal)
        previous_ledger = obs.set_tenant_ledger(obs.TenantLedger())
        try:
            with obs.query_context(query="SELECT 1"):
                module.estimate_plan("hive", plan, small_catalog)
            journal.close()
            snapshot = obs.get_tenant_ledger().snapshot()
        finally:
            obs.set_tenant_ledger(previous_ledger)
            obs.set_journal(previous_journal)
        assert snapshot == {}
        events = obs.read_journal(tmp_path / "plain.jsonl").events
        estimates = [e for e in events if e.type == "estimate"]
        assert estimates
        assert all("tenant" not in e.payload for e in estimates)

    def test_feedback_attributes_q_error_to_the_tenant(
        self, trained, small_catalog
    ):
        from repro import obs

        module, plan = trained
        previous_ledger = obs.set_tenant_ledger(obs.TenantLedger())
        try:
            with obs.query_context(tenant="adhoc"):
                estimate = module.estimate_plan("hive", plan, small_catalog)
                module.record_actual("hive", estimate, estimate.seconds * 3.0)
            stats = obs.get_tenant_ledger().snapshot()["adhoc"]
        finally:
            obs.set_tenant_ledger(previous_ledger)
        assert stats["actuals"] == 1
        assert stats["mean_q_error"] == pytest.approx(3.0)

    def test_drift_rising_edge_freezes_exactly_one_incident(
        self, trained, small_catalog
    ):
        from repro import obs

        module, plan = trained
        recorder = obs.FlightRecorder()
        previous_recorder = obs.set_flight_recorder(recorder)
        try:
            estimate = module.estimate_plan("hive", plan, small_catalog)
            # Establish the drift baseline with faithful actuals, then
            # sustain a 12x slowdown until the CUSUM alarm rises.
            for _ in range(40):
                module.record_actual("hive", estimate, estimate.seconds)
            for _ in range(60):
                module.record_actual(
                    "hive", estimate, estimate.seconds * 12.0
                )
            incidents = recorder.incidents()
        finally:
            obs.set_flight_recorder(previous_recorder)
        assert len(incidents) == 1  # rising edge only, never re-fired
        trigger = incidents[0].trigger
        assert trigger["kind"] == "drift"
        assert trigger["system"] == "hive"
        assert trigger["operator"] == "join"
