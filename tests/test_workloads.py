"""Tests for the §7 workload generators."""

import pytest

from repro.core.subop_model import SubOpTrainer
from repro.exceptions import ConfigurationError
from repro.sql.logical import Aggregate, Join
from repro.workloads import (
    AggregationWorkload,
    JoinWorkload,
    OutOfRangeWorkload,
    trainer_for_budget,
)
from repro.workloads.join import PAPER_SELECTIVITIES
from repro.workloads.subop_queries import grid_for_budget


class TestAggregationWorkload:
    def test_full_paper_grid_size(self, corpus):
        workload = AggregationWorkload(corpus)
        # 120 tables x 7 shrink factors x 5 aggregate counts
        assert len(workload) == 4200
        assert len(workload.plans()) == 4200

    def test_thinning_to_paper_count(self, corpus):
        workload = AggregationWorkload(corpus, max_queries=3700)
        assert len(workload.plans()) == 3700

    def test_plans_are_aggregates(self, small_corpus):
        workload = AggregationWorkload(small_corpus, max_queries=10)
        for plan in workload.plans():
            assert isinstance(plan, Aggregate)
            assert len(plan.group_by) == 1

    def test_features_have_four_dims(self, small_corpus, small_catalog):
        workload = AggregationWorkload(small_corpus, max_queries=5)
        for query in workload.training_queries(small_catalog):
            assert len(query.features) == 4

    def test_shrink_factor_controls_output(self, small_corpus, small_catalog):
        workload = AggregationWorkload(
            small_corpus, shrink_factors=(10,), num_aggregates=(1,)
        )
        for query in workload.training_queries(small_catalog):
            rows_in, _, rows_out, _ = query.features
            assert rows_out == pytest.approx(rows_in / 10, rel=0.01)

    def test_invalid_shrink_factor(self, small_corpus):
        with pytest.raises(ConfigurationError):
            AggregationWorkload(small_corpus, shrink_factors=(3,))

    def test_invalid_aggregate_count(self, small_corpus):
        with pytest.raises(ConfigurationError):
            AggregationWorkload(small_corpus, num_aggregates=(9,))


class TestJoinWorkload:
    def test_default_grid_near_paper_size(self, corpus):
        workload = JoinWorkload(corpus, max_queries=4000)
        assert len(workload.plans()) == 4000

    def test_r_never_smaller_than_s(self, small_corpus):
        workload = JoinWorkload(small_corpus)
        for config in workload.configs():
            assert config.r_rows >= config.s_rows

    def test_selectivity_controls_output(self, small_corpus, small_catalog):
        workload = JoinWorkload(
            small_corpus,
            row_counts=(100_000, 1_000_000),
            row_sizes=(100,),
            selectivities=(0.25,),
        )
        for query in workload.training_queries(small_catalog):
            s_rows = query.features[3]
            out_rows = query.features[6]
            assert out_rows == pytest.approx(0.25 * s_rows, rel=0.05)

    def test_paper_selectivities(self):
        assert PAPER_SELECTIVITIES == (1.0, 0.5, 0.25, 0.01)

    def test_plans_are_joins(self, small_corpus):
        workload = JoinWorkload(small_corpus, max_queries=6)
        for plan in workload.plans():
            assert isinstance(plan, Join)
            assert plan.extra_predicate is not None

    def test_projection_variants_cycle(self, small_corpus):
        workload = JoinWorkload(small_corpus)
        projections = {config.projection for config in workload.configs()}
        assert len(projections) == 3

    def test_invalid_selectivity(self, small_corpus):
        with pytest.raises(ConfigurationError):
            JoinWorkload(small_corpus, selectivities=(0.0,))


class TestOutOfRangeWorkload:
    def test_default_45_queries(self, corpus):
        workload = OutOfRangeWorkload(corpus)
        assert len(workload) == 45
        assert len(workload.plans()) == 45

    def test_big_side_out_of_range(self, corpus, catalog):
        workload = OutOfRangeWorkload(corpus)
        for query in workload.training_queries(catalog):
            assert query.features[1] == 20_000_000  # num_rows_r

    def test_some_configs_have_both_sides_off(self, corpus):
        workload = OutOfRangeWorkload(corpus)
        both = [c for c in workload.configs() if c.s_rows == 20_000_000]
        one = [c for c in workload.configs() if c.s_rows < 20_000_000]
        assert both and one

    def test_batch_split(self, corpus, catalog):
        workload = OutOfRangeWorkload(corpus)
        queries = workload.training_queries(catalog)
        batches = OutOfRangeWorkload.split_batches(queries, num_batches=5, seed=0)
        assert len(batches) == 5
        assert all(len(b) == 9 for b in batches)
        flat = [id(q) for batch in batches for q in batch]
        assert len(set(flat)) == 45


class TestSubOpBudgets:
    def test_grid_sizes(self):
        for budget in (6, 12, 18, 24, 32):
            sizes, counts = grid_for_budget(budget)
            assert len(sizes) * len(counts) <= budget
            assert len(sizes) >= 2 and len(counts) >= 2

    def test_trainer_for_budget(self):
        trainer = trainer_for_budget(12)
        assert isinstance(trainer, SubOpTrainer)
        assert (
            len(trainer.record_sizes) * len(trainer.record_counts) <= 12
        )

    def test_too_small_budget_rejected(self):
        with pytest.raises(ConfigurationError):
            grid_for_budget(3)


class TestScanWorkload:
    def test_grid_size(self, small_corpus):
        from repro.workloads import ScanWorkload

        workload = ScanWorkload(small_corpus)
        assert len(workload) == len(small_corpus) * 4
        assert len(workload.plans()) == len(workload)

    def test_selectivity_controls_output(self, small_corpus, small_catalog):
        from repro.workloads import ScanWorkload

        workload = ScanWorkload(small_corpus, selectivities=(0.1,))
        for query in workload.training_queries(small_catalog):
            rows_in, _, rows_out, _ = query.features
            assert rows_out == pytest.approx(0.1 * rows_in, rel=0.05)

    def test_projection_variants_cycle(self, small_corpus):
        from repro.workloads import ScanWorkload

        projections = {
            plan.projection for plan in ScanWorkload(small_corpus).plans()
        }
        assert len(projections) == 3

    def test_trains_a_scan_logical_model(self, small_corpus, small_catalog, small_hive):
        from repro.core import LogicalOpModel, OperatorKind
        from repro.core.training import TrainingSet
        from repro.workloads import ScanWorkload

        workload = ScanWorkload(small_corpus)
        model = LogicalOpModel(
            OperatorKind.SCAN, search_topology=False, nn_iterations=2500, seed=0
        )
        training_set = TrainingSet(model.dimension_names)
        for query in workload.training_queries(small_catalog):
            result = small_hive.execute(query.plan)
            training_set.add(query.features, result.elapsed_seconds)
        report = model.train(training_set)
        assert report.history.final_error < 25.0

    def test_invalid_selectivity(self, small_corpus):
        from repro.workloads import ScanWorkload

        with pytest.raises(ConfigurationError):
            ScanWorkload(small_corpus, selectivities=(2.0,))
