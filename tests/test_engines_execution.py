"""Tests for the DFS-engine execution model."""

import pytest

from repro.engines import (
    EngineCapabilities,
    HiveEngine,
    PrimitiveKind,
    PrimitiveQuery,
)
from repro.engines.execution import EngineTuning
from repro.exceptions import ConfigurationError, UnsupportedOperationError
from repro.sql.parser import parse_select


class TestQueryExecution:
    def test_bare_scan_feeding_nothing_still_runs(self, small_hive):
        result = small_hive.execute(parse_select("SELECT * FROM t10000_40"))
        assert result.elapsed_seconds == 0.0  # raw table access costs nothing
        assert result.output_rows == 10_000

    def test_filter_scan_has_cost(self, small_hive):
        result = small_hive.execute(
            parse_select("SELECT * FROM t1000000_100 WHERE a1 < 100")
        )
        assert result.elapsed_seconds > 0
        assert result.algorithm == "scan"
        assert result.output_rows == pytest.approx(100, rel=0.05)

    def test_join_reports_algorithm_and_cardinality(self, small_hive):
        result = small_hive.execute(
            parse_select(
                "SELECT * FROM t1000000_100 r JOIN t10000_100 s ON r.a1 = s.a1"
            )
        )
        assert result.algorithm == "broadcast_join"
        assert result.output_rows == 10_000
        assert result.elapsed_seconds > 0

    def test_aggregate_reports_algorithm(self, small_hive):
        result = small_hive.execute(
            parse_select("SELECT SUM(a1) FROM t1000000_100 GROUP BY a100")
        )
        assert result.algorithm == "hash_aggregate"
        assert result.output_rows == 10_000

    def test_aggregate_over_join_composes(self, small_hive):
        result = small_hive.execute(
            parse_select(
                "SELECT SUM(a1) FROM t1000000_100 r JOIN t10000_100 s "
                "ON r.a1 = s.a1 GROUP BY a5"
            )
        )
        join_only = small_hive.execute(
            parse_select(
                "SELECT * FROM t1000000_100 r JOIN t10000_100 s ON r.a1 = s.a1"
            )
        )
        assert result.elapsed_seconds > join_only.elapsed_seconds

    def test_missing_table_rejected(self, small_hive):
        with pytest.raises(UnsupportedOperationError):
            small_hive.execute(parse_select("SELECT * FROM nope WHERE a1 < 5"))

    def test_capability_enforcement(self, small_corpus):
        no_join = HiveEngine(
            seed=0,
            noise_sigma=0.0,
        )
        no_join.capabilities = EngineCapabilities(join=False)
        for spec in small_corpus:
            no_join.load_table(spec)
        with pytest.raises(UnsupportedOperationError):
            no_join.execute(
                parse_select(
                    "SELECT * FROM t10000_40 r JOIN t10000_100 s ON r.a1 = s.a1"
                )
            )

    def test_determinism_under_seed(self, small_corpus):
        plan = parse_select("SELECT SUM(a1) FROM t1000000_100 GROUP BY a5")

        def run():
            engine = HiveEngine(seed=42)
            for spec in small_corpus:
                engine.load_table(spec)
            return engine.execute(plan).elapsed_seconds

        assert run() == run()

    def test_noise_perturbs_elapsed(self, small_corpus):
        plan = parse_select("SELECT SUM(a1) FROM t1000000_100 GROUP BY a5")
        noisy = HiveEngine(seed=1, noise_sigma=0.05)
        quiet = HiveEngine(seed=1, noise_sigma=0.0)
        for spec in small_corpus:
            noisy.load_table(spec)
            quiet.load_table(spec)
        a = noisy.execute(plan).elapsed_seconds
        b = quiet.execute(plan).elapsed_seconds
        assert a != b
        assert a == pytest.approx(b, rel=0.3)


class TestWaveScaling:
    def test_task_waves_create_cost_steps(self, hive):
        """Doubling the input of a big scan roughly doubles elapsed time."""
        small = hive.execute(
            parse_select("SELECT * FROM t10000000_1000 WHERE a1 < 100")
        ).elapsed_seconds
        large = hive.execute(
            parse_select("SELECT * FROM t20000000_1000 WHERE a1 < 100")
        ).elapsed_seconds
        assert large == pytest.approx(2 * small, rel=0.25)


class TestPrimitives:
    def test_read_dfs_baseline(self, small_hive):
        t = small_hive.execute_primitive(
            PrimitiveQuery(PrimitiveKind.READ_DFS, 1_000_000, 100)
        )
        assert t > 0

    def test_extras_cost_more_than_baseline(self, small_hive):
        base = small_hive.execute_primitive(
            PrimitiveQuery(PrimitiveKind.READ_DFS, 1_000_000, 100)
        )
        for kind in (
            PrimitiveKind.READ_WRITE_DFS,
            PrimitiveKind.READ_SHUFFLE,
            PrimitiveKind.READ_MERGE,
            PrimitiveKind.READ_HASH_BUILD,
        ):
            extra = small_hive.execute_primitive(
                PrimitiveQuery(kind, 1_000_000, 100)
            )
            assert extra > base, kind

    def test_hash_build_spill_regime(self, small_hive):
        """Whole-input hash builds switch regimes past the memory budget."""
        budget = small_hive.env.kernels.hash_build.memory_budget
        small_n = budget // 1000 // 2
        big_n = budget // 1000 * 2

        def per_record(n):
            read = small_hive.execute_primitive(
                PrimitiveQuery(PrimitiveKind.READ_DFS, n, 1000)
            )
            build = small_hive.execute_primitive(
                PrimitiveQuery(PrimitiveKind.READ_HASH_BUILD, n, 1000)
            )
            return (build - read) / n

        assert per_record(big_n) > 2 * per_record(small_n)

    def test_invalid_primitive_rejected(self):
        with pytest.raises(ConfigurationError):
            PrimitiveQuery(PrimitiveKind.READ_DFS, -1, 100)
        with pytest.raises(ConfigurationError):
            PrimitiveQuery(PrimitiveKind.READ_DFS, 1, 0)


class TestEngineTuning:
    def test_validation(self):
        with pytest.raises(ConfigurationError):
            EngineTuning(job_startup=-1)
        with pytest.raises(ConfigurationError):
            EngineTuning(overlap_factor=0.0)
        with pytest.raises(ConfigurationError):
            EngineTuning(noise_sigma=-0.1)

    def test_retune_swaps_constants_mid_flight(self, small_hive):
        before = small_hive.tuning
        after = small_hive.retune(job_startup=0.5, overlap_factor=0.9)
        assert small_hive.tuning is after
        assert after.job_startup == 0.5
        assert after.overlap_factor == 0.9
        assert after.wave_startup == before.wave_startup

    def test_retune_rejects_unknown_field(self, small_hive):
        with pytest.raises(TypeError):
            small_hive.retune(warp_drive=1.0)
