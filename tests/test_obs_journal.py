"""Event journal: append/read round-trips, rotation, corruption
tolerance, sequence resumption, and deterministic replay — including
the acceptance check that a fresh process replaying the journal
rebuilds bit-identical ledger statistics and counters."""

import json
import os
import subprocess
import sys

import pytest

from repro import obs
from repro.core import ClusterInfo, CostEstimationModule, RemoteSystemProfile
from repro.data import Catalog, build_paper_corpus
from repro.engines import HiveEngine
from repro.obs import journal as jmod
from repro.obs.journal import (
    EventJournal,
    JournalEvent,
    NOOP_JOURNAL,
    SCHEMA_VERSION,
    read_journal,
    replay,
)
from repro.sql.parser import parse_select


class TestAppendRead:
    def test_round_trip(self, tmp_path):
        journal = EventJournal(tmp_path / "j.jsonl")
        journal.append("estimate", system="hive", seconds=1.5)
        journal.append("actual", system="hive", actual_seconds=2.0)
        result = journal.read()
        journal.close()
        assert result.corrupt_lines == 0
        assert [e.type for e in result.events] == ["estimate", "actual"]
        assert result.events[0].payload["seconds"] == 1.5
        assert result.events[0].seq == 1
        assert result.events[1].seq == 2
        assert all(e.version == SCHEMA_VERSION for e in result.events)

    def test_lines_are_canonical_json(self, tmp_path):
        journal = EventJournal(tmp_path / "j.jsonl")
        event = journal.append("estimate", b=2.0, a=1.0)
        journal.close()
        line = (tmp_path / "j.jsonl").read_text().strip()
        assert line == event.to_line()
        # Sorted keys, compact separators: byte-stable across runs.
        assert line.index('"a"') < line.index('"b"')
        assert ", " not in line

    def test_floats_survive_json_round_trip_exactly(self, tmp_path):
        value = 24.496869998477838
        journal = EventJournal(tmp_path / "j.jsonl")
        journal.append("estimate", seconds=value)
        result = journal.read()
        journal.close()
        assert result.events[0].payload["seconds"] == value

    def test_validates_configuration(self, tmp_path):
        with pytest.raises(ValueError):
            EventJournal(tmp_path / "j.jsonl", max_bytes=10)
        with pytest.raises(ValueError):
            EventJournal(tmp_path / "j.jsonl", max_files=0)


class TestRotation:
    def test_rotates_at_size_and_keeps_generations(self, tmp_path):
        path = tmp_path / "j.jsonl"
        journal = EventJournal(path, max_bytes=1024, max_files=2)
        for index in range(40):
            journal.append("estimate", index=index, padding="x" * 64)
        journal.close()
        assert path.exists()
        assert (tmp_path / "j.jsonl.1").exists()
        # Reading stitches generations back together, oldest first.
        result = read_journal(path, max_files=2)
        indices = [e.payload["index"] for e in result.events]
        assert indices == sorted(indices)
        assert indices[-1] == 39

    def test_oldest_generation_is_deleted(self, tmp_path):
        path = tmp_path / "j.jsonl"
        journal = EventJournal(path, max_bytes=1024, max_files=1)
        for index in range(80):
            journal.append("estimate", index=index, padding="x" * 64)
        journal.close()
        assert not (tmp_path / "j.jsonl.2").exists()
        result = read_journal(path, max_files=1)
        # Early events have been rotated away; the stream stays ordered.
        assert result.events[0].payload["index"] > 0


class TestCorruptionTolerance:
    def test_skips_garbage_lines(self, tmp_path):
        path = tmp_path / "j.jsonl"
        journal = EventJournal(path)
        journal.append("estimate", seconds=1.0)
        journal.append("actual", actual_seconds=2.0)
        journal.close()
        lines = path.read_text().splitlines()
        lines.insert(1, "{ not json")
        lines.insert(0, "garbage")
        path.write_text("\n".join(lines) + "\n")
        result = read_journal(path)
        assert result.corrupt_lines == 2
        assert [e.type for e in result.events] == ["estimate", "actual"]

    def test_torn_final_line(self, tmp_path):
        path = tmp_path / "j.jsonl"
        journal = EventJournal(path)
        journal.append("estimate", seconds=1.0)
        journal.append("actual", actual_seconds=2.0)
        journal.close()
        # Simulate a crash mid-append: truncate inside the last line.
        data = path.read_bytes()
        path.write_bytes(data[: len(data) - 10])
        result = read_journal(path)
        assert result.corrupt_lines == 1
        assert [e.type for e in result.events] == ["estimate"]

    def test_newer_schema_versions_are_skipped(self, tmp_path):
        path = tmp_path / "j.jsonl"
        future = JournalEvent(
            seq=1, type="estimate", payload={}, version=SCHEMA_VERSION + 1
        )
        path.write_text(future.to_line() + "\n")
        result = read_journal(path)
        assert result.skipped_versions == 1
        assert result.events == ()

    def test_missing_file_reads_empty(self, tmp_path):
        result = read_journal(tmp_path / "absent.jsonl")
        assert result.events == ()
        assert result.corrupt_lines == 0


class TestSequenceResumption:
    def test_seq_continues_across_reopen(self, tmp_path):
        path = tmp_path / "j.jsonl"
        journal = EventJournal(path)
        journal.append("estimate", seconds=1.0)
        journal.append("estimate", seconds=2.0)
        journal.close()
        reopened = EventJournal(path)
        event = reopened.append("estimate", seconds=3.0)
        reopened.close()
        assert event.seq == 3

    def test_seq_resumes_past_torn_final_line(self, tmp_path):
        path = tmp_path / "j.jsonl"
        journal = EventJournal(path)
        journal.append("estimate", seconds=1.0)
        journal.append("estimate", seconds=2.0)
        journal.close()
        data = path.read_bytes()
        path.write_bytes(data[: len(data) - 5])
        reopened = EventJournal(path)
        event = reopened.append("estimate", seconds=3.0)
        reopened.close()
        # The torn line (seq 2) is unreadable; resumption is best-effort
        # from the last complete line, so seq moves strictly forward.
        assert event.seq >= 2


class TestDefaultJournal:
    def test_disabled_by_default(self, monkeypatch):
        monkeypatch.delenv(jmod.JOURNAL_ENV_VAR, raising=False)
        obs.set_journal(None)
        try:
            journal = obs.get_journal()
            assert journal is NOOP_JOURNAL
            assert not journal.enabled
            assert journal.append("estimate", seconds=1.0) is None
        finally:
            obs.set_journal(None)

    def test_env_var_resolves_path(self, monkeypatch, tmp_path):
        path = tmp_path / "env.jsonl"
        monkeypatch.setenv(jmod.JOURNAL_ENV_VAR, str(path))
        obs.set_journal(None)
        try:
            journal = obs.get_journal()
            assert journal.enabled
            assert journal.path == str(path)
            journal.append("estimate", seconds=1.0)
            journal.close()
        finally:
            obs.set_journal(None)
        assert path.exists()

    def test_set_journal_returns_previous(self, tmp_path):
        journal = EventJournal(tmp_path / "j.jsonl")
        previous = obs.set_journal(journal)
        try:
            assert obs.get_journal() is journal
        finally:
            obs.set_journal(previous)
            journal.close()


class TestReplayUnits:
    def test_estimate_event(self):
        registry = obs.MetricsRegistry()
        events = [
            JournalEvent(
                seq=1,
                type="estimate",
                payload={
                    "approach": "sub_op",
                    "seconds": 10.0,
                    "remedy_active": True,
                },
            )
        ]
        result = replay(events, registry=registry, ledger=obs.AccuracyLedger())
        assert result.applied == 1
        assert registry.counter("costing.estimate_plan.calls").value == 1
        assert registry.counter("costing.approach.sub_op").value == 1
        assert registry.counter("costing.estimates_remedied").value == 1

    def test_actual_event_feeds_ledger(self):
        ledger = obs.AccuracyLedger()
        registry = obs.MetricsRegistry()
        events = [
            JournalEvent(
                seq=1,
                type="actual",
                payload={
                    "system": "hive",
                    "operator": "join",
                    "approach": "sub_op",
                    "estimated_seconds": 10.0,
                    "actual_seconds": 20.0,
                    "remedy_active": False,
                    "drift_flagged": True,
                },
            )
        ]
        replay(events, registry=registry, ledger=ledger)
        assert registry.counter("costing.record_actual.calls").value == 1
        assert registry.counter("costing.drift_flags").value == 1
        stats = ledger.stats(system="hive", operator="join")
        assert stats.count == 1
        assert stats.mean_q_error == 2.0

    def test_remedy_tuning_drift_events(self):
        registry = obs.MetricsRegistry()
        events = [
            JournalEvent(seq=1, type="remedy", payload={"phase": "activation", "fallback": True}),
            JournalEvent(seq=2, type="remedy", payload={"phase": "recalibration", "alpha": 0.7}),
            JournalEvent(seq=3, type="tuning", payload={"entries": 12}),
            JournalEvent(seq=4, type="drift", payload={"direction": "slower"}),
        ]
        result = replay(events, registry=registry, ledger=obs.AccuracyLedger())
        assert result.applied == 4
        assert registry.counter("remedy.activations").value == 1
        assert registry.counter("remedy.regression_fallbacks").value == 1
        assert registry.counter("remedy.recalibrations").value == 1
        assert registry.gauge("remedy.alpha").value == 0.7
        assert registry.counter("tuning.folds").value == 1
        assert registry.counter("tuning.entries_folded").value == 12
        assert registry.counter("drift.alarms").value == 1

    def test_unknown_event_types_are_ignored(self):
        registry = obs.MetricsRegistry()
        events = [JournalEvent(seq=1, type="mystery", payload={})]
        result = replay(events, registry=registry, ledger=obs.AccuracyLedger())
        assert result.applied == 0
        assert result.ignored == 1

    def test_unknown_event_types_counted_in_registry(self):
        """Forward compatibility: a journal written by a newer minor
        version replays with its unknown types skipped *and counted*."""
        registry = obs.MetricsRegistry()
        events = [
            JournalEvent(seq=1, type="estimate", payload={"seconds": 1.0}),
            JournalEvent(seq=2, type="mystery", payload={}),
            JournalEvent(seq=3, type="hologram", payload={"x": 1}),
            JournalEvent(seq=4, type="mystery", payload={}),
        ]
        result = replay(events, registry=registry, ledger=obs.AccuracyLedger())
        assert result.applied == 1
        assert result.ignored == 3
        assert (
            registry.counter("journal.replay.skipped_events").value == 3.0
        )

    def test_no_skip_counter_when_all_events_known(self):
        """An all-known replay must not materialize the skip counter —
        replayed registries stay bit-identical to the live ones."""
        registry = obs.MetricsRegistry()
        events = [
            JournalEvent(seq=1, type="estimate", payload={"seconds": 1.0})
        ]
        replay(events, registry=registry, ledger=obs.AccuracyLedger())
        assert "journal.replay.skipped_events" not in registry.snapshot()

    def test_profile_events_counted_but_drive_no_instrument(self):
        """Profile windows are sampler state, not costing telemetry:
        replay counts them as applied (they are a known type) without
        touching any metric — replayed registries stay bit-identical
        whether or not the run was profiled."""
        registry = obs.MetricsRegistry()
        events = [
            JournalEvent(
                seq=1,
                type="profile",
                payload={
                    "profile_v": 1,
                    "index": 0,
                    "start": 0.0,
                    "end": 60.0,
                    "samples": 3,
                    "roles": {"serve": 3},
                    "stacks": {"[serve];repro.a": 3},
                    "truncated": 0,
                },
            )
        ]
        result = replay(events, registry=registry, ledger=obs.AccuracyLedger())
        assert result.applied == 1
        assert result.ignored == 0
        assert result.counts["profile"] == 1
        assert registry.snapshot() == {}

    def test_alert_events_replay_into_counter(self):
        registry = obs.MetricsRegistry()
        events = [
            JournalEvent(
                seq=1,
                type="alert",
                payload={
                    "alert_version": 1,
                    "rule": "slo-q-error",
                    "instance": "hive/scan",
                    "state": "firing",
                    "severity": "critical",
                    "value": 9.0,
                    "exemplars": ["q-000001"],
                },
            ),
            JournalEvent(
                seq=2,
                type="alert",
                payload={"rule": "slo-q-error", "state": "resolved"},
            ),
        ]
        result = replay(events, registry=registry, ledger=obs.AccuracyLedger())
        assert result.applied == 2
        assert result.ignored == 0
        assert result.counts["alert"] == 2
        assert registry.counter("alerts.replayed").value == 2.0


# ----------------------------------------------------------------------
# Live-vs-replay parity (the tentpole acceptance test)
# ----------------------------------------------------------------------
def _journaled_workload(tmp_path):
    """A mixed estimate/actual workload journaled with fresh telemetry.

    Drift is deliberately triggered: the first ``baseline_window``
    actuals match the estimates (healthy baseline), then actuals jump to
    3x so the CUSUM crosses its threshold and both drift-flagged actuals
    and a ``drift`` event land in the journal.

    Returns ``(journal_path, live_registry, live_ledger)``.
    """
    corpus = build_paper_corpus(
        row_counts=(10_000, 100_000, 1_000_000), row_sizes=(100,)
    )
    engine = HiveEngine(seed=7, noise_sigma=0.0)
    catalog = Catalog()
    for spec in corpus:
        engine.load_table(spec)
        catalog.register(spec)
    module_ledger = obs.AccuracyLedger()
    module = CostEstimationModule(ledger=module_ledger)
    module.register_system(
        engine,
        RemoteSystemProfile(
            name="hive",
            cluster=ClusterInfo(
                num_data_nodes=3,
                cores_per_node=2,
                dfs_block_size=128 * 1024 * 1024,
            ),
        ),
    )
    module.train_sub_op("hive")

    path = tmp_path / "workload.jsonl"
    registry = obs.MetricsRegistry()
    previous_registry = obs.set_registry(registry)
    previous_journal = obs.set_journal(EventJournal(path))
    try:
        queries = [
            "SELECT r.a1 FROM t1000000_100 r JOIN t100000_100 s ON r.a1 = s.a1",
            "SELECT SUM(a1) FROM t1000000_100 GROUP BY a20",
            "SELECT a1 FROM t100000_100 WHERE a1 = 1",
        ]
        estimates = [
            module.estimate_plan("hive", parse_select(sql), catalog)
            for sql in queries
        ]
        # Healthy baseline, then a sustained 3x slowdown -> drift.
        for index in range(45):
            estimate = estimates[index % len(estimates)]
            factor = 1.0 if index < 30 else 3.0
            module.record_actual(
                "hive", estimate, estimate.seconds * factor
            )
        obs.get_journal().close()
    finally:
        obs.set_registry(previous_registry)
        obs.set_journal(previous_journal)
    return path, registry, module_ledger


def _comparable_metrics(snapshot):
    """Metric snapshots minus help/unit text (replay can't know those)."""
    cleaned = {}
    for name, data in snapshot.items():
        data = dict(data)
        data.pop("help", None)
        data.pop("unit", None)
        cleaned[name] = data
    return cleaned


def test_replay_in_process_is_bit_identical(tmp_path):
    path, live_registry, live_ledger = _journaled_workload(tmp_path)
    registry = obs.MetricsRegistry()
    ledger = obs.AccuracyLedger()
    result = replay(str(path), registry=registry, ledger=ledger)

    assert result.corrupt_lines == 0
    assert result.counts["estimate"] == 3
    assert result.counts["actual"] == 45
    assert result.counts["drift"] == 1
    # Every rebuilt instrument matches the live one exactly — including
    # float histogram sums and all ledger statistics.
    live_metrics = _comparable_metrics(live_registry.snapshot())
    for name, data in _comparable_metrics(registry.snapshot()).items():
        assert data == live_metrics[name], name
    assert ledger.snapshot() == live_ledger.snapshot()


def test_replay_in_fresh_process_is_bit_identical(tmp_path):
    """The acceptance criterion: journal -> new process -> same stats."""
    path, live_registry, live_ledger = _journaled_workload(tmp_path)

    script = (
        "import json, sys\n"
        "from repro import obs\n"
        "from repro.obs.journal import replay\n"
        "registry = obs.MetricsRegistry()\n"
        "ledger = obs.AccuracyLedger()\n"
        "result = replay(sys.argv[1], registry=registry, ledger=ledger)\n"
        "print(json.dumps({\n"
        "    'applied': result.applied,\n"
        "    'ledger': ledger.snapshot(),\n"
        "    'metrics': registry.snapshot(),\n"
        "}, sort_keys=True))\n"
    )
    src_dir = os.path.dirname(os.path.dirname(os.path.abspath(obs.__file__)))
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        part for part in (src_dir, env.get("PYTHONPATH")) if part
    )
    env.pop(jmod.JOURNAL_ENV_VAR, None)
    proc = subprocess.run(
        [sys.executable, "-c", script, str(path)],
        capture_output=True,
        text=True,
        env=env,
        check=True,
    )
    rebuilt = json.loads(proc.stdout)

    assert rebuilt["applied"] == 49  # 3 estimates + 45 actuals + 1 drift
    # Ledger statistics — q-error, RMSE%, slope, remedy fraction — must
    # be *bit-identical*: floats round-trip exactly through JSON and the
    # replay applies observations in append order.
    assert rebuilt["ledger"] == live_ledger.snapshot()
    live_metrics = _comparable_metrics(live_registry.snapshot())
    for name, data in _comparable_metrics(rebuilt["metrics"]).items():
        assert data == live_metrics[name], name


class TestRotationAcrossRestart:
    """The journal satellite: size rotation interleaved with a simulated
    process restart — sequence numbers resume, ``replay()`` stitches the
    rotated segments, and ``window`` events survive rotation."""

    def fill(self, journal, start, count):
        for index in range(start, start + count):
            journal.append("estimate", index=index, padding="x" * 64)

    def test_seq_resumes_after_restart_with_rotated_segments(self, tmp_path):
        path = tmp_path / "j.jsonl"
        first = EventJournal(path, max_bytes=1024, max_files=3)
        self.fill(first, 0, 40)
        last_seq = first.append("estimate", index=40).seq
        first.close()
        assert (tmp_path / "j.jsonl.1").exists()  # rotation happened

        # "Restart": a fresh process opens the same path and must resume
        # numbering from the *active* file's tail, not from 1.
        second = EventJournal(path, max_bytes=1024, max_files=3)
        resumed = second.append("estimate", index=41)
        self.fill(second, 42, 40)  # force more rotation post-restart
        second.close()
        assert resumed.seq == last_seq + 1

        result = read_journal(path, max_files=3)
        indices = [e.payload["index"] for e in result.events]
        assert indices == sorted(indices)
        assert result.corrupt_lines == 0

    def test_replay_over_rotated_segments_rebuilds_counters(self, tmp_path):
        path = tmp_path / "j.jsonl"
        journal = EventJournal(path, max_bytes=4096, max_files=4)
        events = 40
        for index in range(events):
            journal.append(
                "actual",
                system="hive",
                operator="scan",
                approach="sub_op",
                estimated_seconds=10.0,
                actual_seconds=20.0,
                remedy_active=False,
                drift_flagged=False,
                padding="x" * 32,
            )
        journal.close()
        assert (tmp_path / "j.jsonl.1").exists()

        registry = obs.MetricsRegistry()
        ledger = obs.AccuracyLedger()
        result = replay(path, registry=registry, ledger=ledger)
        assert result.counts["actual"] == events
        assert registry.counter("costing.record_actual.calls").value == events
        assert ledger.stats("hive", "scan").count == events

    def test_window_events_survive_rotation_and_restart(self, tmp_path):
        from repro.obs.timeseries import (
            ManualClock,
            TimeSeriesAggregator,
            windows_from_events,
        )

        path = tmp_path / "j.jsonl"
        clock = ManualClock()

        def run_session(width_offset):
            """One "process": aggregator journaling into the shared path."""
            journal = EventJournal(path, max_bytes=4096, max_files=6)
            aggregator = TimeSeriesAggregator(
                width=10.0, clock=clock, journal=journal
            )
            closed = []
            for step in range(12):
                aggregator.on_counter("runs", 1.0)
                aggregator.on_histogram("lat", 0.01 * (step + 1))
                clock.advance(10.0)
                aggregator.maybe_roll()
            closed.extend(aggregator.windows())
            journal.close()
            return closed

        first = run_session(0)
        second = run_session(1)  # restart: same path, resumed seqs
        assert (tmp_path / "j.jsonl.1").exists()  # windows forced rotation

        result = read_journal(path, max_files=6)
        seqs = [e.seq for e in result.events]
        assert seqs == sorted(seqs)
        rebuilt = windows_from_events(result.events)
        assert rebuilt == tuple(first) + tuple(second)


class TestAppendGroup:
    """Rotation-atomic group appends: the incident bundle's guarantee
    that its header and records never straddle a generation boundary."""

    def test_group_appends_in_order_with_sequential_seqs(self, tmp_path):
        journal = EventJournal(tmp_path / "j.jsonl")
        journal.append("estimate", system="hive")
        written = journal.append_group(
            [
                ("incident", {"name": "incident-000001-drift"}),
                ("incident_record", {"incident": "incident-000001-drift"}),
            ]
        )
        journal.close()
        assert [e.seq for e in written] == [2, 3]
        result = read_journal(tmp_path / "j.jsonl")
        assert [e.type for e in result.events] == [
            "estimate",
            "incident",
            "incident_record",
        ]

    def test_group_rotates_at_most_once_and_never_splits(self, tmp_path):
        path = tmp_path / "j.jsonl"
        journal = EventJournal(path, max_bytes=2048, max_files=3)
        # Park the active file just under the rotation boundary.
        for index in range(24):
            journal.append("estimate", index=index, padding="x" * 48)
        group = [
            ("incident", {"name": "incident-000001-alert", "n": 0})
        ] + [
            ("incident_record", {"incident": "incident-000001-alert", "n": n})
            for n in range(1, 10)
        ]
        journal.append_group(group)
        journal.close()
        assert (tmp_path / "j.jsonl.1").exists()
        # Every group line lives in exactly one physical file.
        files_with_group = set()
        for name in ("j.jsonl", "j.jsonl.1", "j.jsonl.2", "j.jsonl.3"):
            generation = tmp_path / name
            if not generation.exists():
                continue
            for line in generation.read_text().splitlines():
                if json.loads(line)["type"].startswith("incident"):
                    files_with_group.add(name)
        assert len(files_with_group) == 1
        # Reading stitches the stream back together, group intact.
        result = read_journal(path, max_files=3)
        ns = [
            e.payload["n"]
            for e in result.events
            if e.type.startswith("incident")
        ]
        assert ns == list(range(10))

    def test_oversized_group_overshoots_unsplit(self, tmp_path):
        path = tmp_path / "j.jsonl"
        journal = EventJournal(path, max_bytes=1024, max_files=2)
        group = [
            ("incident_record", {"incident": "i", "padding": "y" * 128})
            for _ in range(16)  # well past max_bytes as one group
        ]
        journal.append_group(group)
        journal.close()
        lines = path.read_text().splitlines()
        assert len(lines) == 16  # the active file simply overshoots
        assert os.path.getsize(path) > 1024

    def test_group_notifies_journal_listeners(self, tmp_path):
        seen = []
        listener = seen.append
        jmod.add_journal_listener(listener)
        try:
            journal = EventJournal(tmp_path / "j.jsonl")
            journal.append_group(
                [("incident", {"name": "i"}), ("incident_record", {"n": 1})]
            )
            journal.close()
        finally:
            jmod.remove_journal_listener(listener)
        assert [e.type for e in seen] == ["incident", "incident_record"]

    def test_noop_journal_group_is_inert(self):
        assert NOOP_JOURNAL.append_group([("incident", {"name": "i"})]) == ()
