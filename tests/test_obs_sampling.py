"""The continuous stack-sampling profiler: deterministic folding into
bounded profile windows, role tagging, journal round-trips and offline
reconstruction, the process-wide sampler lifecycle, and live sampling
over real threads."""

import json
import os
import threading
import time

import pytest

from repro import obs
from repro.obs.journal import EventJournal, NOOP_JOURNAL
from repro.obs.metrics import MetricsRegistry
from repro.obs.sampling import (
    DEFAULT_HZ,
    DEFAULT_WINDOW_SECONDS,
    MAX_STACK_DEPTH,
    OVERFLOW_KEY,
    PROF_ENV_VAR,
    PROF_WINDOW_ENV_VAR,
    PROFILE_SCHEMA_VERSION,
    TRUNCATED_FRAME,
    ProfileWindow,
    StackSampler,
    _env_hz,
    fold_stack,
    get_stack_sampler,
    maybe_start_sampling,
    merge_stacks,
    profiles_from_events,
    register_thread_role,
    role_for_thread,
    set_stack_sampler,
    start_sampling,
    stop_sampling,
)


@pytest.fixture(autouse=True)
def obs_state():
    previous = obs.set_registry(MetricsRegistry())
    yield
    obs.set_registry(previous)


@pytest.fixture(autouse=True)
def no_default_sampler():
    """No process-wide sampler leaks into or out of a test."""
    previous = set_stack_sampler(None)
    yield
    stop_sampling()
    set_stack_sampler(previous)


def make_sampler(**kwargs):
    kwargs.setdefault("hz", 100.0)
    kwargs.setdefault("window_seconds", 10.0)
    kwargs.setdefault("journal", NOOP_JOURNAL)
    return StackSampler(**kwargs)


# A small deterministic sample log: (now, role, frames) triples.
SAMPLE_LOG = (
    (0.1, "serve", ("repro.serve._worker_loop", "repro.core.estimate")),
    (0.2, "serve", ("repro.serve._worker_loop", "repro.core.estimate")),
    (0.3, "serve", ("repro.serve._worker_loop", "repro.core.lookup")),
    (0.4, "http", ("http.server.handle", "repro.obs.server.render")),
    (0.5, "main", ()),
    (10.2, "serve", ("repro.serve._worker_loop",)),
    (10.4, "serve", ("repro.serve._worker_loop",)),
    (21.0, "main", ("repro.cli.main",)),
)


def drive(sampler, log=SAMPLE_LOG):
    for now, role, frames in log:
        sampler.record_sample(now, role, frames)


class TestFolding:
    def test_fold_stack_root_first(self):
        assert fold_stack("serve", ["a.f", "b.g"]) == "[serve];a.f;b.g"

    def test_fold_stack_empty_frames(self):
        assert fold_stack("main", []) == "[main]"


class TestRoles:
    @pytest.mark.parametrize(
        "name,role",
        [
            ("repro-serve-worker-3", "serve"),
            ("repro-obs-server:9177", "http"),
            ("repro-sim-tenant-a", "simulator"),
            ("repro-prof-sampler", "profiler"),
            ("MainThread", "main"),
            ("Thread-7 (process_request_thread)", "http"),
            ("Thread-2", "other"),
            ("", "other"),
        ],
    )
    def test_builtin_table(self, name, role):
        assert role_for_thread(name) == role

    def test_register_thread_role_takes_precedence(self):
        try:
            register_thread_role("repro-serve-worker", "custom")
            assert role_for_thread("repro-serve-worker-0") == "custom"
        finally:
            # restore the builtin mapping for other tests
            register_thread_role("repro-serve-worker", "serve")
            assert role_for_thread("repro-serve-worker-0") == "serve"

    def test_register_rejects_empty(self):
        with pytest.raises(ValueError):
            register_thread_role("", "role")
        with pytest.raises(ValueError):
            register_thread_role("prefix", "")


class TestEnvParsing:
    @pytest.mark.parametrize(
        "raw,expected",
        [
            ("", 0.0),
            ("0", 0.0),
            ("off", 0.0),
            ("False", 0.0),
            ("no", 0.0),
            ("none", 0.0),
            ("1", DEFAULT_HZ),
            ("true", DEFAULT_HZ),
            ("YES", DEFAULT_HZ),
            ("on", DEFAULT_HZ),
            ("250", 250.0),
            ("49.5", 49.5),
            ("-5", 0.0),
            ("banana", DEFAULT_HZ),
        ],
    )
    def test_env_hz(self, raw, expected):
        assert _env_hz(raw) == expected

    def test_constructor_reads_env(self, monkeypatch):
        monkeypatch.setenv(PROF_ENV_VAR, "123")
        monkeypatch.setenv(PROF_WINDOW_ENV_VAR, "7.5")
        sampler = StackSampler(journal=NOOP_JOURNAL)
        assert sampler.hz == 123.0
        assert sampler.width == 7.5

    def test_env_off_still_builds_with_default_hz(self, monkeypatch):
        # Explicit construction ignores an "off" env (that gate lives in
        # maybe_start_sampling); hz falls back to the default.
        monkeypatch.setenv(PROF_ENV_VAR, "0")
        monkeypatch.delenv(PROF_WINDOW_ENV_VAR, raising=False)
        sampler = StackSampler(journal=NOOP_JOURNAL)
        assert sampler.hz == DEFAULT_HZ
        assert sampler.width == DEFAULT_WINDOW_SECONDS

    def test_bad_window_env_falls_back(self, monkeypatch):
        monkeypatch.setenv(PROF_WINDOW_ENV_VAR, "soon")
        sampler = StackSampler(hz=10.0, journal=NOOP_JOURNAL)
        assert sampler.width == DEFAULT_WINDOW_SECONDS

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            StackSampler(hz=0.0, journal=NOOP_JOURNAL)
        with pytest.raises(ValueError):
            StackSampler(hz=10.0, window_seconds=0.0, journal=NOOP_JOURNAL)
        with pytest.raises(ValueError):
            make_sampler(retention=0)
        with pytest.raises(ValueError):
            make_sampler(max_stacks=0)


class TestWindows:
    def test_record_sample_rolls_windows_at_boundaries(self):
        sampler = make_sampler()
        drive(sampler)
        windows = sampler.windows()
        assert [w.index for w in windows] == [0, 1]
        assert windows[0].samples == 5
        assert windows[0].roles == {"serve": 3, "http": 1, "main": 1}
        assert windows[0].start == 0.0
        assert windows[0].end == 10.0
        assert windows[1].samples == 2
        assert sampler.closed_count == 2
        # window 2 is still open
        assert sampler.last_window().index == 2
        closed = sampler.flush()
        assert closed.index == 2
        assert sampler.closed_count == 3

    def test_fixed_log_is_deterministic(self):
        payloads = []
        for _ in range(2):
            sampler = make_sampler()
            drive(sampler)
            sampler.flush()
            payloads.append(
                json.dumps(
                    [w.to_payload() for w in sampler.windows()],
                    sort_keys=True,
                )
            )
        assert payloads[0] == payloads[1]

    def test_payload_round_trip_exact(self):
        sampler = make_sampler()
        drive(sampler)
        sampler.flush()
        for window in sampler.windows():
            payload = json.loads(json.dumps(window.to_payload()))
            assert ProfileWindow.from_payload(payload) == window
            assert payload["profile_v"] == PROFILE_SCHEMA_VERSION

    def test_retention_ring_bounded(self):
        sampler = make_sampler(retention=2)
        for index in range(5):
            sampler.record_sample(index * 10.0 + 0.5, "main", ("f.g",))
        sampler.flush()
        windows = sampler.windows()
        assert len(windows) == 2
        assert [w.index for w in windows] == [3, 4]
        assert sampler.closed_count == 5

    def test_max_stacks_overflow_deterministic(self):
        sampler = make_sampler(max_stacks=2)
        sampler.record_sample(0.1, "a", ("f1",))
        sampler.record_sample(0.2, "b", ("f2",))
        sampler.record_sample(0.3, "c", ("f3",))  # over budget
        sampler.record_sample(0.4, "a", ("f1",))  # existing key still counts
        sampler.record_sample(0.5, "d", ("f4",))  # over budget
        window = sampler.flush()
        assert window.stacks == {
            "[a];f1": 2,
            "[b];f2": 1,
            OVERFLOW_KEY: 2,
        }
        assert window.truncated == 2
        assert window.samples == 5

    def test_frame_stats_self_total(self):
        window = ProfileWindow(
            index=0,
            start=0.0,
            end=10.0,
            samples=4,
            stacks={"[s];a;b": 3, "[s];a": 1},
        )
        stats = window.frame_stats()
        assert stats["b"] == (3, 3)
        assert stats["a"] == (1, 4)
        assert stats["[s]"] == (0, 4)

    def test_frame_stats_recursion_counts_once(self):
        window = ProfileWindow(
            index=0, start=0.0, end=1.0, samples=5, stacks={"[s];a;a;a": 5}
        )
        assert window.frame_stats()["a"] == (5, 5)

    def test_merged_stacks_and_merge_stacks(self):
        sampler = make_sampler()
        drive(sampler)
        merged = sampler.merged_stacks()  # includes the open window
        assert sum(merged.values()) == len(SAMPLE_LOG)
        assert list(merged) == sorted(merged)
        without_open = merge_stacks(sampler.windows())
        assert sum(without_open.values()) == len(SAMPLE_LOG) - 1

    def test_snapshot_shape(self):
        sampler = make_sampler()
        drive(sampler)
        snap = sampler.snapshot()
        assert snap["v"] == PROFILE_SCHEMA_VERSION
        assert snap["hz"] == 100.0
        assert snap["width"] == 10.0
        assert snap["running"] is False
        assert snap["sampled"] == len(SAMPLE_LOG)
        assert snap["closed"] == 2
        # two closed plus the open window frozen in place
        assert len(snap["windows"]) == 3
        json.dumps(snap)  # JSON-serializable as served by /profile


class TestJournalRoundTrip:
    def test_windows_journal_and_rebuild_bit_identical(self, tmp_path):
        path = tmp_path / "prof.jsonl"
        journal = EventJournal(path)
        sampler = make_sampler(journal=journal)
        drive(sampler)
        sampler.flush()
        journal.close()
        live = [w.to_payload() for w in sampler.windows()]
        rebuilt = profiles_from_events(path)
        assert [w.to_payload() for w in rebuilt] == live
        assert obs.counter("obs.sampling.windows").value == 3.0

    def test_newer_schema_and_malformed_payloads_skipped(self, tmp_path):
        path = tmp_path / "prof.jsonl"
        journal = EventJournal(path)
        journal.append("profile", **ProfileWindow(0, 0.0, 1.0, 1).to_payload())
        journal.append("profile", profile_v=PROFILE_SCHEMA_VERSION + 1)
        journal.append("profile", profile_v="soon")
        journal.append("estimate", seconds=1.0)
        journal.close()
        rebuilt = profiles_from_events(path)
        assert len(rebuilt) == 1
        assert rebuilt[0].index == 0

    def test_noop_journal_writes_nothing(self):
        sampler = make_sampler()
        drive(sampler)
        sampler.flush()  # journal=NOOP_JOURNAL: no error, no file


class TestProcessWideSampler:
    def test_start_stop_sampling(self):
        sampler = start_sampling(hz=200.0, window_seconds=1.0,
                                 journal=NOOP_JOURNAL)
        try:
            assert get_stack_sampler() is sampler
            assert sampler.running
            assert obs.gauge("obs.sampling.hz").value == 200.0
            # idempotent: a second start returns the installed sampler
            assert start_sampling(hz=50.0) is sampler
        finally:
            stopped = stop_sampling()
        assert stopped is sampler
        assert get_stack_sampler() is None
        assert not sampler.running
        assert obs.gauge("obs.sampling.hz").value == 0.0
        assert stop_sampling() is None  # no-op when off

    def test_maybe_start_sampling_off_by_default(self, monkeypatch):
        monkeypatch.delenv(PROF_ENV_VAR, raising=False)
        assert maybe_start_sampling() is None
        assert get_stack_sampler() is None

    def test_maybe_start_sampling_env_on(self, monkeypatch):
        monkeypatch.setenv(PROF_ENV_VAR, "150")
        monkeypatch.delenv(PROF_WINDOW_ENV_VAR, raising=False)
        sampler = maybe_start_sampling()
        try:
            assert sampler is not None
            assert sampler.hz == 150.0
            assert sampler.running
            # someone else owns it now: a second call yields None
            assert maybe_start_sampling() is None
        finally:
            stop_sampling()

    def test_maybe_start_sampling_respects_off_values(self, monkeypatch):
        for raw in ("0", "off", "false"):
            monkeypatch.setenv(PROF_ENV_VAR, raw)
            assert maybe_start_sampling() is None


class TestLiveSampling:
    def test_daemon_samples_real_threads(self):
        release = threading.Event()

        def parked_worker():
            release.wait(timeout=10.0)

        worker = threading.Thread(
            target=parked_worker, name="repro-serve-worker-77", daemon=True
        )
        worker.start()
        sampler = make_sampler(hz=400.0, window_seconds=0.25)
        with sampler:
            deadline = time.monotonic() + 5.0
            while sampler.sampled < 20 and time.monotonic() < deadline:
                time.sleep(0.01)
        release.set()
        worker.join(timeout=5.0)
        assert sampler.sampled >= 20
        merged = sampler.merged_stacks()
        roles = {stack.split(";")[0] for stack in merged}
        assert "[serve]" in roles
        assert obs.counter("obs.sampling.samples").value >= 20.0
        assert obs.gauge("obs.sampling.hz").value == 0.0  # stopped

    def test_sample_once_excludes_calling_thread(self):
        release = threading.Event()
        worker = threading.Thread(
            target=release.wait, args=(10.0,),
            name="repro-serve-worker-0", daemon=True,
        )
        worker.start()
        sampler = make_sampler()
        try:
            sampler.sample_once(now=0.5)
        finally:
            release.set()
            worker.join(timeout=5.0)
        roles = {s.split(";")[0] for s in sampler.merged_stacks()}
        assert "[serve]" in roles  # the parked worker was walked
        # the thread running the walk (this one) never samples itself
        own_role = f"[{role_for_thread(threading.current_thread().name)}]"
        assert own_role not in roles

    def test_double_start_rejected(self):
        sampler = make_sampler(hz=50.0)
        sampler.start()
        try:
            with pytest.raises(RuntimeError):
                sampler.start()
        finally:
            sampler.stop()

    def test_deep_stack_truncated(self):
        sampler = make_sampler()

        def recurse(depth):
            if depth == 0:
                return sampler.sample_once(now=0.1)
            return recurse(depth - 1)

        # sample_once skips the calling thread's own ident, so drive the
        # deep stack from a helper thread parked inside the recursion.
        entered = threading.Event()
        release = threading.Event()

        def deep_worker():
            def hold(depth):
                if depth == 0:
                    entered.set()
                    release.wait(timeout=10.0)
                    return
                hold(depth - 1)

            hold(MAX_STACK_DEPTH + 20)

        worker = threading.Thread(target=deep_worker, daemon=True)
        worker.start()
        assert entered.wait(timeout=10.0)
        sampler.sample_once(now=0.1)
        release.set()
        worker.join(timeout=5.0)
        merged = sampler.merged_stacks()
        deep = [s for s in merged if TRUNCATED_FRAME in s]
        assert deep, f"no truncated stack in {list(merged)[:5]}"
        for stack in deep:
            frames = stack.split(";")
            assert frames[1] == TRUNCATED_FRAME
            assert len(frames) == MAX_STACK_DEPTH + 2  # role + marker + frames

    def test_repr(self):
        sampler = make_sampler()
        assert "stopped" in repr(sampler)
        assert "hz=100" in repr(sampler)
