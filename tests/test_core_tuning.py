"""Tests for the execution log and offline tuning phase."""

import numpy as np
import pytest

from repro.core.metadata import DimensionMetadata
from repro.core.training import TrainingSet
from repro.core.tuning import ExecutionLog, LogEntry, OfflineTuner
from repro.exceptions import ConfigurationError
from repro.ml.metrics import rmse_percent
from repro.ml.nn import NeuralNetwork


def linear_cost(rows, size):
    return 2 * rows / 1e5 + size / 100


def make_trained_model():
    ts = TrainingSet(("rows", "size"))
    for rows in range(100_000, 900_000, 100_000):
        for size in range(100, 600, 100):
            ts.add((rows, size), linear_cost(rows, size))
    network = NeuralNetwork(hidden_layers=(6, 3), seed=0)
    network.fit(
        ts.feature_matrix(), ts.cost_vector(), iterations=4000, record_every=4000
    )
    return ts, network, ts.build_metadata()


class TestExecutionLog:
    def test_record_and_drain(self):
        log = ExecutionLog(2)
        log.record((1, 2), 3.0)
        log.record((4, 5), 6.0)
        assert len(log) == 2
        batch = log.drain()
        assert len(batch) == 2
        assert len(log) == 0
        assert batch[0] == LogEntry(features=(1.0, 2.0), actual_cost=3.0)

    def test_dimension_check(self):
        log = ExecutionLog(2)
        with pytest.raises(ConfigurationError):
            log.record((1,), 3.0)

    def test_negative_cost_rejected(self):
        log = ExecutionLog(1)
        with pytest.raises(ConfigurationError):
            log.record((1,), -1.0)


class TestOfflineTuner:
    def test_empty_batch_noop(self):
        ts, network, metadata = make_trained_model()
        tuner = OfflineTuner()
        assert tuner.tune(network, ts, metadata, []) == 0

    def test_tuning_improves_out_of_range_accuracy(self):
        """The Fig. 14 'NN + Offline Tuning' effect."""
        ts, network, metadata = make_trained_model()
        rng = np.random.default_rng(0)
        rows = rng.uniform(1.5e6, 2.5e6, size=40)
        sizes = rng.choice([100, 200, 300, 400, 500], size=40)
        x_new = np.column_stack([rows, sizes])
        y_new = np.array([linear_cost(r, s) for r, s in x_new])

        before = rmse_percent(y_new, network.predict(x_new))
        batch = [
            LogEntry(features=tuple(x_new[i]), actual_cost=float(y_new[i]))
            for i in range(30)
        ]
        tuner = OfflineTuner(tuning_iterations=4000, seed=0)
        applied = tuner.tune(network, ts, metadata, batch)
        assert applied == 30
        after = rmse_percent(y_new, network.predict(x_new))
        assert after < before / 2

    def test_batch_joins_training_set(self):
        ts, network, metadata = make_trained_model()
        n_before = len(ts)
        batch = [LogEntry(features=(2e6, 300.0), actual_cost=43.0)]
        OfflineTuner(tuning_iterations=50).tune(network, ts, metadata, batch)
        assert len(ts) == n_before + 1

    def test_metadata_absorbs_under_continuity_rule(self):
        ts, network, metadata = make_trained_model()
        # rows metadata: [1e5, 8e5] step 1e5 -> 2e6 is discontiguous.
        batch = [LogEntry(features=(2e6, 300.0), actual_cost=43.0)]
        OfflineTuner(tuning_iterations=50, beta=2.0).tune(
            network, ts, metadata, batch
        )
        rows_meta = metadata[0]
        assert rows_meta.max_value == 800_000  # unchanged
        assert 2e6 in rows_meta.extra_points

    def test_contiguous_value_expands_range(self):
        ts, network, metadata = make_trained_model()
        batch = [LogEntry(features=(900_000.0, 300.0), actual_cost=21.0)]
        OfflineTuner(tuning_iterations=50, beta=2.0).tune(
            network, ts, metadata, batch
        )
        assert metadata[0].max_value == 900_000

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            OfflineTuner(tuning_iterations=0)
        with pytest.raises(ConfigurationError):
            OfflineTuner(replay_fraction=1.0)
