"""Tests for the online remedy phase and α calibration."""

import numpy as np
import pytest

from repro.core.metadata import DimensionMetadata
from repro.core.remedy import AlphaCalibrator, OnlineRemedy
from repro.core.training import TrainingSet
from repro.exceptions import ConfigurationError


def make_linear_training_set():
    """Cost = 2·rows/1e5 + size/100; rows grid 1e5..8e5, size 100..500."""
    ts = TrainingSet(("rows", "size"))
    for rows in range(100_000, 900_000, 100_000):
        for size in range(100, 600, 100):
            cost = 2 * rows / 1e5 + size / 100
            ts.add((rows, size), cost)
    return ts


@pytest.fixture()
def setup():
    ts = make_linear_training_set()
    metadata = ts.build_metadata()
    return ts, metadata


class TestPivotRegression:
    def test_extrapolates_along_pivot(self, setup):
        ts, metadata = setup
        remedy = OnlineRemedy(k_neighbors=6)
        # Query rows = 2e6, way off the 8e5 max; size in range.
        estimate = remedy.estimate(
            nn_estimate=18.0,  # roughly the trained max region
            training_set=ts,
            metadata=metadata,
            features=(2_000_000, 300),
            pivots=(0,),
            alpha=0.5,
        )
        true_cost = 2 * 2_000_000 / 1e5 + 300 / 100  # = 43
        assert estimate.regression_estimate == pytest.approx(true_cost, rel=0.05)
        assert estimate.combined == pytest.approx(
            0.5 * 18.0 + 0.5 * estimate.regression_estimate
        )

    def test_neighbors_match_in_range_dims(self, setup):
        """The regression must use neighbors whose size matches the query,
        so the extrapolation is exact for this separable cost."""
        ts, metadata = setup
        remedy = OnlineRemedy(k_neighbors=6)
        e100 = remedy.estimate(0.0, ts, metadata, (2_000_000, 100), (0,), alpha=0.0)
        e500 = remedy.estimate(0.0, ts, metadata, (2_000_000, 500), (0,), alpha=0.0)
        assert e500.regression_estimate - e100.regression_estimate == pytest.approx(
            4.0, abs=0.5
        )

    def test_two_pivot_dimensions(self, setup):
        ts, metadata = setup
        remedy = OnlineRemedy(k_neighbors=10)
        estimate = remedy.estimate(
            nn_estimate=18.0,
            training_set=ts,
            metadata=metadata,
            features=(2_000_000, 2_000),
            pivots=(0, 1),
            alpha=0.5,
        )
        true_cost = 2 * 2_000_000 / 1e5 + 2_000 / 100
        assert estimate.regression_estimate == pytest.approx(true_cost, rel=0.15)

    def test_no_pivots_rejected(self, setup):
        ts, metadata = setup
        with pytest.raises(ConfigurationError):
            OnlineRemedy().estimate(1.0, ts, metadata, (1, 1), (), alpha=0.5)

    def test_degenerate_training_falls_back_to_nn(self):
        ts = TrainingSet(("rows",))
        for _ in range(5):
            ts.add((100,), 1.0)  # no spread at all
        metadata = ts.build_metadata()
        estimate = OnlineRemedy(k_neighbors=4).estimate(
            nn_estimate=7.0,
            training_set=ts,
            metadata=metadata,
            features=(10_000,),
            pivots=(0,),
            alpha=0.5,
        )
        assert estimate.combined == pytest.approx(7.0)

    def test_combined_never_negative(self, setup):
        ts, metadata = setup
        estimate = OnlineRemedy().estimate(
            nn_estimate=0.0,
            training_set=ts,
            metadata=metadata,
            features=(1, 1),  # below the range: regression may go negative
            pivots=(0, 1),
            alpha=0.5,
        )
        assert estimate.combined >= 0.0


class TestAlphaCalibrator:
    def test_initial_alpha(self):
        assert AlphaCalibrator().alpha == 0.5

    def test_moves_toward_better_estimator(self):
        """When the regression is consistently right and the NN wrong,
        α should fall (weight shifts to the regression)."""
        calibrator = AlphaCalibrator()
        rng = np.random.default_rng(0)
        for _ in range(20):
            actual = rng.uniform(50, 100)
            calibrator.observe(
                nn_estimate=actual * 0.3, regression_estimate=actual, actual=actual
            )
        assert calibrator.recalibrate() < 0.2

    def test_moves_toward_nn_when_nn_is_right(self):
        calibrator = AlphaCalibrator()
        rng = np.random.default_rng(1)
        for _ in range(20):
            actual = rng.uniform(50, 100)
            calibrator.observe(
                nn_estimate=actual, regression_estimate=actual * 2, actual=actual
            )
        assert calibrator.recalibrate() > 0.8

    def test_optimal_alpha_closed_form(self):
        """With actual = 0.7·nn + 0.3·reg exactly, α* = 0.7."""
        calibrator = AlphaCalibrator()
        rng = np.random.default_rng(2)
        for _ in range(30):
            nn = rng.uniform(10, 100)
            reg = rng.uniform(10, 100)
            calibrator.observe(nn, reg, 0.7 * nn + 0.3 * reg)
        assert calibrator.recalibrate() == pytest.approx(0.7, abs=0.01)

    def test_clipping(self):
        calibrator = AlphaCalibrator(min_alpha=0.1, max_alpha=0.9)
        for _ in range(5):
            calibrator.observe(nn_estimate=100, regression_estimate=1, actual=1000)
        assert calibrator.recalibrate() == 0.9

    def test_no_observations_keeps_alpha(self):
        calibrator = AlphaCalibrator()
        assert calibrator.recalibrate() == 0.5

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            AlphaCalibrator(initial_alpha=0.0)
        with pytest.raises(ConfigurationError):
            AlphaCalibrator(min_alpha=0.9, max_alpha=0.1)


class TestRemedyValidation:
    def test_k_neighbors_minimum(self):
        with pytest.raises(ConfigurationError):
            OnlineRemedy(k_neighbors=1)
