"""Tests for the blackbox RDBMS simulator."""

import pytest

from repro.engines import PrimitiveKind, PrimitiveQuery, RdbmsEngine
from repro.engines.rdbms import RdbmsTuning
from repro.exceptions import UnsupportedOperationError
from repro.sql.parser import parse_select

GIB = 1024**3


@pytest.fixture()
def rdbms(small_corpus):
    engine = RdbmsEngine(seed=0, tuning=RdbmsTuning(noise_sigma=0.0))
    for spec in small_corpus:
        engine.load_table(spec.with_location("rdbms"))
    return engine


class TestExecution:
    def test_scan(self, rdbms):
        result = rdbms.execute(parse_select("SELECT * FROM t1000000_100"))
        assert result.algorithm == "seq_scan"
        assert result.output_rows == 1_000_000
        assert result.elapsed_seconds > 0

    def test_small_join_uses_hash_join(self, rdbms):
        result = rdbms.execute(
            parse_select(
                "SELECT * FROM t1000000_100 r JOIN t10000_100 s ON r.a1 = s.a1"
            )
        )
        assert result.algorithm == "hash_join"
        assert result.output_rows == 10_000

    def test_large_join_switches_algorithm(self, small_corpus):
        tight = RdbmsEngine(
            seed=0,
            tuning=RdbmsTuning(noise_sigma=0.0, work_mem=1024),  # 1 KiB
        )
        for spec in small_corpus:
            tight.load_table(spec.with_location("rdbms"))
        result = tight.execute(
            parse_select(
                "SELECT * FROM t8000000_100 r JOIN t1000000_1000 s ON r.a1 = s.a1"
            )
        )
        assert result.algorithm == "merge_join"

    def test_aggregate(self, rdbms):
        result = rdbms.execute(
            parse_select("SELECT SUM(a1) FROM t1000000_100 GROUP BY a5")
        )
        assert result.algorithm == "sort_aggregate"
        assert result.output_rows == 200_000

    def test_buffer_pool_discount(self, rdbms):
        """Tables under the buffer-pool size scan without the disk term."""
        cached = rdbms.execute(parse_select("SELECT * FROM t10000_40"))
        spec_bytes = 10_000 * 40
        assert spec_bytes < rdbms.tuning.buffer_pool
        # CPU-only cost: ~0.45us x 1e4 rows = tiny
        assert cached.elapsed_seconds < 0.2

    def test_determinism(self, small_corpus):
        def run():
            engine = RdbmsEngine(seed=5)
            for spec in small_corpus:
                engine.load_table(spec.with_location("rdbms"))
            return engine.execute(
                parse_select("SELECT SUM(a1) FROM t1000000_100 GROUP BY a5")
            ).elapsed_seconds

        assert run() == run()


class TestBlackboxSurface:
    def test_primitive_queries_rejected(self, rdbms):
        """A true blackbox exposes no measurement surface (§3's premise)."""
        with pytest.raises(UnsupportedOperationError):
            rdbms.execute_primitive(
                PrimitiveQuery(PrimitiveKind.READ_DFS, 1000, 100)
            )
