"""HTTP observability server: endpoint routing and content types,
concurrent scrapes, the firing→resolved trend-alert loop over a manual
clock, bounded request logging, and clean lifecycle semantics."""

import json
import threading
import urllib.error
import urllib.request

import pytest

from repro import obs
from repro.obs.metrics import MetricsRegistry
from repro.obs.server import REQUEST_LOG_LIMIT, ObsServer
from repro.obs.timeseries import ManualClock


def get(url, timeout=5.0):
    """(status, content_type, body) — errors surface as their status."""
    try:
        with urllib.request.urlopen(url, timeout=timeout) as response:
            return (
                response.status,
                response.headers.get("Content-Type", ""),
                response.read().decode("utf-8"),
            )
    except urllib.error.HTTPError as error:
        return (
            error.code,
            error.headers.get("Content-Type", ""),
            error.read().decode("utf-8"),
        )


@pytest.fixture()
def clock():
    return ManualClock()


@pytest.fixture()
def obs_state(clock):
    """Fresh process-wide registry/ledger/timeseries, restored on exit."""
    registry = MetricsRegistry()
    previous_registry = obs.set_registry(registry)
    previous_ledger = obs.set_ledger(obs.AccuracyLedger())
    previous_timeseries = obs.set_timeseries(None)
    aggregator = obs.enable_timeseries(
        width=10.0, retention=50, clock=clock, registry=registry
    )
    yield registry, aggregator
    obs.set_timeseries(previous_timeseries)
    obs.set_ledger(previous_ledger)
    obs.set_registry(previous_registry)


@pytest.fixture()
def server(obs_state):
    with ObsServer(port=0) as running:
        yield running


class TestLifecycle:
    def test_start_binds_ephemeral_port_and_stop_joins(self, obs_state):
        server = ObsServer(port=0)
        assert not server.running
        server.start()
        try:
            assert server.running
            assert server.port != 0
            assert server.url == f"http://127.0.0.1:{server.port}"
        finally:
            server.stop()
        assert not server.running

    def test_double_start_raises(self, obs_state):
        server = ObsServer(port=0).start()
        try:
            with pytest.raises(RuntimeError):
                server.start()
        finally:
            server.stop()

    def test_context_manager_serves_and_stops(self, obs_state):
        with ObsServer(port=0) as server:
            status, _, _ = get(f"{server.url}/health")
            assert status == 200
            url = server.url
        with pytest.raises(urllib.error.URLError):
            get(f"{url}/health", timeout=0.5)

    def test_repr_names_state(self, obs_state):
        server = ObsServer(port=0)
        assert "stopped" in repr(server)
        with server:
            assert "running" in repr(server)


class TestEndpoints:
    def test_metrics_is_prometheus_text(self, server, obs_state):
        registry, _ = obs_state
        registry.counter("federation.runs").inc(3)
        status, content_type, body = get(f"{server.url}/metrics")
        assert status == 200
        assert content_type.startswith("text/plain")
        assert "repro_federation_runs 3.0" in body

    def test_metrics_bytes_are_deterministic(self, server, obs_state):
        registry, _ = obs_state
        registry.counter("b").inc()
        registry.counter("a").inc()
        first = get(f"{server.url}/metrics")[2]
        second = get(f"{server.url}/metrics")[2]
        assert first == second
        assert first.index("repro_a ") < first.index("repro_b ")

    def test_metrics_json_round_trips(self, server, obs_state):
        registry, _ = obs_state
        registry.gauge("alpha").set(0.59)
        status, content_type, body = get(f"{server.url}/metrics.json")
        assert status == 200
        assert content_type.startswith("application/json")
        snapshot = json.loads(body)
        assert snapshot["metrics"]["alpha"]["value"] == 0.59

    def test_health_reports_worst_grade(self, server):
        status, _, body = get(f"{server.url}/health")
        assert status == 200
        payload = json.loads(body)
        assert set(payload) == {"systems", "worst"}

    def test_alerts_returns_report_json(self, server):
        status, _, body = get(f"{server.url}/alerts")
        assert status == 200
        report = json.loads(body)
        assert "alerts" in report

    def test_timeseries_serves_the_ring(self, server, obs_state, clock):
        registry, aggregator = obs_state
        registry.counter("c").inc(2.0)
        clock.advance(10.0)
        status, _, body = get(f"{server.url}/timeseries")
        assert status == 200
        snapshot = json.loads(body)
        assert snapshot["closed"] == 1
        assert snapshot["windows"][0]["counters"] == {"c": 2.0}

    def test_dashboard_is_html_with_windows_section(
        self, server, obs_state, clock
    ):
        registry, _ = obs_state
        registry.counter("federation.runs").inc()
        clock.advance(10.0)
        status, content_type, body = get(f"{server.url}/dashboard")
        assert status == 200
        assert content_type.startswith("text/html")
        assert "<html" in body
        assert "Windowed telemetry" in body
        assert "federation.runs" in body

    def test_root_serves_the_dashboard_too(self, server):
        status, content_type, _ = get(f"{server.url}/")
        assert status == 200
        assert content_type.startswith("text/html")

    def test_unknown_path_is_json_404(self, server):
        status, content_type, body = get(f"{server.url}/nope")
        assert status == 404
        assert content_type.startswith("application/json")
        assert "no such endpoint" in json.loads(body)["error"]

    def test_trailing_slash_and_query_string_are_tolerated(self, server):
        assert get(f"{server.url}/health/")[0] == 200
        assert get(f"{server.url}/metrics?x=1")[0] == 200

    def test_render_error_returns_500_not_a_dead_server(self, obs_state):
        def broken_observe():
            raise RuntimeError("observation exploded")

        with ObsServer(port=0, observe=broken_observe) as server:
            status, _, body = get(f"{server.url}/health")
            assert status == 500
            assert "observation exploded" in json.loads(body)["error"]
            # The server survives the failed scrape.
            assert get(f"{server.url}/metrics")[0] == 200


class TestProfileEndpoints:
    @pytest.fixture()
    def sampler(self):
        from repro.obs.journal import NOOP_JOURNAL
        from repro.obs.sampling import StackSampler, set_stack_sampler

        sampler = StackSampler(
            hz=100.0, window_seconds=10.0, journal=NOOP_JOURNAL
        )
        sampler.record_sample(0.1, "serve", ("repro.serve.loop",))
        sampler.record_sample(0.2, "serve", ("repro.serve.loop",))
        sampler.record_sample(10.1, "main", ())
        previous = set_stack_sampler(sampler)
        yield sampler
        set_stack_sampler(previous)

    def test_profile_json_when_off(self, server):
        from repro.obs.sampling import set_stack_sampler

        previous = set_stack_sampler(None)
        try:
            status, content_type, body = get(f"{server.url}/profile")
        finally:
            set_stack_sampler(previous)
        assert status == 200
        assert content_type.startswith("application/json")
        payload = json.loads(body)
        assert payload["enabled"] is False
        assert payload["hz"] == 0.0
        assert payload["windows"] == []

    def test_profile_json_serves_sampler_windows(self, server, sampler):
        status, _, body = get(f"{server.url}/profile")
        assert status == 200
        payload = json.loads(body)
        assert payload["enabled"] is True
        assert payload["hz"] == 100.0
        assert payload["sampled"] == 3
        # one closed window plus the open one frozen in place
        assert len(payload["windows"]) == 2
        assert payload["windows"][0]["stacks"] == {
            "[serve];repro.serve.loop": 2
        }

    def test_profile_html_renders_flamegraph(self, server, sampler):
        status, content_type, body = get(f"{server.url}/profile.html")
        assert status == 200
        assert content_type.startswith("text/html")
        assert "sampled stacks" in body
        assert "repro.serve.loop" in body
        assert "100 Hz over 1 closed windows" in body

    def test_profile_html_when_off_says_so(self, server):
        from repro.obs.sampling import set_stack_sampler

        previous = set_stack_sampler(None)
        try:
            status, _, body = get(f"{server.url}/profile.html")
        finally:
            set_stack_sampler(previous)
        assert status == 200
        assert "profiling off" in body
        assert "no samples" in body

    def test_dashboard_shows_profiling_section(self, server, sampler):
        status, _, body = get(f"{server.url}/dashboard")
        assert status == 200
        assert "Continuous profiling" in body
        assert 'class="flame"' in body


class TestConcurrency:
    def test_parallel_scrapes_all_succeed(self, server, obs_state):
        registry, _ = obs_state
        registry.counter("c").inc()
        paths = ["/metrics", "/metrics.json", "/health", "/alerts",
                 "/timeseries", "/dashboard"] * 4
        statuses = [None] * len(paths)

        def fetch(index, path):
            statuses[index] = get(f"{server.url}{path}")[0]

        workers = [
            threading.Thread(target=fetch, args=(index, path))
            for index, path in enumerate(paths)
        ]
        for worker in workers:
            worker.start()
        for worker in workers:
            worker.join()
        assert statuses == [200] * len(paths)


class TestRequestLog:
    def test_requests_are_logged_and_bounded(self, server):
        for _ in range(3):
            get(f"{server.url}/health")
        assert len(server.request_log) >= 3
        assert any("/health" in line for line in server.request_log)
        assert server.request_log.maxlen == REQUEST_LOG_LIMIT


class TestTrendAlertLoop:
    """The acceptance loop: a sustained p99 regression fires the trend
    rule through a real HTTP scrape cycle; recovery resolves it."""

    def feed_window(self, registry, clock, seconds, observations=8):
        for _ in range(observations):
            registry.histogram(
                "costing.estimate_wall_seconds",
                buckets=obs.WALL_SECONDS_BUCKETS,
            ).observe(seconds)
        clock.advance(10.0)

    def scrape(self, server):
        report = json.loads(get(f"{server.url}/alerts")[2])
        return (
            {a["rule"] for a in report["alerts"] if a["firing"]},
            set(report["fired"]),
            set(report["resolved"]),
        )

    def test_sustained_regression_fires_then_resolves(
        self, server, obs_state, clock
    ):
        registry, _ = obs_state
        # Healthy baseline: fast estimates, rule stays quiet.
        for _ in range(5):
            self.feed_window(registry, clock, seconds=0.001)
        active, fired, _ = self.scrape(server)
        assert "trend-estimate-latency" not in active
        assert not fired

        # Sustained regression: five slow windows push the 5-window
        # p99 average over the 50ms threshold.
        for _ in range(5):
            self.feed_window(registry, clock, seconds=0.2)
        active, fired, _ = self.scrape(server)
        assert "trend-estimate-latency" in active
        assert "trend-estimate-latency" in fired

        # Recovery: fast windows wash the regression out of the span.
        for _ in range(6):
            self.feed_window(registry, clock, seconds=0.001)
        active, _, resolved = self.scrape(server)
        assert "trend-estimate-latency" not in active
        assert "trend-estimate-latency" in resolved


class TestForensicsEndpoints:
    """/tenants, /flight, and /incidents: the incident-forensics plane."""

    @pytest.fixture()
    def forensics(self):
        from repro.obs.tail import QueryOutcome, TailDecision

        previous_ledger = obs.set_tenant_ledger(obs.TenantLedger())
        recorder = obs.FlightRecorder()
        previous_recorder = obs.set_flight_recorder(recorder)
        recorder.record(
            QueryOutcome(
                query_id="q-000001",
                tenant="analytics",
                wall_seconds=2.0,
                max_q_error=4.0,
            ),
            TailDecision(keep=True, reasons=("q_error",)),
        )
        obs.get_tenant_ledger().record_estimate("analytics", 3.0)
        yield recorder
        obs.set_flight_recorder(previous_recorder)
        obs.set_tenant_ledger(previous_ledger)

    def test_tenants_endpoint_serves_ledger_snapshot(self, server, forensics):
        status, content_type, body = get(f"{server.url}/tenants")
        assert status == 200
        assert content_type.startswith("application/json")
        snapshot = json.loads(body)
        assert snapshot["analytics"]["estimated_seconds"] == 3.0

    def test_flight_endpoint_serves_recorder_snapshot(self, server, forensics):
        status, _, body = get(f"{server.url}/flight")
        assert status == 200
        snapshot = json.loads(body)
        assert snapshot["enabled"] is True
        assert snapshot["records"][0]["query_id"] == "q-000001"

    def test_flight_endpoint_reports_disabled_without_recorder(self, server):
        previous = obs.set_flight_recorder(None)
        try:
            status, _, body = get(f"{server.url}/flight")
        finally:
            obs.set_flight_recorder(previous)
        assert status == 200
        snapshot = json.loads(body)
        assert snapshot["enabled"] is False
        assert snapshot["records"] == []

    def test_incident_list_and_single_bundle_fetch(self, server, forensics):
        bundle = forensics.trigger_incident("drift", system="hive")
        status, _, body = get(f"{server.url}/incidents")
        assert status == 200
        listed = json.loads(body)
        assert [entry["name"] for entry in listed] == [bundle.name]
        status, _, body = get(f"{server.url}/incidents/{bundle.name}")
        assert status == 200
        fetched = json.loads(body)
        assert fetched == bundle.to_dict()

    def test_unknown_incident_is_json_404_and_keeps_serving(
        self, server, forensics
    ):
        status, content_type, body = get(f"{server.url}/incidents/nope")
        assert status == 404
        assert content_type.startswith("application/json")
        assert json.loads(body)["error"]
        # The server survives the miss.
        status, _, _ = get(f"{server.url}/health")
        assert status == 200

    def test_dashboard_renders_tenant_section(self, server, forensics):
        status, _, body = get(f"{server.url}/dashboard")
        assert status == 200
        assert "Tenants" in body
        assert "analytics" in body


class TestHandlerRegistration:
    """The one mounting API: custom routes share the port with the
    default observability endpoints (single-port deployments)."""

    def test_register_custom_get_route(self, obs_state):
        from repro.obs.server import HttpResponse

        server = ObsServer(port=0)
        server.register(
            "/custom",
            lambda request: HttpResponse(
                200, "application/json; charset=utf-8", '{"ok":true}'
            ),
        )
        with server:
            status, content_type, body = get(f"{server.url}/custom")
        assert status == 200
        assert content_type.startswith("application/json")
        assert json.loads(body) == {"ok": True}

    def test_post_route_receives_body_and_headers(self, obs_state):
        from repro.obs.server import json_response

        seen = {}

        def handler(request):
            seen["payload"] = request.json()
            seen["tenant"] = request.header("X-Repro-Tenant")
            return json_response({"echo": request.json()})

        server = ObsServer(port=0).register("/echo", handler, method="POST")
        with server:
            request = urllib.request.Request(
                f"{server.url}/echo",
                data=b'{"a": 1}',
                headers={"X-Repro-Tenant": "etl"},
                method="POST",
            )
            with urllib.request.urlopen(request, timeout=5.0) as response:
                assert response.status == 200
                assert json.loads(response.read()) == {"echo": {"a": 1}}
        assert seen == {"payload": {"a": 1}, "tenant": "etl"}

    def test_wrong_method_is_405_with_allow(self, obs_state):
        from repro.obs.server import json_response

        server = ObsServer(port=0).register(
            "/only-post", lambda request: json_response({}), method="POST"
        )
        with server:
            status, _, body = get(f"{server.url}/only-post")
        assert status == 405
        assert json.loads(body)["allow"] == ["POST"]

    def test_registration_normalizes_trailing_slash(self, obs_state):
        from repro.obs.server import json_response

        server = ObsServer(port=0).register(
            "/padded/", lambda request: json_response({"hit": True})
        )
        with server:
            assert get(f"{server.url}/padded")[0] == 200
            assert get(f"{server.url}/padded/")[0] == 200

    def test_default_routes_are_replaceable(self, obs_state):
        from repro.obs.server import json_response

        server = ObsServer(port=0)
        server.register("/health", lambda request: json_response({"ok": 1}))
        with server:
            status, _, body = get(f"{server.url}/health")
        assert status == 200
        assert json.loads(body) == {"ok": 1}

    def test_invalid_registrations_rejected(self, obs_state):
        from repro.obs.server import json_response

        server = ObsServer(port=0)
        with pytest.raises(ValueError):
            server.register("no-slash", lambda request: json_response({}))
        with pytest.raises(ValueError):
            server.register(
                "/x", lambda request: json_response({}), method="DELETE"
            )

    def test_routes_listing_includes_defaults_and_prefixes(self, obs_state):
        routes = ObsServer(port=0).routes
        assert ("GET", "/metrics") in routes
        assert ("GET", "/incidents/*") in routes

    def test_handler_exception_maps_to_500(self, obs_state):
        def broken(request):
            raise RuntimeError("handler bug")

        server = ObsServer(port=0).register("/broken", broken)
        with server:
            status, content_type, body = get(f"{server.url}/broken")
            assert status == 500
            assert content_type.startswith("application/json")
            assert "handler bug" in json.loads(body)["error"]
            # The server survives its handlers' bugs.
            assert get(f"{server.url}/health")[0] == 200
