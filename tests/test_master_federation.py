"""Tests for the IntelliSphere federation facade."""

import pytest

from repro.core import (
    ClusterInfo,
    RemoteSystemProfile,
    SubOpTrainer,
)
from repro.data import TableSpec, build_paper_corpus
from repro.data.schema import paper_schema
from repro.engines import HiveEngine
from repro.exceptions import CatalogError, ConfigurationError
from repro.master.federation import IntelliSphere
from repro.master.querygrid import TERADATA


@pytest.fixture(scope="module")
def sphere():
    sphere = IntelliSphere(seed=0)
    hive = HiveEngine(seed=0, noise_sigma=0.0)
    info = ClusterInfo(
        num_data_nodes=3, cores_per_node=2, dfs_block_size=128 * 1024 * 1024
    )
    sphere.add_remote_system(hive, RemoteSystemProfile(name="hive", cluster=info))
    corpus = build_paper_corpus(
        row_counts=(10_000, 1_000_000, 8_000_000), row_sizes=(40, 100)
    )
    for spec in corpus:
        sphere.add_table(spec)
    sphere.add_table(
        TableSpec(
            name="td_users",
            schema=paper_schema(100),
            num_rows=50_000,
            location=TERADATA,
        )
    )
    sphere.costing.train_sub_op(
        "hive", SubOpTrainer(record_counts=(1_000_000, 2_000_000))
    )
    return sphere


class TestRegistration:
    def test_reserved_master_name(self):
        sphere = IntelliSphere()
        engine = HiveEngine(name=TERADATA)
        info = ClusterInfo(
            num_data_nodes=1, cores_per_node=1, dfs_block_size=1024
        )
        with pytest.raises(ConfigurationError):
            sphere.add_remote_system(
                engine, RemoteSystemProfile(name=TERADATA, cluster=info)
            )

    def test_table_on_unregistered_system_rejected(self):
        sphere = IntelliSphere()
        spec = TableSpec(
            name="x", schema=paper_schema(40), num_rows=1, location="ghost"
        )
        with pytest.raises(CatalogError):
            sphere.add_table(spec)

    def test_tables_mirrored_to_master(self, sphere):
        assert sphere.teradata_engine.has_table("t10000_40")
        assert sphere.catalog.table("t10000_40").location == "hive"

    def test_remote_names(self, sphere):
        assert sphere.remote_system_names == ("hive",)


class TestExplainAndRun:
    def test_explain_sql_string(self, sphere):
        placement = sphere.explain(
            "SELECT r.a1 FROM t8000000_100 r JOIN t1000000_100 s ON r.a1 = s.a1"
        )
        assert placement.best.seconds > 0
        assert placement.alternatives

    def test_run_produces_observed_times(self, sphere):
        result = sphere.run(
            "SELECT r.a1 FROM t8000000_100 r JOIN t1000000_100 s ON r.a1 = s.a1"
        )
        assert result.observed_seconds > 0
        assert result.estimated_seconds > 0
        # The estimate should be in the right ballpark of observation.
        assert result.estimated_seconds == pytest.approx(
            result.observed_seconds, rel=0.5
        )

    def test_run_step_accounting(self, sphere):
        result = sphere.run("SELECT SUM(a1) FROM t1000000_100 GROUP BY a100")
        total = sum(s.observed_seconds for s in result.steps)
        assert total == pytest.approx(result.observed_seconds)

    def test_teradata_placed_query_runs_on_master_engine(self, sphere):
        result = sphere.run(
            "SELECT r.a1 FROM t10000_40 r JOIN td_users s ON r.a1 = s.a1"
        )
        execute_steps = [
            s for s in result.steps if s.description.startswith("join")
        ]
        assert execute_steps
        assert execute_steps[0].system == TERADATA


class TestQueryContextPropagation:
    """The federation layer mints a query-scoped trace context; every
    journal event and exemplar the estimate path emits must carry it."""

    def test_run_opens_one_context_per_query(self, sphere):
        from repro import obs

        registry = obs.MetricsRegistry()
        previous = obs.set_registry(registry)
        obs.reset_query_ids()
        try:
            sphere.run("SELECT a1 FROM t10000_40 WHERE a1 < 100")
            sphere.run("SELECT a1 FROM t10000_40 WHERE a1 < 200")
            assert registry.counter("context.queries").value == 2.0
        finally:
            obs.set_registry(previous)

    def test_journal_events_carry_federation_query_id(self, sphere, tmp_path):
        from repro import obs

        journal = obs.EventJournal(tmp_path / "fed.jsonl")
        previous_journal = obs.set_journal(journal)
        obs.reset_query_ids()
        try:
            sphere.run(
                "SELECT r.a1 FROM t1000000_100 r JOIN t10000_40 s "
                "ON r.a1 = s.a1"
            )
            journal.close()
        finally:
            obs.set_journal(previous_journal)
        events = obs.read_journal(tmp_path / "fed.jsonl").events
        estimates = [e for e in events if e.type == "estimate"]
        assert estimates
        query_ids = {e.payload.get("query_id") for e in estimates}
        # Every estimate of the query shares the single federation id.
        assert query_ids == {"q-000001"}

    def test_estimates_feed_the_exemplar_store(self, sphere):
        from repro import obs
        from repro.obs.context import ExemplarStore

        previous_store = obs.set_exemplar_store(ExemplarStore())
        obs.reset_query_ids()
        try:
            sphere.run("SELECT a1 FROM t10000_40 WHERE a1 < 100")
            recent = obs.get_exemplar_store().recent("hive")
            assert "q-000001" in recent
        finally:
            obs.set_exemplar_store(previous_store)

    def test_explain_and_run_mint_distinct_ids(self, sphere):
        from repro import obs
        from repro.obs.context import ExemplarStore

        previous_store = obs.set_exemplar_store(ExemplarStore())
        obs.reset_query_ids()
        try:
            sphere.explain("SELECT a1 FROM t10000_40 WHERE a1 < 100")
            sphere.run("SELECT a1 FROM t10000_40 WHERE a1 < 100")
            recent = obs.get_exemplar_store().recent("hive")
            assert {"q-000001", "q-000002"} <= set(recent)
        finally:
            obs.set_exemplar_store(previous_store)


class TestCapabilityRestrictedSystems:
    def test_no_join_system_forces_master_placement(self):
        """§2: a remote system may not support joins; the optimizer must
        route the join elsewhere even though the data lives there."""
        from repro.engines.base import EngineCapabilities

        sphere = IntelliSphere(seed=0)
        info = ClusterInfo(
            num_data_nodes=3, cores_per_node=2, dfs_block_size=128 * 1024 * 1024
        )
        limited = HiveEngine(seed=0, noise_sigma=0.0)
        limited.capabilities = EngineCapabilities(join=False)
        sphere.add_remote_system(
            limited, RemoteSystemProfile(name="hive", cluster=info)
        )
        for spec in build_paper_corpus(
            row_counts=(100_000, 1_000_000), row_sizes=(100,)
        ):
            sphere.add_table(spec)
        sphere.costing.train_sub_op(
            "hive", SubOpTrainer(record_counts=(1_000_000, 2_000_000))
        )
        placement = sphere.explain(
            "SELECT r.a1 FROM t1000000_100 r JOIN t100000_100 s ON r.a1 = s.a1"
        )
        execute_steps = [s for s in placement.best.steps if s.kind == "execute"]
        assert all(step.system == TERADATA for step in execute_steps)
        # Only the master appears among the alternatives for the join.
        assert {opt.location for opt in placement.alternatives} == {TERADATA}


class TestTelemetryPlane:
    def test_run_rolls_the_window_ring(self, sphere):
        from repro import obs
        from repro.obs.timeseries import ManualClock

        previous = obs.set_timeseries(None)
        try:
            clock = ManualClock()
            aggregator = obs.enable_timeseries(width=10.0, clock=clock)
            sphere.run("SELECT * FROM td_users")
            clock.advance(10.0)
            # The facade flushes the ring after each query: the window
            # that crossed its boundary closes without any further
            # instrument traffic.
            sphere.run("SELECT * FROM td_users")
            windows = aggregator.windows()
            assert len(windows) >= 1
            assert windows[0].counters.get("federation.runs") == 1.0
        finally:
            obs.disable_timeseries()
            obs.set_timeseries(previous)


class TestTenantPropagation:
    """``run(..., tenant=)`` / ``explain(..., tenant=)`` attribute the
    query to the tenant ledger and stamp journal payloads."""

    def test_run_tenant_feeds_the_tenant_ledger(self, sphere):
        from repro import obs

        previous_ledger = obs.set_tenant_ledger(obs.TenantLedger())
        obs.reset_query_ids()
        sphere.costing.invalidate_cache()
        try:
            sphere.run("SELECT a1 FROM t10000_40 WHERE a1 < 311", tenant="etl")
            snapshot = obs.get_tenant_ledger().snapshot()
        finally:
            obs.set_tenant_ledger(previous_ledger)
        stats = snapshot["etl"]
        assert stats["queries"] == 1
        assert stats["estimates"] > 0
        assert stats["wall_seconds"] > 0.0

    def test_explain_tenant_attributes_estimates_without_traffic_error(
        self, sphere
    ):
        from repro import obs

        previous_ledger = obs.set_tenant_ledger(obs.TenantLedger())
        obs.reset_query_ids()
        sphere.costing.invalidate_cache()
        try:
            sphere.explain(
                "SELECT a1 FROM t10000_40 WHERE a1 < 312", tenant="adhoc"
            )
            snapshot = obs.get_tenant_ledger().snapshot()
        finally:
            obs.set_tenant_ledger(previous_ledger)
        stats = snapshot["adhoc"]
        assert stats["queries"] == 1
        assert stats["errors"] == 0
        assert stats["estimates"] > 0

    def test_journal_estimates_carry_the_tenant(self, sphere, tmp_path):
        from repro import obs

        journal = obs.EventJournal(tmp_path / "tenant.jsonl")
        previous_journal = obs.set_journal(journal)
        previous_ledger = obs.set_tenant_ledger(obs.TenantLedger())
        obs.reset_query_ids()
        sphere.costing.invalidate_cache()
        try:
            sphere.run(
                "SELECT a1 FROM t10000_40 WHERE a1 < 313", tenant="analytics"
            )
            journal.close()
        finally:
            obs.set_tenant_ledger(previous_ledger)
            obs.set_journal(previous_journal)
        events = obs.read_journal(tmp_path / "tenant.jsonl").events
        estimates = [e for e in events if e.type == "estimate"]
        assert estimates
        assert {e.payload.get("tenant") for e in estimates} == {"analytics"}

    def test_untenanted_run_stays_unattributed(self, sphere):
        from repro import obs

        previous_ledger = obs.set_tenant_ledger(obs.TenantLedger())
        obs.reset_query_ids()
        sphere.costing.invalidate_cache()
        try:
            sphere.run("SELECT a1 FROM t10000_40 WHERE a1 < 100")
            snapshot = obs.get_tenant_ledger().snapshot()
        finally:
            obs.set_tenant_ledger(previous_ledger)
        assert snapshot == {}
