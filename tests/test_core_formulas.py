"""Tests for the analytic cost formulas (§4, Fig. 6)."""

import pytest

from repro.core.formulas import (
    AGGREGATE_FORMULAS,
    BroadcastJoinFormula,
    BucketMapJoinFormula,
    CartesianProductJoinFormula,
    HashAggregateFormula,
    HIVE_JOIN_FORMULAS,
    ScanCostFormula,
    ShuffleJoinFormula,
    SkewJoinFormula,
    SortAggregateFormula,
    SPARK_JOIN_FORMULAS,
)
from repro.core.operators import (
    AggregateOperatorStats,
    JoinOperatorStats,
    ScanOperatorStats,
)
from repro.core.subop_model import ClusterInfo, SubOpTrainer
from repro.data import build_paper_corpus
from repro.engines import HiveEngine


@pytest.fixture(scope="module")
def subops():
    """Real trained sub-op models over the noise-free engine."""
    engine = HiveEngine(seed=0, noise_sigma=0.0)
    for spec in build_paper_corpus(row_counts=(10_000,), row_sizes=(40,)):
        engine.load_table(spec)
    cluster = ClusterInfo(
        num_data_nodes=3, cores_per_node=2, dfs_block_size=128 * 1024 * 1024
    )
    return SubOpTrainer().train(engine, cluster).model_set


@pytest.fixture(scope="module")
def cluster():
    return ClusterInfo(
        num_data_nodes=3, cores_per_node=2, dfs_block_size=128 * 1024 * 1024
    )


def join_stats(r_rows=1_000_000, s_rows=10_000, size=100, out=None, **kw):
    return JoinOperatorStats(
        row_size_r=size,
        num_rows_r=r_rows,
        row_size_s=size,
        num_rows_s=s_rows,
        projected_size_r=size,
        projected_size_s=size,
        num_output_rows=out if out is not None else s_rows,
        **kw,
    )


class TestBroadcastJoinFormula:
    def test_monotone_in_big_side(self, subops, cluster):
        formula = BroadcastJoinFormula()
        small = formula.estimate_seconds(join_stats(r_rows=1_000_000), subops, cluster)
        large = formula.estimate_seconds(join_stats(r_rows=8_000_000), subops, cluster)
        assert large > small

    def test_monotone_in_small_side(self, subops, cluster):
        formula = BroadcastJoinFormula()
        a = formula.estimate_seconds(join_stats(s_rows=10_000), subops, cluster)
        b = formula.estimate_seconds(join_stats(s_rows=100_000), subops, cluster)
        assert b > a

    def test_includes_job_overhead(self, subops, cluster):
        formula = BroadcastJoinFormula()
        tiny = formula.estimate_seconds(
            join_stats(r_rows=10, s_rows=10, out=10), subops, cluster
        )
        assert tiny >= subops.job_overhead_seconds

    def test_renaming_for_spark(self):
        spark_variant = BroadcastJoinFormula(algorithm="broadcast_hash_join")
        assert spark_variant.algorithm == "broadcast_hash_join"


class TestShuffleJoinFormula:
    def test_costs_both_sides(self, subops, cluster):
        formula = ShuffleJoinFormula()
        balanced = formula.estimate_seconds(
            join_stats(r_rows=4_000_000, s_rows=4_000_000), subops, cluster
        )
        lopsided = formula.estimate_seconds(
            join_stats(r_rows=4_000_000, s_rows=10_000), subops, cluster
        )
        assert balanced > lopsided

    def test_broadcast_cheaper_for_tiny_small_side(self, subops, cluster):
        stats = join_stats(r_rows=8_000_000, s_rows=1_000)
        shuffle = ShuffleJoinFormula().estimate_seconds(stats, subops, cluster)
        broadcast = BroadcastJoinFormula().estimate_seconds(stats, subops, cluster)
        assert broadcast < shuffle


class TestOtherJoins:
    def test_skew_exceeds_shuffle(self, subops, cluster):
        stats = join_stats(skewed=True)
        assert SkewJoinFormula().estimate_seconds(
            stats, subops, cluster
        ) > ShuffleJoinFormula().estimate_seconds(stats, subops, cluster)

    def test_bucket_map_cheaper_than_broadcast_for_large_s(self, subops, cluster):
        stats = join_stats(r_rows=8_000_000, s_rows=4_000_000)
        bucket = BucketMapJoinFormula().estimate_seconds(stats, subops, cluster)
        broadcast = BroadcastJoinFormula().estimate_seconds(stats, subops, cluster)
        assert bucket < broadcast

    def test_cartesian_dominates_everything(self, subops, cluster):
        stats = join_stats(r_rows=100_000, s_rows=10_000, is_equi=False)
        cartesian = CartesianProductJoinFormula().estimate_seconds(
            stats, subops, cluster
        )
        shuffle = ShuffleJoinFormula().estimate_seconds(stats, subops, cluster)
        assert cartesian > shuffle


class TestAggregateFormulas:
    def test_hash_cheaper_for_few_groups(self, subops, cluster):
        stats = AggregateOperatorStats(
            num_input_rows=4_000_000,
            input_row_size=100,
            num_output_rows=1_000,
            output_row_size=12,
        )
        hash_cost = HashAggregateFormula().estimate_seconds(stats, subops, cluster)
        sort_cost = SortAggregateFormula().estimate_seconds(stats, subops, cluster)
        assert hash_cost < sort_cost

    def test_monotone_in_input(self, subops, cluster):
        def cost(rows):
            stats = AggregateOperatorStats(
                num_input_rows=rows,
                input_row_size=100,
                num_output_rows=1000,
                output_row_size=12,
            )
            return HashAggregateFormula().estimate_seconds(stats, subops, cluster)

        assert cost(8_000_000) > cost(1_000_000)


class TestScanFormula:
    def test_scan_cost_positive_and_monotone(self, subops, cluster):
        def cost(rows):
            stats = ScanOperatorStats(
                num_input_rows=rows,
                input_row_size=100,
                num_output_rows=rows // 10,
                output_row_size=8,
            )
            return ScanCostFormula().estimate_seconds(stats, subops, cluster)

        assert 0 < cost(1_000_000) < cost(8_000_000)


class TestRosters:
    def test_hive_formula_names(self):
        assert [f.algorithm for f in HIVE_JOIN_FORMULAS] == [
            "sort_merge_bucket_join",
            "bucket_map_join",
            "broadcast_join",
            "skew_join",
            "shuffle_join",
        ]

    def test_spark_formula_names(self):
        assert [f.algorithm for f in SPARK_JOIN_FORMULAS] == [
            "broadcast_hash_join",
            "shuffle_hash_join",
            "sort_merge_join",
            "broadcast_nested_loop_join",
            "cartesian_product_join",
        ]

    def test_aggregate_roster(self):
        assert [f.algorithm for f in AGGREGATE_FORMULAS] == [
            "hash_aggregate",
            "sort_aggregate",
        ]
