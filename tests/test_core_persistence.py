"""Tests for costing-profile persistence (JSON round-trips)."""

import json

import numpy as np
import pytest

from repro.core import (
    ClusterInfo,
    CostingApproach,
    LogicalOpModel,
    OperatorKind,
    RemoteSystemProfile,
    SubOpTrainer,
)
from repro.core.persistence import (
    FORMAT_VERSION,
    load_profile,
    logical_model_from_dict,
    logical_model_to_dict,
    profile_from_dict,
    profile_to_dict,
    save_profile,
)
from repro.core.rules import SelectionStrategy
from repro.core.training import TrainingSet
from repro.data import build_paper_corpus
from repro.engines import HiveEngine
from repro.engines.subops import SubOp
from repro.exceptions import ConfigurationError


@pytest.fixture(scope="module")
def trained_profile():
    engine = HiveEngine(seed=0, noise_sigma=0.0)
    for spec in build_paper_corpus(row_counts=(10_000,), row_sizes=(40,)):
        engine.load_table(spec)
    info = ClusterInfo(
        num_data_nodes=3, cores_per_node=2, dfs_block_size=128 * 1024 * 1024
    )
    profile = RemoteSystemProfile(name="hive", cluster=info)
    trainer = SubOpTrainer(record_counts=(1_000_000, 2_000_000))
    profile.costing.subop_result = trainer.train(engine, info)

    model = LogicalOpModel(
        OperatorKind.AGGREGATE, search_topology=False, nn_iterations=800, seed=0
    )
    ts = TrainingSet(model.dimension_names)
    for rows in (1e5, 1e6, 8e6):
        for size in (40, 100, 1000):
            for groups in (rows, rows / 10, rows / 100):
                ts.add((rows, size, groups, 12), 1 + rows * 2e-6 * size / 100)
    model.train(ts)
    # Exercise remedy state so alpha history round-trips too.
    estimate = model.estimate((8e7, 100, 8e5, 12))
    model.record_actual(estimate, 123.0)
    model.recalibrate_alpha()
    profile.costing.logical_models[OperatorKind.AGGREGATE] = model
    return profile


class TestRoundTrip:
    def test_json_serializable(self, trained_profile):
        payload = json.dumps(profile_to_dict(trained_profile))
        assert len(payload) > 1000

    def test_subop_estimates_identical(self, trained_profile):
        restored = profile_from_dict(profile_to_dict(trained_profile))
        original = trained_profile.costing.subop_result.model_set
        loaded = restored.costing.subop_result.model_set
        for op in original.trained_ops:
            if op is SubOp.HASH_BUILD:
                continue
            for size in (40, 250, 1000):
                assert loaded.model(op).per_record_us(size) == pytest.approx(
                    original.model(op).per_record_us(size)
                )
        assert loaded.job_overhead_seconds == pytest.approx(
            original.job_overhead_seconds
        )

    def test_hash_build_round_trip(self, trained_profile):
        restored = profile_from_dict(profile_to_dict(trained_profile))
        original = trained_profile.costing.subop_result.model_set.hash_build
        loaded = restored.costing.subop_result.model_set.hash_build
        assert loaded.workspace_threshold == pytest.approx(
            original.workspace_threshold
        )
        for workspace in (0, int(original.workspace_threshold * 2)):
            assert loaded.per_record_us(500, workspace) == pytest.approx(
                original.per_record_us(500, workspace)
            )

    def test_logical_model_predictions_identical(self, trained_profile):
        original = trained_profile.costing.logical_models[OperatorKind.AGGREGATE]
        restored = logical_model_from_dict(logical_model_to_dict(original))
        rng = np.random.default_rng(0)
        for _ in range(10):
            features = (
                float(rng.uniform(1e5, 8e6)),
                float(rng.choice([40, 100, 1000])),
                float(rng.uniform(1e3, 1e6)),
                12.0,
            )
            assert restored.estimate(features).seconds == pytest.approx(
                original.estimate(features).seconds, rel=1e-9
            )

    def test_remedy_path_round_trips(self, trained_profile):
        """Out-of-range estimation (training set + metadata + alpha) must
        behave identically after a reload."""
        original = trained_profile.costing.logical_models[OperatorKind.AGGREGATE]
        restored = logical_model_from_dict(logical_model_to_dict(original))
        features = (8e7, 100, 8e5, 12)
        a = original.estimate(features)
        b = restored.estimate(features)
        assert b.used_remedy == a.used_remedy
        assert b.seconds == pytest.approx(a.seconds, rel=1e-9)
        assert restored.alpha_calibrator.alpha == original.alpha_calibrator.alpha

    def test_full_profile_fields(self, trained_profile):
        restored = profile_from_dict(profile_to_dict(trained_profile))
        assert restored.name == trained_profile.name
        assert restored.openbox == trained_profile.openbox
        assert restored.approach is trained_profile.approach
        assert restored.cluster == trained_profile.cluster
        assert restored.costing.selection_strategy is SelectionStrategy.PREFERENCE
        restored.build_estimator()  # must be usable immediately

    def test_file_round_trip(self, trained_profile, tmp_path):
        path = tmp_path / "hive.json"
        save_profile(trained_profile, path)
        restored = load_profile(path)
        assert restored.name == "hive"
        assert restored.costing.has_subop_models
        assert restored.costing.has_logical_models


class TestErrors:
    def test_untrained_logical_model_rejected(self):
        model = LogicalOpModel(OperatorKind.JOIN)
        with pytest.raises(ConfigurationError):
            logical_model_to_dict(model)

    def test_bad_version_rejected(self, trained_profile):
        data = profile_to_dict(trained_profile)
        data["format_version"] = FORMAT_VERSION + 99
        with pytest.raises(ConfigurationError):
            profile_from_dict(data)

    def test_missing_file(self, tmp_path):
        with pytest.raises(ConfigurationError):
            load_profile(tmp_path / "nope.json")

    def test_corrupt_file(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("{not json")
        with pytest.raises(ConfigurationError):
            load_profile(path)


class TestOperatorRoutesPersistence:
    def test_routes_round_trip(self, trained_profile):
        trained_profile.costing.operator_routes[OperatorKind.AGGREGATE] = (
            CostingApproach.LOGICAL_OP
        )
        restored = profile_from_dict(profile_to_dict(trained_profile))
        assert restored.costing.operator_routes == {
            OperatorKind.AGGREGATE: CostingApproach.LOGICAL_OP
        }
        hybrid = restored.build_estimator()
        assert (
            hybrid.approach_for(OperatorKind.AGGREGATE)
            is CostingApproach.LOGICAL_OP
        )
