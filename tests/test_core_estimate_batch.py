"""Property tests for the batched estimation path.

The redesign's core contract: ``estimate_batch`` over any mix of
operators returns estimates **bit-identical** to looping ``estimate``
over the same items, for every estimator class and approach — including
out-of-range rows that take the remedy path.
"""

import pytest

from repro.core.estimator import (
    BatchEstimate,
    CostingApproach,
    EstimationRequest,
    HybridEstimator,
    LogicalOpEstimator,
    OperatorEstimate,
    SubOpEstimator,
)
from repro.core.logical_op import LogicalOpModel
from repro.core.operators import (
    AggregateOperatorStats,
    JoinOperatorStats,
    OperatorKind,
    ScanOperatorStats,
    operator_kind_for,
)
from repro.core.rules import JoinAlgorithmSelector, hive_join_algorithms
from repro.core.subop_model import ClusterInfo, SubOpTrainer
from repro.core.training import TrainingSet
from repro.data import build_paper_corpus
from repro.engines import HiveEngine
from repro.exceptions import ConfigurationError, EstimatorUnavailableError


@pytest.fixture(scope="module")
def subop_estimator():
    engine = HiveEngine(seed=0, noise_sigma=0.0)
    for spec in build_paper_corpus(row_counts=(10_000,), row_sizes=(40,)):
        engine.load_table(spec)
    cluster = ClusterInfo(
        num_data_nodes=3, cores_per_node=2, dfs_block_size=128 * 1024 * 1024
    )
    model_set = SubOpTrainer().train(engine, cluster).model_set
    return SubOpEstimator(
        subops=model_set,
        cluster=cluster,
        join_selector=JoinAlgorithmSelector(hive_join_algorithms()),
    )


def _trained_model(kind, make_features, nn_iterations=600):
    model = LogicalOpModel(
        kind, search_topology=False, nn_iterations=nn_iterations, seed=0
    )
    ts = TrainingSet(model.dimension_names)
    for features, label in make_features():
        ts.add(features, label)
    model.train(ts)
    return model


def _agg_rows():
    for rows in (1e5, 1e6, 4e6, 8e6):
        for size in (40, 100, 1000):
            for groups in (rows, rows / 10, rows / 100):
                yield (rows, size, groups, 12), 1 + rows * 2e-6 * (size / 100)


def _scan_rows():
    for rows in (1e5, 1e6, 8e6):
        for size in (40, 100, 1000):
            for sel in (1.0, 0.1):
                yield (rows, size, rows * sel, size), 0.5 + rows * size * 1e-9


@pytest.fixture(scope="module")
def logical_estimator():
    estimator = LogicalOpEstimator()
    estimator.add_model(_trained_model(OperatorKind.AGGREGATE, _agg_rows))
    estimator.add_model(_trained_model(OperatorKind.SCAN, _scan_rows))
    return estimator


@pytest.fixture(scope="module")
def hybrid(subop_estimator, logical_estimator):
    hybrid = HybridEstimator(
        sub_op=subop_estimator, logical_op=logical_estimator
    )
    hybrid.route(OperatorKind.AGGREGATE, CostingApproach.LOGICAL_OP)
    return hybrid


def join_stats(**kw):
    defaults = dict(
        row_size_r=100,
        num_rows_r=1_000_000,
        row_size_s=100,
        num_rows_s=10_000,
        projected_size_r=100,
        projected_size_s=100,
        num_output_rows=10_000,
    )
    defaults.update(kw)
    return JoinOperatorStats(**defaults)


def agg_stats(rows=1_000_000):
    return AggregateOperatorStats(
        num_input_rows=rows,
        input_row_size=100,
        num_output_rows=max(1, rows // 100),
        output_row_size=12,
    )


def scan_stats(rows=1_000_000):
    return ScanOperatorStats(
        num_input_rows=rows,
        input_row_size=100,
        num_output_rows=max(1, rows // 10),
        output_row_size=100,
    )


MIXED = (
    join_stats(),
    agg_stats(),
    scan_stats(),
    join_stats(num_rows_r=8_000_000, num_output_rows=500_000),
    agg_stats(rows=4_000_000),
    scan_stats(rows=100_000),
    agg_stats(rows=250_000),
)


def assert_identical(batch, scalar):
    assert len(batch) == len(scalar)
    for batched, single in zip(batch, scalar):
        assert batched.seconds == single.seconds  # bit-identical, no approx
        assert batched.approach is single.approach
        assert batched.operator is single.operator
        assert batched.used_remedy == single.used_remedy


class TestBitIdenticalBatches:
    def test_subop_batch_matches_scalar(self, subop_estimator):
        batch = subop_estimator.estimate_batch(MIXED)
        scalar = [subop_estimator.estimate(s) for s in MIXED]
        assert_identical(batch, scalar)

    def test_logical_batch_matches_scalar(self, logical_estimator):
        items = tuple(s for s in MIXED if not isinstance(s, JoinOperatorStats))
        batch = logical_estimator.estimate_batch(items)
        scalar = [logical_estimator.estimate(s) for s in items]
        assert_identical(batch, scalar)

    def test_hybrid_mixed_batch_matches_scalar(self, hybrid):
        """Sub-op joins/scans interleaved with logical-op aggregates."""
        batch = hybrid.estimate_batch(MIXED)
        scalar = [hybrid.estimate(s) for s in MIXED]
        assert_identical(batch, scalar)
        approaches = {e.approach for e in batch}
        assert approaches == {CostingApproach.SUB_OP, CostingApproach.LOGICAL_OP}

    def test_out_of_range_rows_take_remedy_in_batch(self, logical_estimator):
        """Rows far beyond the trained grid remedy identically in batch."""
        items = (agg_stats(), agg_stats(rows=500_000_000), agg_stats(rows=80_000))
        batch = logical_estimator.estimate_batch(items)
        scalar = [logical_estimator.estimate(s) for s in items]
        assert_identical(batch, scalar)
        assert batch[1].used_remedy
        assert not batch[0].used_remedy

    def test_single_item_and_empty_batches(self, hybrid):
        assert hybrid.estimate_batch([]) == []
        only = hybrid.estimate_batch([agg_stats()])
        assert len(only) == 1
        assert only[0].seconds == hybrid.estimate(agg_stats()).seconds

    def test_batch_order_preserved(self, hybrid):
        batch = hybrid.estimate_batch(MIXED)
        for stats, estimate in zip(MIXED, batch):
            assert estimate.operator is operator_kind_for(stats)


class TestUnifiedDispatch:
    def test_estimate_dispatches_on_type(self, subop_estimator):
        assert (
            subop_estimator.estimate(join_stats()).operator is OperatorKind.JOIN
        )
        assert (
            subop_estimator.estimate(agg_stats()).operator
            is OperatorKind.AGGREGATE
        )
        assert (
            subop_estimator.estimate(scan_stats()).operator is OperatorKind.SCAN
        )

    def test_unknown_descriptor_rejected(self, subop_estimator):
        with pytest.raises(ConfigurationError):
            subop_estimator.estimate("not stats")

    def test_denormalized_join_normalized_internally(self, subop_estimator):
        straight = subop_estimator.estimate(join_stats()).seconds
        inverted = subop_estimator.estimate(
            join_stats(num_rows_r=10_000, num_rows_s=1_000_000)
        ).seconds
        assert straight == pytest.approx(inverted)


class TestDeprecatedShimsRemoved:
    """The per-kind shims were kept one release (PR 3) and are now gone:
    ``estimate(stats)`` / ``estimate_batch(stats_seq)`` are the only
    entry points on every estimator level."""

    def test_shims_gone(self, subop_estimator, logical_estimator, hybrid):
        for estimator in (subop_estimator, logical_estimator, hybrid):
            for old_name in (
                "estimate_join",
                "estimate_aggregate",
                "estimate_scan",
            ):
                assert not hasattr(estimator, old_name)


class TestTypedUnavailableError:
    def test_route_to_absent_estimator_typed(self, logical_estimator):
        hybrid = HybridEstimator(logical_op=logical_estimator)
        with pytest.raises(EstimatorUnavailableError):
            hybrid.route(OperatorKind.JOIN, CostingApproach.SUB_OP)

    def test_subclass_of_configuration_error(self):
        assert issubclass(EstimatorUnavailableError, ConfigurationError)


class TestRequestAndBatchTypes:
    def test_request_validates_stats(self):
        with pytest.raises(ConfigurationError):
            EstimationRequest(system="hive", stats=(1, 2, 3))

    def test_request_kind(self):
        request = EstimationRequest(system="hive", stats=agg_stats())
        assert request.kind is OperatorKind.AGGREGATE

    def test_batch_estimate_semantics(self, subop_estimator):
        estimates = tuple(subop_estimator.estimate_batch(MIXED))
        batch = BatchEstimate(
            estimates=estimates, cache_hits=2, cache_misses=len(estimates) - 2
        )
        assert len(batch) == len(MIXED)
        assert batch[0] is estimates[0]
        assert list(batch) == list(estimates)
        assert batch.total_seconds == pytest.approx(
            sum(e.seconds for e in estimates)
        )

    def test_operator_estimate_frozen_with_cache_flag(self, subop_estimator):
        estimate = subop_estimator.estimate(agg_stats())
        assert isinstance(estimate, OperatorEstimate)
        assert estimate.cache_hit is False
        with pytest.raises(AttributeError):
            estimate.cache_hit = True
