"""Tests for schemas and the paper's shared table schema."""

import pytest

from repro.data.schema import (
    Column,
    DataType,
    PAPER_DUPLICATION_RATES,
    TableSchema,
    paper_schema,
)
from repro.exceptions import ConfigurationError


class TestColumn:
    def test_default_width_from_dtype(self):
        assert Column("a", DataType.INTEGER).byte_width == 4
        assert Column("b", DataType.BIGINT).byte_width == 8

    def test_char_requires_width(self):
        with pytest.raises(ConfigurationError):
            Column("c", DataType.CHAR)
        assert Column("c", DataType.CHAR, width=10).byte_width == 10

    def test_rejects_bad_duplication_rate(self):
        with pytest.raises(ConfigurationError):
            Column("a", DataType.INTEGER, duplication_rate=0)

    def test_rejects_empty_name(self):
        with pytest.raises(ConfigurationError):
            Column("", DataType.INTEGER)


class TestTableSchema:
    def test_rejects_duplicate_names(self):
        cols = (Column("a", DataType.INTEGER), Column("a", DataType.INTEGER))
        with pytest.raises(ConfigurationError):
            TableSchema(cols)

    def test_rejects_empty(self):
        with pytest.raises(ConfigurationError):
            TableSchema(())

    def test_row_width_sums_columns(self):
        schema = TableSchema(
            (Column("a", DataType.INTEGER), Column("b", DataType.BIGINT))
        )
        assert schema.row_width == 12

    def test_projected_width(self):
        schema = TableSchema(
            (
                Column("a", DataType.INTEGER),
                Column("b", DataType.BIGINT),
                Column("c", DataType.CHAR, width=20),
            )
        )
        assert schema.projected_width(("a", "c")) == 24

    def test_unknown_column_raises(self):
        schema = TableSchema((Column("a", DataType.INTEGER),))
        with pytest.raises(ConfigurationError):
            schema.column("zzz")

    def test_equality_and_hash(self):
        a = TableSchema((Column("a", DataType.INTEGER),))
        b = TableSchema((Column("a", DataType.INTEGER),))
        assert a == b
        assert hash(a) == hash(b)


class TestPaperSchema:
    def test_exact_row_size(self):
        for size in (40, 70, 100, 250, 500, 1000):
            assert paper_schema(size).row_width == size

    def test_column_roster(self):
        schema = paper_schema(100)
        expected = tuple(f"a{i}" for i in PAPER_DUPLICATION_RATES) + ("z", "dummy")
        assert schema.column_names == expected

    def test_duplication_rates(self):
        schema = paper_schema(100)
        for rate in PAPER_DUPLICATION_RATES:
            assert schema.column(f"a{rate}").duplication_rate == rate

    def test_z_is_constant(self):
        assert paper_schema(100).column("z").constant

    def test_too_small_row_size_rejected(self):
        with pytest.raises(ConfigurationError):
            paper_schema(32)  # the eight integers alone need 32 bytes
