"""Per-query profiler: span-tree -> cost breakdown, text/HTML rendering."""

import pytest

from repro import obs
from repro.cli import build_sandbox
from repro.obs import profiler
from repro.obs.profiler import (
    OperatorProfile,
    QueryProfile,
    StepProfile,
    build_profile,
    render_html,
    render_text,
)

JOIN_SQL = "SELECT r.a1 FROM t8000000_100 r JOIN t100000_100 s ON r.a1 = s.a1"


@pytest.fixture(scope="module")
def traced_profile():
    """One sandbox query traced end to end and profiled."""
    tracer = obs.get_tracer()
    was_enabled = tracer.enabled
    tracer.enable()
    try:
        sphere = build_sandbox()
        tracer.clear()
        with tracer.span("repro.profile", query=JOIN_SQL):
            sphere.run(JOIN_SQL)
        root = tracer.last_trace()
    finally:
        tracer.clear()
        if not was_enabled:
            tracer.disable()
    assert root is not None
    return build_profile(root, query=JOIN_SQL)


class TestBuildProfile:
    def test_header_fields(self, traced_profile):
        assert traced_profile.query == JOIN_SQL
        assert traced_profile.location == "hive"
        assert traced_profile.estimated_seconds > 0
        assert traced_profile.observed_seconds > 0
        assert traced_profile.total_wall_seconds > 0

    def test_steps_come_from_run_record(self, traced_profile):
        assert traced_profile.steps
        systems = {step.system for step in traced_profile.steps}
        assert "hive" in systems
        for step in traced_profile.steps:
            assert step.estimated_seconds >= 0
            assert step.delta_seconds == pytest.approx(
                step.observed_seconds - step.estimated_seconds
            )

    def test_operator_estimates(self, traced_profile):
        assert traced_profile.operators
        op = traced_profile.operators[0]
        assert op.system == "hive"
        assert op.operator == "join"
        assert op.approach == "sub_op"
        assert op.estimated_seconds > 0
        assert op.wall_seconds > 0

    def test_subop_breakdown_aggregates_engine_spans(self, traced_profile):
        assert traced_profile.subop_seconds
        # A join on Hive must at least read and build/probe.
        assert any(
            "read" in name for name in traced_profile.subop_seconds
        )
        assert traced_profile.simulated_total > 0

    def test_estimation_wall_components(self, traced_profile):
        assert traced_profile.estimation_wall_seconds > 0
        # The sandbox join estimates via sub-op models: no NN, no remedy.
        assert traced_profile.nn_wall_seconds == 0.0
        assert traced_profile.remedy_wall_seconds == 0.0


class TestStepProfile:
    def test_q_error(self):
        step = StepProfile("s", "hive", estimated_seconds=2.0, observed_seconds=8.0)
        assert step.q_error == 4.0
        inverse = StepProfile("s", "hive", estimated_seconds=8.0, observed_seconds=2.0)
        assert inverse.q_error == 4.0

    def test_q_error_degenerate(self):
        step = StepProfile("s", "hive", estimated_seconds=0.0, observed_seconds=1.0)
        assert step.q_error == 0.0


class TestRenderText:
    def test_contains_all_sections(self, traced_profile):
        text = render_text(traced_profile)
        assert f"query: {JOIN_SQL}" in text
        assert "placement: hive" in text
        assert "placement steps (estimate vs actual)" in text
        assert "operator estimates" in text
        assert "sub-operator breakdown (simulated seconds)" in text
        assert "estimation overhead (wall clock)" in text

    def test_empty_profile_renders(self):
        profile = QueryProfile(
            query="",
            location="",
            estimated_seconds=0.0,
            observed_seconds=0.0,
            total_wall_seconds=0.0,
            estimation_wall_seconds=0.0,
            nn_wall_seconds=0.0,
            remedy_wall_seconds=0.0,
        )
        text = render_text(profile)
        assert "estimation overhead (wall clock)" in text
        assert "placement steps" not in text


class TestRenderHtml:
    def test_self_contained_page(self, traced_profile):
        html = render_html(traced_profile)
        assert html.startswith("<!doctype html>")
        assert "<style>" in html
        # Self-contained: no external assets.
        assert "http://" not in html and "https://" not in html
        assert "sub-op" in html.lower()

    def test_escapes_query_text(self):
        profile = QueryProfile(
            query="SELECT a FROM t WHERE a < 5 AND b > '<script>'",
            location="hive",
            estimated_seconds=1.0,
            observed_seconds=1.0,
            total_wall_seconds=0.1,
            estimation_wall_seconds=0.01,
            nn_wall_seconds=0.0,
            remedy_wall_seconds=0.0,
            operators=(
                OperatorProfile(
                    system="<hive>",
                    operator="join",
                    approach="sub_op",
                    estimated_seconds=1.0,
                    remedy_active=False,
                    wall_seconds=0.01,
                ),
            ),
        )
        html = render_html(profile)
        assert "<script>" not in html
        assert "&lt;script&gt;" in html
        assert "&lt;hive&gt;" in html


class TestReportRendering:
    def _snapshot(self):
        registry = obs.MetricsRegistry()
        registry.counter("costing.estimate_plan.calls").inc(4)
        ledger = obs.AccuracyLedger()
        ledger.record(
            system="hive",
            operator="join",
            estimated_seconds=10.0,
            actual_seconds=20.0,
        )
        from repro.obs import exporters

        return exporters.build_snapshot(registry=registry, ledger=ledger)

    def test_report_text(self):
        text = profiler.render_report_text(self._snapshot())
        assert "accuracy by system/operator" in text
        assert "hive/join" in text
        assert "costing.estimate_plan.calls" in text

    def test_report_text_empty_ledger(self):
        from repro.obs import exporters

        snapshot = exporters.build_snapshot(
            registry=obs.MetricsRegistry(), ledger=obs.AccuracyLedger()
        )
        text = profiler.render_report_text(snapshot)
        assert "(no recorded actuals)" in text

    def test_report_html(self):
        html = profiler.render_report_html(self._snapshot())
        assert html.startswith("<!doctype html>")
        assert "hive/join" in html
