"""Tests for feature scaling."""

import numpy as np
import pytest

from repro.exceptions import ConfigurationError, ModelNotTrainedError
from repro.ml.scaling import LogStandardScaler, StandardScaler


class TestStandardScaler:
    def test_roundtrip(self):
        rng = np.random.default_rng(0)
        x = rng.normal(5, 3, size=(100, 4))
        scaler = StandardScaler()
        z = scaler.fit_transform(x)
        assert np.allclose(z.mean(axis=0), 0, atol=1e-10)
        assert np.allclose(z.std(axis=0), 1, atol=1e-10)
        assert np.allclose(scaler.inverse_transform(z), x)

    def test_constant_column_handled(self):
        x = np.column_stack([np.ones(10), np.arange(10.0)])
        z = StandardScaler().fit_transform(x)
        assert np.allclose(z[:, 0], 0)

    def test_transform_before_fit_rejected(self):
        with pytest.raises(ModelNotTrainedError):
            StandardScaler().transform(np.ones((2, 2)))

    def test_feature_count_mismatch(self):
        scaler = StandardScaler().fit(np.ones((5, 3)))
        with pytest.raises(ConfigurationError):
            scaler.transform(np.ones((5, 2)))

    def test_1d_promoted_to_column(self):
        scaler = StandardScaler()
        z = scaler.fit_transform(np.arange(10.0))
        assert z.shape == (10, 1)


class TestLogStandardScaler:
    def test_roundtrip_wide_range(self):
        x = np.array([[1e4], [1e5], [1e6], [1e7]])
        scaler = LogStandardScaler()
        z = scaler.fit_transform(x)
        back = scaler.inverse_transform(z)
        assert np.allclose(back, x, rtol=1e-9)

    def test_compresses_decades_evenly(self):
        x = np.array([[1e4], [1e5], [1e6], [1e7]])
        z = LogStandardScaler().fit_transform(x).ravel()
        gaps = np.diff(z)
        assert np.allclose(gaps, gaps[0], rtol=0.01)

    def test_rejects_negative_inputs(self):
        with pytest.raises(ConfigurationError):
            LogStandardScaler().fit(np.array([[-1.0]]))

    def test_zero_allowed(self):
        scaler = LogStandardScaler().fit(np.array([[0.0], [10.0]]))
        assert scaler.is_fitted


class TestValidation:
    def test_empty_matrix_rejected(self):
        with pytest.raises(ConfigurationError):
            StandardScaler().fit(np.empty((0, 3)))

    def test_3d_rejected(self):
        with pytest.raises(ConfigurationError):
            StandardScaler().fit(np.ones((2, 2, 2)))
