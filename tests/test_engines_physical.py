"""Tests for physical operator algorithms and cost composition."""

import pytest

from repro.cluster import Cluster, ClusterConfig
from repro.engines.physical import (
    AggregateContext,
    BroadcastJoin,
    BucketMapJoin,
    CartesianProductJoin,
    CostAccumulator,
    ExecutionEnv,
    HIVE_JOIN_ALGORITHMS,
    HashAggregate,
    JoinContext,
    RelShape,
    ScanContext,
    ScanPass,
    ShuffleJoin,
    SkewJoin,
    SortAggregate,
    SortMergeBucketJoin,
    SPARK_JOIN_ALGORITHMS,
)
from repro.engines.subops import SubOp, hive_kernels
from repro.exceptions import ConfigurationError

GIB = 1024**3
MIB = 1024**2


@pytest.fixture()
def env():
    cluster = Cluster(ClusterConfig(num_data_nodes=3))
    return ExecutionEnv(cluster, hive_kernels(cluster.per_task_memory))


def make_join_ctx(env, big_rows=1_000_000, small_rows=10_000, row_size=100, **kw):
    return JoinContext(
        env=env,
        big=RelShape(num_rows=big_rows, row_size=row_size, **kw.pop("big_kw", {})),
        small=RelShape(
            num_rows=small_rows, row_size=row_size, **kw.pop("small_kw", {})
        ),
        join_column_big="a1",
        join_column_small="a1",
        output_rows=small_rows,
        output_row_size=2 * row_size,
        **kw,
    )


class TestRelShape:
    def test_total_bytes(self):
        assert RelShape(num_rows=10, row_size=100).total_bytes == 1000

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            RelShape(num_rows=-1, row_size=100)
        with pytest.raises(ConfigurationError):
            RelShape(num_rows=1, row_size=0)


class TestExecutionEnv:
    def test_num_tasks_per_block(self, env):
        shape = RelShape(num_rows=1, row_size=300 * MIB)
        assert env.num_tasks(shape) == 3

    def test_block_rows(self, env):
        shape = RelShape(num_rows=4_000_000, row_size=128)
        tasks = env.num_tasks(shape)
        assert env.block_rows(shape) == pytest.approx(4_000_000 / tasks, rel=0.01)

    def test_empty_shape(self, env):
        shape = RelShape(num_rows=0, row_size=100)
        assert env.num_tasks(shape) == 0
        assert env.block_rows(shape) == 0


class TestCostAccumulator:
    def test_accumulates_by_label(self, env):
        acc = CostAccumulator(env)
        acc.add(SubOp.READ_DFS, 1000, 100)
        acc.add(SubOp.READ_DFS, 1000, 100)
        assert acc.breakdown["read_dfs"] == pytest.approx(2 * acc.total / 2)
        assert len(acc.breakdown) == 1

    def test_zero_records_ignored(self, env):
        acc = CostAccumulator(env)
        acc.add(SubOp.READ_DFS, 0, 100)
        assert acc.total == 0.0
        assert acc.breakdown == {}

    def test_repeat_multiplies(self, env):
        one = CostAccumulator(env)
        one.add(SubOp.SCAN, 100, 100)
        five = CostAccumulator(env)
        five.add(SubOp.SCAN, 100, 100, repeat=5)
        assert five.total == pytest.approx(5 * one.total)


class TestBroadcastJoin:
    def test_applicable_when_small_fits(self, env):
        ctx = make_join_ctx(env, small_rows=10_000)
        assert BroadcastJoin().applicable(ctx)

    def test_not_applicable_when_small_spills(self, env):
        big_small = env.kernels.hash_build.memory_budget // 100 + 1
        ctx = make_join_ctx(env, small_rows=big_small, row_size=100)
        assert not BroadcastJoin().applicable(ctx)

    def test_cost_structure_matches_fig6(self, env):
        """The breakdown must contain exactly the Fig. 6 sub-ops."""
        ctx = make_join_ctx(env)
        breakdown = BroadcastJoin().cost(ctx).breakdown
        assert set(breakdown) == {
            "read_dfs",
            "broadcast",
            "read_local",
            "hash_build",
            "hash_probe",
            "write_dfs",
        }

    def test_cost_grows_with_big_side(self, env):
        small = BroadcastJoin().cost(make_join_ctx(env, big_rows=1_000_000)).total
        large = BroadcastJoin().cost(make_join_ctx(env, big_rows=8_000_000)).total
        assert large > small


class TestShuffleJoin:
    def test_always_applicable_for_equi(self, env):
        assert ShuffleJoin().applicable(make_join_ctx(env))
        assert not ShuffleJoin().applicable(make_join_ctx(env, is_equi=False))

    def test_includes_shuffle_and_sort(self, env):
        breakdown = ShuffleJoin().cost(make_join_ctx(env)).breakdown
        assert "shuffle" in breakdown
        assert "sort" in breakdown
        assert "rec_merge" in breakdown

    def test_more_expensive_than_broadcast_for_small_s(self, env):
        """With a tiny S, broadcasting beats shuffling everything."""
        ctx = make_join_ctx(env, big_rows=8_000_000, small_rows=10_000)
        assert ShuffleJoin().cost(ctx).total > BroadcastJoin().cost(ctx).total


class TestBucketJoins:
    def test_bucket_map_needs_partitioning(self, env):
        plain = make_join_ctx(env)
        assert not BucketMapJoin().applicable(plain)
        bucketed = make_join_ctx(
            env,
            big_kw={"partitioned_by": "a1"},
            small_kw={"partitioned_by": "a1"},
        )
        assert BucketMapJoin().applicable(bucketed)

    def test_smb_needs_sorting_too(self, env):
        bucketed = make_join_ctx(
            env,
            big_kw={"partitioned_by": "a1"},
            small_kw={"partitioned_by": "a1"},
        )
        assert not SortMergeBucketJoin().applicable(bucketed)
        sorted_ctx = make_join_ctx(
            env,
            big_kw={"partitioned_by": "a1", "sorted_by": "a1"},
            small_kw={"partitioned_by": "a1", "sorted_by": "a1"},
        )
        assert SortMergeBucketJoin().applicable(sorted_ctx)

    def test_smb_cheapest_on_aligned_data(self, env):
        ctx = make_join_ctx(
            env,
            big_rows=8_000_000,
            small_rows=4_000_000,
            big_kw={"partitioned_by": "a1", "sorted_by": "a1"},
            small_kw={"partitioned_by": "a1", "sorted_by": "a1"},
        )
        smb = SortMergeBucketJoin().cost(ctx).total
        shuffle = ShuffleJoin().cost(ctx).total
        assert smb < shuffle


class TestSkewJoin:
    def test_only_for_skewed_keys(self, env):
        assert not SkewJoin().applicable(make_join_ctx(env))
        assert SkewJoin().applicable(make_join_ctx(env, skewed=True))

    def test_costs_more_than_shuffle(self, env):
        ctx = make_join_ctx(env, skewed=True)
        assert SkewJoin().cost(ctx).total > ShuffleJoin().cost(ctx).total


class TestNonEquiJoins:
    def test_cartesian_only_non_equi(self, env):
        assert not CartesianProductJoin().applicable(make_join_ctx(env))
        assert CartesianProductJoin().applicable(make_join_ctx(env, is_equi=False))

    def test_cartesian_explodes_with_inputs(self, env):
        small = CartesianProductJoin().cost(
            make_join_ctx(env, big_rows=10_000, small_rows=1_000, is_equi=False)
        )
        large = CartesianProductJoin().cost(
            make_join_ctx(env, big_rows=100_000, small_rows=1_000, is_equi=False)
        )
        assert large.total > 5 * small.total


class TestAggregation:
    def test_hash_agg_applicability(self, env):
        small = AggregateContext(
            env=env,
            input=RelShape(num_rows=1_000_000, row_size=100),
            num_groups=1000,
            output_row_size=12,
        )
        assert HashAggregate().applicable(small)
        huge = AggregateContext(
            env=env,
            input=RelShape(num_rows=1_000_000, row_size=100),
            num_groups=env.kernels.hash_build.memory_budget,
            output_row_size=12,
        )
        assert not HashAggregate().applicable(huge)

    def test_sort_agg_always_applicable(self, env):
        ctx = AggregateContext(
            env=env,
            input=RelShape(num_rows=1000, row_size=100),
            num_groups=10,
            output_row_size=12,
        )
        assert SortAggregate().applicable(ctx)

    def test_hash_cheaper_when_few_groups(self, env):
        ctx = AggregateContext(
            env=env,
            input=RelShape(num_rows=4_000_000, row_size=100),
            num_groups=100,
            output_row_size=12,
        )
        assert HashAggregate().cost(ctx).total < SortAggregate().cost(ctx).total


class TestScanPass:
    def test_breakdown(self, env):
        ctx = ScanContext(
            env=env,
            input=RelShape(num_rows=1_000_000, row_size=100),
            output_rows=100_000,
            output_row_size=8,
        )
        breakdown = ScanPass().cost(ctx).breakdown
        assert set(breakdown) == {"read_dfs", "scan", "write_dfs"}


class TestAlgorithmRosters:
    def test_hive_has_five_join_algorithms(self):
        names = [a.name for a in HIVE_JOIN_ALGORITHMS]
        assert names == [
            "sort_merge_bucket_join",
            "bucket_map_join",
            "broadcast_join",
            "skew_join",
            "shuffle_join",
        ]

    def test_spark_has_five_join_algorithms(self):
        names = [a.name for a in SPARK_JOIN_ALGORITHMS]
        assert names == [
            "broadcast_hash_join",
            "shuffle_hash_join",
            "sort_merge_join",
            "broadcast_nested_loop_join",
            "cartesian_product_join",
        ]
