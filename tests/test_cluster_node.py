"""Tests for hardware profiles (repro.cluster.node)."""

import pytest

from repro.cluster.node import CpuProfile, DiskProfile, MemoryProfile, NodeSpec
from repro.exceptions import ConfigurationError


class TestCpuProfile:
    def test_defaults(self):
        cpu = CpuProfile()
        assert cpu.cores == 2
        assert cpu.clock_ghz > 0

    def test_scale_factor_slower_clock_is_larger(self):
        slow = CpuProfile(clock_ghz=1.1)
        fast = CpuProfile(clock_ghz=4.4)
        assert slow.scale_factor(2.2) == pytest.approx(2.0)
        assert fast.scale_factor(2.2) == pytest.approx(0.5)

    def test_rejects_zero_cores(self):
        with pytest.raises(ConfigurationError):
            CpuProfile(cores=0)

    def test_rejects_nonpositive_clock(self):
        with pytest.raises(ConfigurationError):
            CpuProfile(clock_ghz=0)

    def test_rejects_nonpositive_bandwidth(self):
        with pytest.raises(ConfigurationError):
            CpuProfile(mem_bandwidth=-1)


class TestDiskProfile:
    def test_defaults_valid(self):
        disk = DiskProfile()
        assert disk.read_bandwidth > disk.write_bandwidth > 0

    def test_rejects_negative_seek(self):
        with pytest.raises(ConfigurationError):
            DiskProfile(seek_latency=-0.1)

    def test_rejects_zero_capacity(self):
        with pytest.raises(ConfigurationError):
            DiskProfile(capacity=0)


class TestMemoryProfile:
    def test_per_task_budget(self):
        memory = MemoryProfile(total=8 * 1024**3, task_fraction=0.25)
        assert memory.per_task == 2 * 1024**3

    def test_full_fraction_allowed(self):
        memory = MemoryProfile(total=100, task_fraction=1.0)
        assert memory.per_task == 100

    @pytest.mark.parametrize("fraction", [0.0, -0.5, 1.5])
    def test_rejects_bad_fraction(self, fraction):
        with pytest.raises(ConfigurationError):
            MemoryProfile(task_fraction=fraction)


class TestNodeSpec:
    def test_requires_name(self):
        with pytest.raises(ConfigurationError):
            NodeSpec(name="")

    def test_master_flag(self):
        node = NodeSpec(name="m", is_master=True)
        assert node.is_master
        assert not NodeSpec(name="d").is_master
