"""Tests for the three estimators and hybrid routing (§5)."""

import pytest

from repro.core.estimator import (
    CostingApproach,
    HybridEstimator,
    LogicalOpEstimator,
    SubOpEstimator,
    normalize_join_stats,
)
from repro.core.logical_op import LogicalOpModel
from repro.core.operators import (
    AggregateOperatorStats,
    JoinOperatorStats,
    OperatorKind,
    ScanOperatorStats,
)
from repro.core.rules import JoinAlgorithmSelector, hive_join_algorithms
from repro.core.subop_model import ClusterInfo, SubOpTrainer
from repro.core.training import TrainingSet
from repro.data import build_paper_corpus
from repro.engines import HiveEngine
from repro.exceptions import ConfigurationError, ModelNotTrainedError


@pytest.fixture(scope="module")
def subop_estimator():
    engine = HiveEngine(seed=0, noise_sigma=0.0)
    for spec in build_paper_corpus(row_counts=(10_000,), row_sizes=(40,)):
        engine.load_table(spec)
    cluster = ClusterInfo(
        num_data_nodes=3, cores_per_node=2, dfs_block_size=128 * 1024 * 1024
    )
    model_set = SubOpTrainer().train(engine, cluster).model_set
    return SubOpEstimator(
        subops=model_set,
        cluster=cluster,
        join_selector=JoinAlgorithmSelector(hive_join_algorithms()),
    )


@pytest.fixture(scope="module")
def logical_estimator():
    model = LogicalOpModel(
        OperatorKind.AGGREGATE, search_topology=False, nn_iterations=1500, seed=0
    )
    ts = TrainingSet(model.dimension_names)
    for rows in (1e5, 1e6, 4e6, 8e6):
        for size in (40, 100, 1000):
            for groups in (rows, rows / 10, rows / 100):
                ts.add((rows, size, groups, 12), 1 + rows * 2e-6 * (size / 100))
    model.train(ts)
    estimator = LogicalOpEstimator()
    estimator.add_model(model)
    return estimator


def join_stats(**kw):
    defaults = dict(
        row_size_r=100,
        num_rows_r=1_000_000,
        row_size_s=100,
        num_rows_s=10_000,
        projected_size_r=100,
        projected_size_s=100,
        num_output_rows=10_000,
    )
    defaults.update(kw)
    return JoinOperatorStats(**defaults)


def agg_stats():
    return AggregateOperatorStats(
        num_input_rows=1_000_000,
        input_row_size=100,
        num_output_rows=10_000,
        output_row_size=12,
    )


class TestNormalization:
    def test_already_normalized_passthrough(self):
        stats = join_stats()
        assert normalize_join_stats(stats) is stats

    def test_swaps_when_s_is_bigger(self):
        inverted = join_stats(num_rows_r=10_000, num_rows_s=1_000_000)
        fixed = normalize_join_stats(inverted)
        assert fixed.num_rows_r == 1_000_000
        assert fixed.num_rows_s == 10_000

    def test_swap_preserves_layout_flags(self):
        inverted = join_stats(
            num_rows_r=10_000,
            num_rows_s=1_000_000,
            r_partitioned_on_key=True,
        )
        fixed = normalize_join_stats(inverted)
        assert fixed.s_partitioned_on_key
        assert not fixed.r_partitioned_on_key


class TestSubOpEstimator:
    def test_join_estimate(self, subop_estimator):
        estimate = subop_estimator.estimate(join_stats())
        assert estimate.approach is CostingApproach.SUB_OP
        assert estimate.operator is OperatorKind.JOIN
        assert estimate.seconds > 0
        assert estimate.detail.predicted_algorithm == "broadcast_join"

    def test_denormalized_input_handled(self, subop_estimator):
        straight = subop_estimator.estimate(join_stats()).seconds
        inverted = subop_estimator.estimate(
            join_stats(num_rows_r=10_000, num_rows_s=1_000_000)
        ).seconds
        assert straight == pytest.approx(inverted)

    def test_aggregate_estimate(self, subop_estimator):
        estimate = subop_estimator.estimate(agg_stats())
        assert estimate.seconds > 0
        assert estimate.detail.predicted_algorithm == "hash_aggregate"

    def test_scan_estimate(self, subop_estimator):
        stats = ScanOperatorStats(
            num_input_rows=1_000_000,
            input_row_size=100,
            num_output_rows=1000,
            output_row_size=8,
        )
        estimate = subop_estimator.estimate(stats)
        assert estimate.seconds > 0
        assert estimate.detail.predicted_algorithm == "scan"

    def test_memory_threshold_learned_from_hash_build(self, subop_estimator):
        assert (
            subop_estimator.context.memory_threshold_bytes
            == subop_estimator.subops.hash_build.workspace_threshold
        )


class TestLogicalOpEstimator:
    def test_aggregate_estimate(self, logical_estimator):
        estimate = logical_estimator.estimate(agg_stats())
        assert estimate.approach is CostingApproach.LOGICAL_OP
        assert estimate.seconds > 0

    def test_missing_model_raises(self, logical_estimator):
        with pytest.raises(ModelNotTrainedError):
            logical_estimator.estimate(join_stats())

    def test_has_model(self, logical_estimator):
        assert logical_estimator.has_model(OperatorKind.AGGREGATE)
        assert not logical_estimator.has_model(OperatorKind.JOIN)


class TestHybridEstimator:
    def test_requires_at_least_one(self):
        with pytest.raises(ConfigurationError):
            HybridEstimator()

    def test_default_routing(self, subop_estimator, logical_estimator):
        hybrid = HybridEstimator(
            sub_op=subop_estimator, logical_op=logical_estimator
        )
        estimate = hybrid.estimate(agg_stats())
        assert estimate.approach is CostingApproach.SUB_OP

    def test_switch_to_logical(self, subop_estimator, logical_estimator):
        """The §5 'system C' switchover scenario."""
        hybrid = HybridEstimator(
            sub_op=subop_estimator, logical_op=logical_estimator
        )
        hybrid.switch_to(CostingApproach.LOGICAL_OP)
        estimate = hybrid.estimate(agg_stats())
        assert estimate.approach is CostingApproach.LOGICAL_OP

    def test_per_operator_routing(self, subop_estimator, logical_estimator):
        """§5: different operators may use different approaches."""
        hybrid = HybridEstimator(
            sub_op=subop_estimator, logical_op=logical_estimator
        )
        hybrid.route(OperatorKind.AGGREGATE, CostingApproach.LOGICAL_OP)
        agg = hybrid.estimate(agg_stats())
        join = hybrid.estimate(join_stats())
        assert agg.approach is CostingApproach.LOGICAL_OP
        assert join.approach is CostingApproach.SUB_OP

    def test_falls_back_when_logical_model_missing(
        self, subop_estimator, logical_estimator
    ):
        hybrid = HybridEstimator(
            sub_op=subop_estimator, logical_op=logical_estimator
        )
        hybrid.switch_to(CostingApproach.LOGICAL_OP)
        # No join model is trained -> falls back to sub-op.
        estimate = hybrid.estimate(join_stats())
        assert estimate.approach is CostingApproach.SUB_OP

    def test_route_to_absent_estimator_rejected(self, logical_estimator):
        hybrid = HybridEstimator(logical_op=logical_estimator)
        with pytest.raises(ConfigurationError):
            hybrid.route(OperatorKind.JOIN, CostingApproach.SUB_OP)


class TestScanRouting:
    def test_logical_scan_estimation(self):
        """A trained SCAN logical model serves scan estimates."""
        model = LogicalOpModel(
            OperatorKind.SCAN, search_topology=False, nn_iterations=400, seed=0
        )
        ts = TrainingSet(model.dimension_names)
        for rows in (1e5, 1e6, 8e6):
            for size in (40, 100, 1000):
                for sel in (1.0, 0.1):
                    ts.add(
                        (rows, size, rows * sel, size),
                        0.5 + rows * size * 1e-9,
                    )
        model.train(ts)
        estimator = LogicalOpEstimator({OperatorKind.SCAN: model})
        stats = ScanOperatorStats(
            num_input_rows=1_000_000,
            input_row_size=100,
            num_output_rows=100_000,
            output_row_size=100,
        )
        estimate = estimator.estimate(stats)
        assert estimate.approach is CostingApproach.LOGICAL_OP
        assert estimate.operator is OperatorKind.SCAN
        assert estimate.seconds > 0

    def test_hybrid_scan_routing(self, subop_estimator):
        """Scans route like the other operators in the hybrid."""
        model = LogicalOpModel(
            OperatorKind.SCAN, search_topology=False, nn_iterations=200, seed=0
        )
        ts = TrainingSet(model.dimension_names)
        for rows in (1e5, 2e5, 4e5, 8e5, 1e6):
            for size in (40, 100, 1000):
                ts.add((rows, size, rows, size), 0.5 + rows * 1e-6)
        model.train(ts)
        logical = LogicalOpEstimator({OperatorKind.SCAN: model})
        hybrid = HybridEstimator(sub_op=subop_estimator, logical_op=logical)
        stats = ScanOperatorStats(
            num_input_rows=1_000_000,
            input_row_size=100,
            num_output_rows=1_000,
            output_row_size=8,
        )
        assert hybrid.estimate(stats).approach is CostingApproach.SUB_OP
        hybrid.route(OperatorKind.SCAN, CostingApproach.LOGICAL_OP)
        assert (
            hybrid.estimate(stats).approach is CostingApproach.LOGICAL_OP
        )
