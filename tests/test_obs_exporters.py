"""Exporters: Prometheus escaping and rendering, deterministic snapshots."""

import json

import pytest

from repro import obs
from repro.obs import exporters


@pytest.fixture()
def registry():
    return obs.MetricsRegistry()


class TestPrometheusText:
    def test_empty_registry_renders_empty(self, registry):
        assert exporters.to_prometheus_text(registry=registry) == ""

    def test_counter_and_gauge_lines(self, registry):
        registry.counter("federation.runs", help="completed runs").inc(3)
        registry.gauge("remedy.alpha").set(0.625)
        text = exporters.to_prometheus_text(registry=registry)
        assert "# HELP repro_federation_runs completed runs" in text
        assert "# TYPE repro_federation_runs counter" in text
        assert "repro_federation_runs 3.0" in text
        assert "repro_remedy_alpha 0.625" in text
        assert text.endswith("\n")

    def test_help_text_escaping(self, registry):
        registry.counter(
            "probe.one", help="path C:\\tmp\nsecond line"
        ).inc()
        text = exporters.to_prometheus_text(registry=registry)
        assert "# HELP repro_probe_one path C:\\\\tmp\\nsecond line" in text
        # The rendered exposition stays one line per metric family.
        help_lines = [l for l in text.splitlines() if l.startswith("# HELP")]
        assert len(help_lines) == 1

    def test_label_value_escaping(self):
        # Label values pass through the exposition escaper: backslash,
        # double quote, and newline must all be escaped.
        assert exporters._escape_label_value('a"b') == 'a\\"b'
        assert exporters._escape_label_value("a\\b") == "a\\\\b"
        assert exporters._escape_label_value("a\nb") == "a\\nb"
        assert (
            exporters._escape_label_value('q="\\x\n"') == 'q=\\"\\\\x\\n\\"'
        )

    def test_histogram_bucket_rendering(self, registry):
        histogram = registry.histogram(
            "probe.seconds", buckets=(0.1, 1.0, 10.0)
        )
        for value in (0.05, 0.5, 0.5, 5.0, 50.0):
            histogram.observe(value)
        text = exporters.to_prometheus_text(registry=registry)
        # Buckets are cumulative and the +Inf bucket equals the count.
        assert 'repro_probe_seconds_bucket{le="0.1"} 1' in text
        assert 'repro_probe_seconds_bucket{le="1.0"} 3' in text
        assert 'repro_probe_seconds_bucket{le="10.0"} 4' in text
        assert 'repro_probe_seconds_bucket{le="+Inf"} 5' in text
        assert "repro_probe_seconds_count 5" in text
        assert "repro_probe_seconds_sum 56.05" in text

    def test_metric_name_sanitization(self, registry):
        registry.counter("costing.estimate_plan.calls").inc()
        text = exporters.to_prometheus_text(registry=registry)
        assert "repro_costing_estimate_plan_calls" in text

    def test_renders_from_snapshot_dict(self, registry):
        registry.counter("federation.runs").inc()
        snapshot = registry.snapshot()
        text = exporters.to_prometheus_text(metrics=snapshot)
        assert "repro_federation_runs 1.0" in text


class TestDeterministicSnapshots:
    def _populate(self, registry, ledger, order):
        for name in order:
            registry.counter(name).inc()
        registry.histogram("probe.seconds", buckets=(1.0, 10.0)).observe(2.0)
        ledger.record(
            system="hive",
            operator="join",
            estimated_seconds=3.0,
            actual_seconds=4.0,
        )

    def test_snapshots_are_byte_comparable(self, tmp_path):
        """Same telemetry -> byte-identical file, whatever the insertion
        order (sorted keys, stable label ordering)."""
        paths = []
        for index, order in enumerate(
            (["b.two", "a.one", "c.three"], ["c.three", "b.two", "a.one"])
        ):
            registry = obs.MetricsRegistry()
            ledger = obs.AccuracyLedger()
            self._populate(registry, ledger, order)
            path = tmp_path / f"snap{index}.metrics.json"
            exporters.write_json_snapshot(path, registry=registry, ledger=ledger)
            paths.append(path)
        assert paths[0].read_bytes() == paths[1].read_bytes()

    def test_prometheus_output_is_order_independent(self):
        texts = []
        for order in (["b.two", "a.one"], ["a.one", "b.two"]):
            registry = obs.MetricsRegistry()
            for name in order:
                registry.counter(name).inc()
            texts.append(exporters.to_prometheus_text(registry=registry))
        assert texts[0] == texts[1]

    def test_snapshot_round_trip(self, tmp_path):
        registry = obs.MetricsRegistry()
        registry.counter("federation.runs").inc(2)
        path = tmp_path / "run.metrics.json"
        exporters.write_json_snapshot(path, registry=registry)
        snapshot = exporters.load_json_snapshot(path)
        assert snapshot["version"] == exporters.SNAPSHOT_VERSION
        assert snapshot["metrics"]["federation.runs"]["value"] == 2.0

    def test_load_rejects_non_snapshot(self, tmp_path):
        path = tmp_path / "junk.json"
        path.write_text(json.dumps({"foo": 1}))
        with pytest.raises(ValueError):
            exporters.load_json_snapshot(path)


class TestDerivedGauges:
    def _cache_traffic(self, registry, hits=3, misses=1):
        registry.counter("costing.estimate_cache.hits").inc(hits)
        registry.counter("costing.estimate_cache.misses").inc(misses)

    def test_hit_rate_gauge_from_cache_counters(self, registry):
        self._cache_traffic(registry, hits=3, misses=1)
        metrics = exporters.derive_gauges(registry.snapshot())
        entry = metrics["costing.estimate_cache.hit_rate"]
        assert entry["type"] == "gauge"
        assert entry["value"] == 0.75
        assert entry["unit"] == "ratio"

    def test_activation_rate_gauge(self, registry):
        registry.counter("remedy.activations").inc(2)
        histogram = registry.histogram("costing.estimate_seconds")
        for _ in range(8):
            histogram.observe(1.0)
        metrics = exporters.derive_gauges(registry.snapshot())
        assert metrics["remedy.activation_rate"]["value"] == 0.25

    def test_no_gauges_without_source_instruments(self, registry):
        registry.counter("federation.runs").inc()
        metrics = exporters.derive_gauges(registry.snapshot())
        assert "costing.estimate_cache.hit_rate" not in metrics
        assert "remedy.activation_rate" not in metrics

    def test_no_hit_rate_with_zero_lookups(self, registry):
        registry.counter("costing.estimate_cache.hits")  # exists, value 0
        registry.counter("costing.estimate_cache.misses")
        metrics = exporters.derive_gauges(registry.snapshot())
        assert "costing.estimate_cache.hit_rate" not in metrics

    def test_empty_registry_exports_stay_empty(self, registry):
        # The derived gauges are pure functions of existing traffic, so
        # both export paths stay byte-identical for an empty registry.
        assert exporters.to_prometheus_text(registry=registry) == ""
        snapshot = exporters.build_snapshot(
            registry=registry, ledger=obs.AccuracyLedger()
        )
        assert snapshot["metrics"] == {}

    def test_gauges_present_in_both_exports(self, registry):
        self._cache_traffic(registry)
        snapshot = exporters.build_snapshot(
            registry=registry, ledger=obs.AccuracyLedger()
        )
        assert "costing.estimate_cache.hit_rate" in snapshot["metrics"]
        text = exporters.to_prometheus_text(registry=registry)
        assert "repro_costing_estimate_cache_hit_rate 0.75" in text
        assert "# TYPE repro_costing_estimate_cache_hit_rate gauge" in text

    def test_snapshot_files_with_gauges_stay_byte_deterministic(
        self, tmp_path
    ):
        paths = []
        for index in range(2):
            registry = obs.MetricsRegistry()
            # Opposite insertion orders must not change the file.
            if index == 0:
                self._cache_traffic(registry)
                registry.counter("remedy.activations").inc(1)
            else:
                registry.counter("remedy.activations").inc(1)
                self._cache_traffic(registry)
            registry.histogram("costing.estimate_seconds").observe(1.0)
            path = tmp_path / f"derived{index}.metrics.json"
            exporters.write_json_snapshot(
                path, registry=registry, ledger=obs.AccuracyLedger()
            )
            paths.append(path)
        assert paths[0].read_bytes() == paths[1].read_bytes()
        data = json.loads(paths[0].read_text())
        assert "costing.estimate_cache.hit_rate" in data["metrics"]
        assert "remedy.activation_rate" in data["metrics"]

    def test_explicit_metrics_dict_rendered_as_is(self, registry):
        self._cache_traffic(registry)
        raw = registry.snapshot()  # no derive_gauges applied
        text = exporters.to_prometheus_text(metrics=raw)
        assert "hit_rate" not in text


class TestTenantExports:
    def _ledger(self):
        ledger = obs.TenantLedger()
        ledger.record_estimate("analytics", 3.0)
        ledger.record_actual("analytics", 2.0)
        return ledger

    def test_prometheus_lines_carry_tenant_labels(self, registry):
        text = exporters.to_prometheus_text(
            registry=registry, tenants=self._ledger().snapshot()
        )
        assert 'repro_tenant_estimated_seconds{tenant="analytics"} 3.0' in text
        assert 'repro_tenant_mean_q_error{tenant="analytics"} 2.0' in text
        assert "# TYPE repro_tenant_estimated_seconds gauge" in text

    def test_tenant_label_values_are_escaped(self, registry):
        tenants = {'ad"hoc\\team\n': {"queries": 1}}
        text = exporters.to_prometheus_text(registry=registry, tenants=tenants)
        assert 'tenant="ad\\"hoc\\\\team\\n"' in text

    def test_no_attribution_leaves_exposition_untouched(self, registry):
        registry.counter("federation.runs").inc()
        bare = exporters.to_prometheus_text(registry=registry, tenants={})
        assert "repro_tenant_" not in bare

    def test_snapshot_carries_tenants_slice(self, registry):
        snapshot = exporters.build_snapshot(
            registry=registry,
            ledger=obs.AccuracyLedger(),
            tenants=self._ledger(),
        )
        assert snapshot["tenants"]["analytics"]["estimates"] == 1
        # Deterministic: the snapshot JSON round-trips bit-identically.
        first = json.dumps(snapshot, sort_keys=True)
        second = json.dumps(
            exporters.build_snapshot(
                registry=registry,
                ledger=obs.AccuracyLedger(),
                tenants=self._ledger(),
            ),
            sort_keys=True,
        )
        assert first == second

    def test_text_rendering_tabulates_tenants(self, registry):
        snapshot = exporters.build_snapshot(
            registry=registry,
            ledger=obs.AccuracyLedger(),
            tenants=self._ledger(),
        )
        text = exporters.format_snapshot_text(snapshot)
        assert "tenants" in text
        assert "analytics" in text

    def test_live_exposition_defaults_to_process_ledger(self, registry):
        previous = obs.set_tenant_ledger(self._ledger())
        try:
            text = exporters.to_prometheus_text(registry=registry)
        finally:
            obs.set_tenant_ledger(previous)
        assert 'repro_tenant_queries{tenant="analytics"}' in text
