"""Exporters: Prometheus escaping and rendering, deterministic snapshots."""

import json

import pytest

from repro import obs
from repro.obs import exporters


@pytest.fixture()
def registry():
    return obs.MetricsRegistry()


class TestPrometheusText:
    def test_empty_registry_renders_empty(self, registry):
        assert exporters.to_prometheus_text(registry=registry) == ""

    def test_counter_and_gauge_lines(self, registry):
        registry.counter("federation.runs", help="completed runs").inc(3)
        registry.gauge("remedy.alpha").set(0.625)
        text = exporters.to_prometheus_text(registry=registry)
        assert "# HELP repro_federation_runs completed runs" in text
        assert "# TYPE repro_federation_runs counter" in text
        assert "repro_federation_runs 3.0" in text
        assert "repro_remedy_alpha 0.625" in text
        assert text.endswith("\n")

    def test_help_text_escaping(self, registry):
        registry.counter(
            "probe.one", help="path C:\\tmp\nsecond line"
        ).inc()
        text = exporters.to_prometheus_text(registry=registry)
        assert "# HELP repro_probe_one path C:\\\\tmp\\nsecond line" in text
        # The rendered exposition stays one line per metric family.
        help_lines = [l for l in text.splitlines() if l.startswith("# HELP")]
        assert len(help_lines) == 1

    def test_label_value_escaping(self):
        # Label values pass through the exposition escaper: backslash,
        # double quote, and newline must all be escaped.
        assert exporters._escape_label_value('a"b') == 'a\\"b'
        assert exporters._escape_label_value("a\\b") == "a\\\\b"
        assert exporters._escape_label_value("a\nb") == "a\\nb"
        assert (
            exporters._escape_label_value('q="\\x\n"') == 'q=\\"\\\\x\\n\\"'
        )

    def test_histogram_bucket_rendering(self, registry):
        histogram = registry.histogram(
            "probe.seconds", buckets=(0.1, 1.0, 10.0)
        )
        for value in (0.05, 0.5, 0.5, 5.0, 50.0):
            histogram.observe(value)
        text = exporters.to_prometheus_text(registry=registry)
        # Buckets are cumulative and the +Inf bucket equals the count.
        assert 'repro_probe_seconds_bucket{le="0.1"} 1' in text
        assert 'repro_probe_seconds_bucket{le="1.0"} 3' in text
        assert 'repro_probe_seconds_bucket{le="10.0"} 4' in text
        assert 'repro_probe_seconds_bucket{le="+Inf"} 5' in text
        assert "repro_probe_seconds_count 5" in text
        assert "repro_probe_seconds_sum 56.05" in text

    def test_metric_name_sanitization(self, registry):
        registry.counter("costing.estimate_plan.calls").inc()
        text = exporters.to_prometheus_text(registry=registry)
        assert "repro_costing_estimate_plan_calls" in text

    def test_renders_from_snapshot_dict(self, registry):
        registry.counter("federation.runs").inc()
        snapshot = registry.snapshot()
        text = exporters.to_prometheus_text(metrics=snapshot)
        assert "repro_federation_runs 1.0" in text


class TestDeterministicSnapshots:
    def _populate(self, registry, ledger, order):
        for name in order:
            registry.counter(name).inc()
        registry.histogram("probe.seconds", buckets=(1.0, 10.0)).observe(2.0)
        ledger.record(
            system="hive",
            operator="join",
            estimated_seconds=3.0,
            actual_seconds=4.0,
        )

    def test_snapshots_are_byte_comparable(self, tmp_path):
        """Same telemetry -> byte-identical file, whatever the insertion
        order (sorted keys, stable label ordering)."""
        paths = []
        for index, order in enumerate(
            (["b.two", "a.one", "c.three"], ["c.three", "b.two", "a.one"])
        ):
            registry = obs.MetricsRegistry()
            ledger = obs.AccuracyLedger()
            self._populate(registry, ledger, order)
            path = tmp_path / f"snap{index}.metrics.json"
            exporters.write_json_snapshot(path, registry=registry, ledger=ledger)
            paths.append(path)
        assert paths[0].read_bytes() == paths[1].read_bytes()

    def test_prometheus_output_is_order_independent(self):
        texts = []
        for order in (["b.two", "a.one"], ["a.one", "b.two"]):
            registry = obs.MetricsRegistry()
            for name in order:
                registry.counter(name).inc()
            texts.append(exporters.to_prometheus_text(registry=registry))
        assert texts[0] == texts[1]

    def test_snapshot_round_trip(self, tmp_path):
        registry = obs.MetricsRegistry()
        registry.counter("federation.runs").inc(2)
        path = tmp_path / "run.metrics.json"
        exporters.write_json_snapshot(path, registry=registry)
        snapshot = exporters.load_json_snapshot(path)
        assert snapshot["version"] == exporters.SNAPSHOT_VERSION
        assert snapshot["metrics"]["federation.runs"]["value"] == 2.0

    def test_load_rejects_non_snapshot(self, tmp_path):
        path = tmp_path / "junk.json"
        path.write_text(json.dumps({"foo": 1}))
        with pytest.raises(ValueError):
            exporters.load_json_snapshot(path)
