"""Tests for training sets."""

import numpy as np
import pytest

from repro.core.training import TrainingSet, grid_size
from repro.exceptions import ConfigurationError, TrainingError


@pytest.fixture()
def training_set():
    ts = TrainingSet(("rows", "size"))
    ts.add((100, 10), 1.0)
    ts.add((200, 10), 2.0)
    ts.add((100, 20), 1.5)
    return ts


class TestPopulation:
    def test_add_and_len(self, training_set):
        assert len(training_set) == 3

    def test_dimension_mismatch_rejected(self, training_set):
        with pytest.raises(TrainingError):
            training_set.add((1, 2, 3), 1.0)

    def test_negative_cost_rejected(self, training_set):
        with pytest.raises(ConfigurationError):
            training_set.add((1, 2), -0.5)

    def test_extend(self, training_set):
        other = TrainingSet(("rows", "size"))
        other.add((300, 30), 3.0)
        training_set.extend(other)
        assert len(training_set) == 4

    def test_extend_dimension_mismatch(self, training_set):
        other = TrainingSet(("x",))
        with pytest.raises(TrainingError):
            training_set.extend(other)


class TestMatrices:
    def test_feature_matrix_shape(self, training_set):
        matrix = training_set.feature_matrix()
        assert matrix.shape == (3, 2)
        assert matrix[1, 0] == 200

    def test_cost_vector(self, training_set):
        assert np.allclose(training_set.cost_vector(), [1.0, 2.0, 1.5])

    def test_empty_set_rejected(self):
        with pytest.raises(TrainingError):
            TrainingSet(("x",)).feature_matrix()


class TestTrainingCost:
    def test_cumulative_cost(self, training_set):
        assert training_set.total_training_seconds == pytest.approx(4.5)

    def test_training_curve_monotone(self, training_set):
        queries, cumulative = training_set.training_cost_curve()
        assert list(queries) == [1, 2, 3]
        assert np.all(np.diff(cumulative) >= 0)
        assert cumulative[-1] == pytest.approx(4.5)

    def test_empty_curve(self):
        ts = TrainingSet(("x",))
        assert ts.total_training_seconds == 0.0


class TestMetadata:
    def test_build_metadata_per_dimension(self, training_set):
        metadata = training_set.build_metadata()
        assert [m.name for m in metadata] == ["rows", "size"]
        assert metadata[0].min_value == 100
        assert metadata[0].max_value == 200
        assert metadata[1].step_size == 10


class TestGridSize:
    def test_product(self):
        assert grid_size([(1, 2), (1, 2, 3)]) == 6

    def test_empty_domain_rejected(self):
        with pytest.raises(ConfigurationError):
            grid_size([(1, 2), ()])
