"""The HTML health dashboard: history extraction and page rendering."""

from repro import obs
from repro.obs.alerts import Alert, AlertReport
from repro.obs.dashboard import HISTORY_POINTS, _sparkline, build_history
from repro.obs.health import SystemHealth
from repro.obs.journal import JournalEvent


def actual_event(seq, system="hive", estimated=10.0, actual=20.0):
    return JournalEvent(
        seq=seq,
        type="actual",
        payload={
            "system": system,
            "estimated_seconds": estimated,
            "actual_seconds": actual,
        },
    )


def make_health(system="hive", grade="healthy", score=0.9):
    return SystemHealth(
        system=system,
        score=score,
        grade=grade,
        components={
            "accuracy": 0.9, "drift": 1.0, "remedy": 1.0, "cache": 1.0,
        },
        observations=32,
    )


class TestBuildHistory:
    def test_q_error_series_per_system(self):
        events = [
            actual_event(1, estimated=10.0, actual=20.0),   # q = 2
            actual_event(2, estimated=30.0, actual=10.0),   # q = 3
            actual_event(3, system="spark", estimated=5.0, actual=5.0),
        ]
        history = build_history(events)
        assert history["hive"] == [2.0, 3.0]
        assert history["spark"] == [1.0]

    def test_ignores_non_actual_and_malformed_events(self):
        events = [
            JournalEvent(seq=1, type="estimate", payload={"system": "hive"}),
            actual_event(2, estimated=0.0),               # non-positive
            actual_event(3, estimated="nan?", actual=1),  # unparseable
            JournalEvent(
                seq=4,
                type="actual",
                payload={"estimated_seconds": 1.0, "actual_seconds": 1.0},
            ),                                            # no system
            actual_event(5),
        ]
        history = build_history(events)
        assert history == {"hive": [2.0]}

    def test_series_truncates_to_newest_points(self):
        events = [
            actual_event(i, estimated=float(i), actual=1.0)
            for i in range(1, HISTORY_POINTS + 11)
        ]
        history = build_history(events)
        series = history["hive"]
        assert len(series) == HISTORY_POINTS
        assert series[-1] == float(HISTORY_POINTS + 10)

    def test_custom_max_points(self):
        events = [actual_event(i, actual=10.0 * i) for i in range(1, 10)]
        history = build_history(events, max_points=3)
        assert len(history["hive"]) == 3


class TestSparkline:
    def test_short_series_renders_placeholder(self):
        assert "no history" in _sparkline([1.0])

    def test_series_renders_svg_polyline(self):
        svg = _sparkline([1.0, 2.0, 3.0])
        assert svg.startswith("<svg")
        assert "polyline" in svg

    def test_flat_series_does_not_divide_by_zero(self):
        svg = _sparkline([2.0, 2.0, 2.0])
        assert "<svg" in svg


class TestRenderDashboard:
    def test_page_is_self_contained(self):
        page = obs.render_dashboard([make_health()])
        assert page.startswith("<!doctype html>")
        assert "<style>" in page
        # No external assets whatsoever.
        assert "http://" not in page
        assert "https://" not in page
        assert 'src="' not in page

    def test_health_tiles_render_grade_and_score(self):
        page = obs.render_dashboard(
            [make_health(grade="critical", score=0.12)]
        )
        assert "grade-critical" in page
        assert "0.12" in page
        assert "hive" in page

    def test_alert_table_puts_firing_rows_first(self):
        quiet = Alert(
            rule="a-quiet", instance="hive/scan", severity="warning",
            signal="ledger:*:rmse_percent", op=">", threshold=75.0,
            value=10.0, firing=False,
        )
        firing = Alert(
            rule="z-firing", instance="hive/scan", severity="critical",
            signal="ledger:*:mean_q_error", op=">", threshold=2.5,
            value=9.0, firing=True, exemplars=("q-000042",),
        )
        page = obs.render_dashboard(
            [make_health()], report=AlertReport(alerts=(quiet, firing))
        )
        assert page.index("z-firing") < page.index("a-quiet")
        assert "q-000042" in page
        assert "sev-critical" in page

    def test_history_table_and_sparklines(self):
        page = obs.render_dashboard(
            [make_health()], history={"hive": [1.0, 2.0, 1.5]}
        )
        assert "Accuracy history" in page
        assert "<svg" in page
        assert "2.00" in page  # worst q-error column

    def test_empty_sections_render_placeholders(self):
        page = obs.render_dashboard([])
        assert "no remote-system signals yet" in page
        assert "no alert evaluation available" in page
        assert "REPRO_OBS_JOURNAL" in page

    def test_html_escapes_untrusted_names(self):
        health = make_health(system="<script>alert(1)</script>")
        page = obs.render_dashboard([health], title="<b>t</b>")
        assert "<script>alert(1)</script>" not in page
        assert "&lt;script&gt;" in page
        assert "<b>t</b>" not in page

    def test_escapes_system_named_with_markup_characters(self):
        # The satellite acceptance case: a system literally named a<b&c
        # must render as text, never as markup.
        page = obs.render_dashboard(
            [make_health(system="a<b&c")], history={"a<b&c": [1.0, 2.0, 3.0]}
        )
        assert "a<b&c" not in page
        assert "a&lt;b&amp;c" in page

    def test_escapes_alert_rule_ids_and_operators(self):
        alert = Alert(
            rule='r<img src=x>', instance="hive", severity="warning",
            signal="ledger:*:mean_q_error", op="<", threshold=0.1,
            value=0.05, firing=True,
        )
        page = obs.render_dashboard(
            [make_health()], report=AlertReport(alerts=(alert,))
        )
        assert "<img" not in page
        assert "r&lt;img" in page
        # Comparison operators are markup characters too: the op cell
        # must show &lt; 0.1, not inject a stray tag opener.
        assert "&lt; 0.1" in page


def make_windows(per_window, width=10.0):
    """Closed WindowSummary ring from per-window update dicts."""
    from repro.obs.timeseries import ManualClock, TimeSeriesAggregator

    clock = ManualClock()
    aggregator = TimeSeriesAggregator(
        width=width, clock=clock, journal=obs.NOOP_JOURNAL
    )
    for window in per_window:
        for name, (kind, value) in window.items():
            if kind == "hist":
                for observed in value:
                    aggregator.on_histogram(name, observed)
            elif kind == "counter":
                aggregator.on_counter(name, value)
            else:
                aggregator.on_gauge(name, value)
        clock.advance(width)
    aggregator.maybe_roll()
    return aggregator.windows()


class TestWindowedTelemetrySection:
    def test_windows_render_metric_rows_with_sparklines(self):
        windows = make_windows(
            [
                {"lat": ("hist", [0.01, 0.02]), "runs": ("counter", 3.0)},
                {"lat": ("hist", [0.05]), "alpha": ("gauge", 0.59)},
            ]
        )
        page = obs.render_dashboard([make_health()], windows=windows)
        assert "Windowed telemetry" in page
        assert "lat" in page
        assert "histogram" in page
        assert "counter" in page
        assert "gauge" in page

    def test_window_metric_names_are_escaped(self):
        windows = make_windows([{"m<&>": ("counter", 1.0)}])
        page = obs.render_dashboard([make_health()], windows=windows)
        assert "m<&>" not in page
        assert "m&lt;&amp;&gt;" in page

    def test_no_windows_renders_placeholder(self):
        page = obs.render_dashboard([make_health()], windows=())
        assert "Windowed telemetry" in page
        assert "REPRO_OBS_WINDOW" in page

    def test_windows_none_omits_the_section(self):
        page = obs.render_dashboard([make_health()])
        assert "Windowed telemetry" not in page


class TestHistoryFromWindows:
    def test_per_system_series_from_q_error_histograms(self):
        from repro.obs.dashboard import history_from_windows

        windows = make_windows(
            [
                {"accuracy.q_error.hive": ("hist", [2.0])},
                {
                    "accuracy.q_error.hive": ("hist", [4.0]),
                    "accuracy.q_error.spark": ("hist", [1.5]),
                },
            ]
        )
        history = history_from_windows(windows)
        assert history["hive"] == [2.0, 4.0]
        assert history["spark"] == [1.5]

    def test_ignores_unrelated_metrics_and_truncates(self):
        from repro.obs.dashboard import history_from_windows

        windows = make_windows(
            [{"lat": ("hist", [0.1]),
              "accuracy.q_error.hive": ("hist", [float(i + 1)])}
             for i in range(6)]
        )
        history = history_from_windows(windows, max_points=3)
        assert set(history) == {"hive"}
        assert history["hive"] == [4.0, 5.0, 6.0]


class TestTenantSection:
    def _tenants(self):
        return {
            "adhoc": {
                "queries": 4, "errors": 1, "estimated_seconds": 9.0,
                "mean_q_error": 1.5, "max_q_error": 3.0, "kept_traces": 2,
            },
            "etl": {
                "queries": 8, "errors": 0, "estimated_seconds": 2.0,
                "mean_q_error": 1.1, "max_q_error": 1.2, "kept_traces": 1,
            },
        }

    def test_tenant_table_ranked_by_estimated_cost(self):
        page = obs.render_dashboard([make_health()], tenants=self._tenants())
        assert "Tenants" in page
        # adhoc spends 9.0 estimated seconds vs etl's 2.0 -> listed first.
        assert page.index("<code>adhoc</code>") < page.index("<code>etl</code>")
        assert "1.500" in page  # adhoc's mean q-error

    def test_empty_tenant_dict_renders_hint(self):
        page = obs.render_dashboard([make_health()], tenants={})
        assert "Tenants" in page
        assert "no attributed traffic yet" in page

    def test_none_tenants_omit_the_section(self):
        page = obs.render_dashboard([make_health()])
        assert "Tenants" not in page

    def test_tenant_names_are_escaped(self):
        tenants = {"a<script>x</script>": {"queries": 1}}
        page = obs.render_dashboard([make_health()], tenants=tenants)
        assert "<script>x</script>" not in page


class TestProfilingSection:
    def test_profile_stacks_render_flamegraph_fragment(self):
        stacks = {"[serve];repro.serve.loop;repro.core.estimate": 9}
        page = obs.render_dashboard([make_health()], profile=stacks)
        assert "Continuous profiling" in page
        assert "9 sampled stacks" in page
        assert "/profile.html" in page
        assert 'class="flame"' in page
        assert "repro.core.estimate" in page

    def test_empty_profile_renders_running_hint(self):
        page = obs.render_dashboard([make_health()], profile={})
        assert "Continuous profiling" in page
        assert "sampler running, no samples yet" in page

    def test_none_profile_omits_the_section(self):
        page = obs.render_dashboard([make_health()])
        assert "Continuous profiling" not in page

    def test_profile_frame_names_are_escaped(self):
        stacks = {"[serve];<img src=x>": 100}
        page = obs.render_dashboard([make_health()], profile=stacks)
        assert "<img src=x>" not in page
        assert "&lt;img src=x&gt;" in page
