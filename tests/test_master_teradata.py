"""Tests for the master's in-house cost model (polymorphic estimate())."""

import pytest

from repro.core.operators import (
    AggregateOperatorStats,
    JoinOperatorStats,
    ScanOperatorStats,
)
from repro.master.teradata import TeradataCostModel, TeradataTuning

GIB = 1024**3


@pytest.fixture()
def model():
    return TeradataCostModel()


def join_stats(r_rows=1_000_000, s_rows=10_000, size=100):
    return JoinOperatorStats(
        row_size_r=size,
        num_rows_r=r_rows,
        row_size_s=size,
        num_rows_s=s_rows,
        projected_size_r=size,
        projected_size_s=size,
        num_output_rows=s_rows,
    )


class TestJoinCost:
    def test_positive_and_monotone(self, model):
        small = model.estimate(join_stats(r_rows=1_000_000))
        large = model.estimate(join_stats(r_rows=8_000_000))
        assert 0 < small < large

    def test_spill_penalty(self):
        tight = TeradataCostModel(TeradataTuning(workspace_budget=1024))
        roomy = TeradataCostModel(TeradataTuning(workspace_budget=64 * GIB))
        stats = join_stats(s_rows=1_000_000)
        assert tight.estimate(stats) > roomy.estimate(stats)

    def test_much_faster_than_typical_remote(self, model):
        """The MPP master beats the small VM Hive cluster per operator —
        the premise that makes placement decisions non-trivial."""
        cost = model.estimate(join_stats())
        assert cost < 5.0


class TestOtherOperators:
    def test_aggregate(self, model):
        stats = AggregateOperatorStats(
            num_input_rows=1_000_000,
            input_row_size=100,
            num_output_rows=1000,
            output_row_size=12,
        )
        assert model.estimate(stats) > 0

    def test_scan(self, model):
        stats = ScanOperatorStats(
            num_input_rows=1_000_000,
            input_row_size=100,
            num_output_rows=100,
            output_row_size=8,
        )
        assert model.estimate(stats) > 0

    def test_sort_helper(self, model):
        assert model.sort_seconds(0) == 0.0
        assert model.sort_seconds(1_000_000) > model.sort_seconds(1_000)


class TestPerKindMethodsGone:
    def test_only_polymorphic_entry_point(self, model):
        """The pre-redesign per-kind methods left with the PR-3 shims."""
        for old_name in ("estimate_join", "estimate_aggregate", "estimate_scan"):
            assert not hasattr(model, old_name)
