"""Tests for OLS and segmented regression."""

import numpy as np
import pytest

from repro.exceptions import ConfigurationError, ModelNotTrainedError, TrainingError
from repro.ml.linear import LinearRegression, SegmentedLinearRegression


class TestLinearRegression:
    def test_recovers_coefficients(self):
        rng = np.random.default_rng(0)
        x = rng.uniform(0, 10, size=(50, 2))
        y = 3 * x[:, 0] - 2 * x[:, 1] + 7
        model = LinearRegression().fit(x, y)
        assert model.coefficients == pytest.approx([3.0, -2.0])
        assert model.intercept == pytest.approx(7.0)
        assert model.r2(x, y) == pytest.approx(1.0)

    def test_single_feature_slope(self):
        x = np.array([1.0, 2.0, 3.0])
        y = 2 * x + 1
        model = LinearRegression().fit(x, y)
        assert model.slope == pytest.approx(2.0)
        assert model.intercept == pytest.approx(1.0)

    def test_extrapolation_is_linear(self):
        """The property the sub-op approach relies on (§4)."""
        x = np.array([100.0, 200.0, 400.0, 800.0])
        y = 0.03 * x + 0.7
        model = LinearRegression().fit(x, y)
        assert model.predict(np.array([[10_000.0]]))[0] == pytest.approx(300.7)

    def test_predict_before_fit_rejected(self):
        with pytest.raises(ModelNotTrainedError):
            LinearRegression().predict(np.ones((2, 1)))

    def test_too_few_samples_rejected(self):
        with pytest.raises(TrainingError):
            LinearRegression().fit(np.ones((2, 3)), np.ones(2))

    def test_mismatched_rows_rejected(self):
        with pytest.raises(TrainingError):
            LinearRegression().fit(np.ones((3, 1)), np.ones(4))

    def test_slope_only_single_feature(self):
        x = np.ones((5, 2)) * np.arange(5).reshape(-1, 1)
        model = LinearRegression().fit(x, np.arange(5.0))
        with pytest.raises(ConfigurationError):
            _ = model.slope

    def test_feature_count_mismatch_at_predict(self):
        model = LinearRegression().fit(np.arange(5.0), np.arange(5.0))
        with pytest.raises(ConfigurationError):
            model.predict(np.ones((2, 3)))


class TestSegmentedRegression:
    @staticmethod
    def two_regime_data():
        """Synthetic HashBuild-like data: slope change at x = 500."""
        x = np.array([40, 70, 100, 250, 400, 500, 600, 700, 800, 900, 1000], float)
        y = np.where(x <= 500, 0.02 * x + 18, 0.18 * x - 50)
        return x, y

    def test_finds_breakpoint(self):
        x, y = self.two_regime_data()
        model = SegmentedLinearRegression().fit(x, y)
        assert 400 <= model.breakpoint <= 600

    def test_segment_slopes(self):
        x, y = self.two_regime_data()
        model = SegmentedLinearRegression().fit(x, y)
        low, high = model.segments
        assert low.slope == pytest.approx(0.02, abs=0.005)
        assert high.slope == pytest.approx(0.18, abs=0.01)

    def test_prediction_routes_by_regime(self):
        x, y = self.two_regime_data()
        model = SegmentedLinearRegression().fit(x, y)
        assert model.predict(np.array([100.0]))[0] == pytest.approx(20.0, abs=1.0)
        assert model.predict(np.array([900.0]))[0] == pytest.approx(112.0, abs=3.0)

    def test_single_regime_data_still_fits(self):
        x = np.linspace(1, 100, 20)
        y = 2 * x + 3
        model = SegmentedLinearRegression().fit(x, y)
        pred = model.predict(np.array([50.0]))[0]
        assert pred == pytest.approx(103.0, rel=0.02)

    def test_too_few_samples_rejected(self):
        with pytest.raises(TrainingError):
            SegmentedLinearRegression(min_segment_points=3).fit(
                np.arange(5.0), np.arange(5.0)
            )

    def test_all_ties_rejected(self):
        with pytest.raises(TrainingError):
            SegmentedLinearRegression().fit(np.ones(10), np.arange(10.0))

    def test_predict_before_fit_rejected(self):
        with pytest.raises(ModelNotTrainedError):
            SegmentedLinearRegression().predict(np.array([1.0]))

    def test_min_segment_validation(self):
        with pytest.raises(ConfigurationError):
            SegmentedLinearRegression(min_segment_points=1)
