"""Tests for table specifications."""

import pytest

from repro.data.schema import paper_schema
from repro.data.table import TableSpec
from repro.exceptions import ConfigurationError


@pytest.fixture()
def schema():
    return paper_schema(100)


class TestTableSpec:
    def test_row_size_defaults_to_schema_width(self, schema):
        spec = TableSpec(name="t", schema=schema, num_rows=10)
        assert spec.byte_row_size == 100

    def test_size_bytes(self, schema):
        spec = TableSpec(name="t", schema=schema, num_rows=1000, row_size=100)
        assert spec.size_bytes == 100_000

    def test_rejects_negative_rows(self, schema):
        with pytest.raises(ConfigurationError):
            TableSpec(name="t", schema=schema, num_rows=-1)

    def test_rejects_unknown_partition_column(self, schema):
        with pytest.raises(ConfigurationError):
            TableSpec(name="t", schema=schema, num_rows=1, partitioned_by="nope")

    def test_rejects_unknown_sort_column(self, schema):
        with pytest.raises(ConfigurationError):
            TableSpec(name="t", schema=schema, num_rows=1, sorted_by="nope")

    def test_with_location(self, schema):
        spec = TableSpec(name="t", schema=schema, num_rows=5, location="hive")
        moved = spec.with_location("teradata")
        assert moved.location == "teradata"
        assert moved.name == spec.name
        assert moved.num_rows == spec.num_rows
        assert spec.location == "hive"  # original untouched

    def test_projected_row_size(self, schema):
        spec = TableSpec(name="t", schema=schema, num_rows=5)
        assert spec.projected_row_size(("a1", "a2")) == 8

    def test_layout_hints(self, schema):
        spec = TableSpec(
            name="t",
            schema=schema,
            num_rows=5,
            partitioned_by="a1",
            sorted_by="a1",
        )
        assert spec.partitioned_by == "a1"
        assert spec.sorted_by == "a1"

    def test_grown_scales_rows_only(self, schema):
        spec = TableSpec(name="t", schema=schema, num_rows=1_000)
        grown = spec.grown(2.5)
        assert grown.num_rows == 2_500
        assert grown.name == spec.name
        assert grown.row_size == spec.row_size
        assert spec.num_rows == 1_000  # original untouched

    def test_grown_rejects_nonpositive_factor(self, schema):
        spec = TableSpec(name="t", schema=schema, num_rows=10)
        with pytest.raises(ConfigurationError):
            spec.grown(0.0)
