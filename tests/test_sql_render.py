"""Tests for SQL rendering, including parse/render round-trips."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.exceptions import ConfigurationError
from repro.sql.ast import column, lit
from repro.sql.builder import scan
from repro.sql.logical import Aggregate, Filter, Join, Scan
from repro.sql.parser import parse_select
from repro.sql.render import render_expression, render_plan


def normalized(plan):
    """Structural signature for plan equivalence (qualifier-insensitive)."""
    if isinstance(plan, Scan):
        return ("scan", plan.table, plan.projection, _pred_sig(plan.predicate))
    if isinstance(plan, Join):
        return (
            "join",
            normalized(plan.left),
            normalized(plan.right),
            plan.condition.left_column,
            plan.condition.right_column,
            plan.projection,
            _pred_sig(plan.extra_predicate),
        )
    if isinstance(plan, Aggregate):
        return (
            "agg",
            normalized(plan.input),
            plan.group_by,
            tuple(str(a) for a in plan.aggregates),
        )
    if isinstance(plan, Filter):
        return ("filter", normalized(plan.input), _pred_sig(plan.predicate))
    return ("other", type(plan).__name__)


def _pred_sig(predicate):
    if predicate is None:
        return None
    # Qualifier-insensitive textual form.
    import re

    text = str(predicate)
    for junk in ("(", ")", " "):
        text = text.replace(junk, "")
    text = re.sub(r"\b\w+\.", "", text)
    return tuple(sorted(text.replace("AND", "&").split("&")))


def roundtrip(sql: str):
    first = parse_select(sql)
    second = parse_select(render_plan(first))
    assert normalized(second) == normalized(first), render_plan(first)
    return render_plan(first)


class TestExpressionRendering:
    def test_literals(self):
        assert render_expression(lit(5)) == "5"
        assert render_expression(lit(2.5)) == "2.5"
        assert render_expression(lit("o'brien")) == "'o''brien'"

    def test_arithmetic_and_comparison(self):
        expr = (column("a1", "r") + column("z", "s")).lt(lit(100))
        assert render_expression(expr) == "(r.a1 + s.z) < 100"

    def test_aggregate_call(self):
        from repro.sql.ast import AggregateCall, AggregateKind

        assert render_expression(AggregateCall(AggregateKind.COUNT)) == "COUNT(*)"


class TestPlanRendering:
    def test_plain_scan(self):
        assert render_plan(parse_select("SELECT * FROM t")) == "SELECT * FROM t"

    def test_scan_with_pushdown(self):
        sql = roundtrip("SELECT a1, a2 FROM t WHERE a1 < 100")
        assert "WHERE" in sql and "a1, a2" in sql

    def test_join_roundtrip(self):
        roundtrip(
            "SELECT r.a1 FROM t1000000_100 r JOIN t10000_100 s "
            "ON r.a1 = s.a1 AND r.a1 + s.z < 5000"
        )

    def test_three_way_join_roundtrip(self):
        roundtrip(
            "SELECT * FROM t1 a JOIN t2 b ON a.a1 = b.a1 "
            "JOIN t3 c ON b.a2 = c.a2"
        )

    def test_aggregate_roundtrip(self):
        sql = roundtrip("SELECT SUM(a1), SUM(a2) FROM t GROUP BY a5")
        assert sql.startswith("SELECT SUM(a1), SUM(a2) FROM t")
        assert sql.endswith("GROUP BY a5")

    def test_aggregate_over_join_roundtrip(self):
        roundtrip(
            "SELECT SUM(a1) FROM r JOIN s ON r.a1 = s.a1 GROUP BY a5"
        )

    def test_builder_plans_render(self):
        plan = (
            scan("big")
            .join("small", on=("a1", "a1"), extra=column("a2").lt(9))
            .plan()
        )
        sql = render_plan(plan)
        assert sql == (
            "SELECT * FROM big JOIN small ON big.a1 = small.a1 AND a2 < 9"
        )
        parse_select(sql)

    def test_filter_over_join_renders_as_where(self):
        plan = Filter(
            input=parse_select("SELECT * FROM r JOIN s ON r.a1 = s.a1"),
            predicate=column("a1").lt(1),
        )
        sql = render_plan(plan)
        assert "WHERE a1 < 1" in sql
        parse_select(sql)

    def test_bushy_join_not_renderable(self):
        left = parse_select("SELECT * FROM a JOIN b ON a.a1 = b.a1")
        right = parse_select("SELECT * FROM c JOIN d ON c.a1 = d.a1")
        from repro.sql.logical import JoinCondition

        bushy = Join(
            left=left, right=right, condition=JoinCondition("a1", "a1")
        )
        with pytest.raises(ConfigurationError):
            render_plan(bushy)


_COLUMNS = st.sampled_from(["a1", "a2", "a5", "a10"])
_TABLES = st.sampled_from(["t10000_40", "t10000_100", "t100000_40"])


@st.composite
def random_select(draw):
    """Random SQL in the library's dialect."""
    tables = draw(st.lists(_TABLES, min_size=1, max_size=3, unique=True))
    aliases = [f"x{i}" for i in range(len(tables))]
    sql = f"SELECT"
    if draw(st.booleans()):
        group = draw(_COLUMNS)
        sql += f" SUM({draw(_COLUMNS)})"
        tail = f" GROUP BY {group}"
    else:
        sql += " *"
        tail = ""
    sql += f" FROM {tables[0]} {aliases[0]}"
    for i in range(1, len(tables)):
        left = draw(st.integers(min_value=0, max_value=i - 1))
        col = draw(_COLUMNS)
        sql += f" JOIN {tables[i]} {aliases[i]} ON {aliases[left]}.{col} = {aliases[i]}.{col}"
        if draw(st.booleans()):
            sql += f" AND {aliases[left]}.a1 + {aliases[i]}.z < {draw(st.integers(1, 10_000))}"
    if len(tables) == 1 and draw(st.booleans()):
        sql += f" WHERE a1 < {draw(st.integers(1, 10_000))}"
    return sql + tail


class TestRoundTripProperty:
    @settings(max_examples=60, deadline=None)
    @given(sql=random_select())
    def test_parse_render_parse_is_stable(self, sql):
        roundtrip(sql)
