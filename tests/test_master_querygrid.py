"""Tests for the QueryGrid transfer cost model."""

import pytest

from repro.exceptions import ConfigurationError
from repro.master.querygrid import QueryGrid, TERADATA

MIB = 1024**2


class TestTransferModel:
    def test_zero_rows_free(self):
        grid = QueryGrid()
        assert grid.transfer_seconds(0, 100) == 0.0

    def test_scales_with_payload(self):
        grid = QueryGrid(
            bandwidth=100 * MIB, connection_latency=0.0, per_row_overhead_us=0.0
        )
        rows = (100 * MIB) // 100
        assert grid.transfer_seconds(rows, 100) == pytest.approx(1.0)

    def test_connection_latency_fixed(self):
        grid = QueryGrid(connection_latency=2.0)
        one = grid.transfer_seconds(1, 1)
        assert one >= 2.0

    def test_per_row_overhead(self):
        grid = QueryGrid(
            bandwidth=1e12, connection_latency=0.0, per_row_overhead_us=1.0
        )
        assert grid.transfer_seconds(1_000_000, 1) == pytest.approx(1.0)

    def test_negative_rejected(self):
        with pytest.raises(ConfigurationError):
            QueryGrid().transfer_seconds(-1, 100)

    def test_invalid_config(self):
        with pytest.raises(ConfigurationError):
            QueryGrid(bandwidth=0)


class TestRouting:
    def test_same_system_free(self):
        grid = QueryGrid()
        est = grid.estimate("hive", "hive", 1000, 100)
        assert est.seconds == 0.0

    def test_master_link_single_hop(self):
        grid = QueryGrid()
        est = grid.estimate("hive", TERADATA, 1000, 100)
        assert est.seconds == pytest.approx(grid.transfer_seconds(1000, 100))

    def test_remote_to_remote_double_hop(self):
        """§2: data moves only through the master."""
        grid = QueryGrid()
        direct = grid.estimate("hive", TERADATA, 1000, 100).seconds
        routed = grid.estimate("hive", "spark", 1000, 100).seconds
        assert routed == pytest.approx(2 * direct)

    def test_estimate_carries_shape(self):
        est = QueryGrid().estimate("hive", TERADATA, 10, 100)
        assert est.total_bytes == 1000
        assert est.source == "hive"
        assert est.destination == TERADATA
