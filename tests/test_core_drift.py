"""Tests for remote-system drift detection."""

import numpy as np
import pytest

from repro.core import (
    ClusterInfo,
    CostEstimationModule,
    RemoteSystemProfile,
    SubOpTrainer,
)
from repro.core.drift import DriftMonitor
from repro.data import Catalog, build_paper_corpus
from repro.engines import HiveEngine
from repro.engines.execution import EngineTuning
from repro.exceptions import ConfigurationError
from repro.sql.parser import parse_select


class TestMonitorMechanics:
    def test_baseline_phase_never_flags(self):
        monitor = DriftMonitor(baseline_window=10)
        rng = np.random.default_rng(0)
        for _ in range(9):
            report = monitor.observe(10.0, 10.0 * rng.uniform(0.9, 1.1))
            assert not report.drifted
            assert not report.baseline_ready

    def test_stable_stream_never_flags(self):
        monitor = DriftMonitor(baseline_window=20)
        rng = np.random.default_rng(1)
        for _ in range(300):
            actual = 10.0 * float(rng.lognormal(mean=0.05, sigma=0.05))
            report = monitor.observe(10.0, actual)
        assert not report.drifted

    def test_sustained_slowdown_flags(self):
        monitor = DriftMonitor(baseline_window=20)
        rng = np.random.default_rng(2)
        for _ in range(20):
            monitor.observe(10.0, 10.0 * float(rng.lognormal(0, 0.05)))
        # The remote system got 40% slower (e.g. a node was removed).
        report = monitor.report()
        for _ in range(40):
            report = monitor.observe(10.0, 14.0 * float(rng.lognormal(0, 0.05)))
            if report.drifted:
                break
        assert report.drifted
        assert report.direction == "slower"

    def test_sustained_speedup_flags(self):
        monitor = DriftMonitor(baseline_window=20)
        rng = np.random.default_rng(3)
        for _ in range(20):
            monitor.observe(10.0, 10.0 * float(rng.lognormal(0, 0.05)))
        report = monitor.report()
        for _ in range(40):
            report = monitor.observe(10.0, 7.0 * float(rng.lognormal(0, 0.05)))
            if report.drifted:
                break
        assert report.drifted
        assert report.direction == "faster"

    def test_single_outlier_does_not_flag(self):
        monitor = DriftMonitor(baseline_window=20)
        rng = np.random.default_rng(4)
        for _ in range(20):
            monitor.observe(10.0, 10.0 * float(rng.lognormal(0, 0.05)))
        monitor.observe(10.0, 100.0)  # one pathological query
        for _ in range(30):
            report = monitor.observe(10.0, 10.0 * float(rng.lognormal(0, 0.05)))
        assert not report.drifted

    def test_benign_bias_absorbed_by_baseline(self):
        """A constant 10% overestimation (the sub-op trend) is healthy."""
        monitor = DriftMonitor(baseline_window=20)
        rng = np.random.default_rng(5)
        for _ in range(120):
            report = monitor.observe(11.0, 10.0 * float(rng.lognormal(0, 0.05)))
        assert not report.drifted

    def test_reset(self):
        monitor = DriftMonitor(baseline_window=5)
        for _ in range(5):
            monitor.observe(10.0, 10.0)
        for _ in range(50):
            monitor.observe(10.0, 25.0)
        assert monitor.drifted
        monitor.reset()
        assert not monitor.drifted
        assert monitor.report().num_observations == 0

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            DriftMonitor(baseline_window=2)
        with pytest.raises(ConfigurationError):
            DriftMonitor(threshold=0)
        with pytest.raises(ConfigurationError):
            DriftMonitor().observe(0.0, 1.0)

    def test_reset_reenters_baseline_phase(self):
        monitor = DriftMonitor(baseline_window=5)
        for _ in range(5):
            monitor.observe(10.0, 10.0)
        assert monitor.report().baseline_ready
        monitor.reset()
        report = monitor.report()
        assert not report.baseline_ready
        assert report.num_observations == 0
        assert report.statistic == 0.0
        assert report.direction is None
        # The monitor is fully reusable: a fresh baseline fits and a new
        # sustained shift is detected again.
        for _ in range(5):
            monitor.observe(10.0, 10.0)
        assert monitor.report().baseline_ready
        for _ in range(50):
            report = monitor.observe(10.0, 25.0)
            if report.drifted:
                break
        assert report.drifted

    def test_zero_variance_baseline_floors_at_min_std(self):
        """Identical actuals give variance 0; min_std must keep the
        standardization finite instead of dividing by zero."""
        monitor = DriftMonitor(baseline_window=5, min_std=0.02)
        for _ in range(5):
            monitor.observe(10.0, 10.0)
        assert monitor._std == monitor.min_std
        # Detection still works on the degenerate baseline.
        report = monitor.report()
        for _ in range(20):
            report = monitor.observe(10.0, 12.0)
            if report.drifted:
                break
        assert report.drifted
        assert report.direction == "slower"

    def test_zero_variance_baseline_ignores_sub_slack_noise(self):
        """With the floored std, shifts below the slack allowance must
        still be absorbed — the floor must not make the monitor jumpy."""
        monitor = DriftMonitor(baseline_window=5, min_std=0.02, slack=0.75)
        for _ in range(5):
            monitor.observe(10.0, 10.0)
        # log(10.1/10) ~ 0.00995 -> z ~ 0.5, below slack: never accumulates.
        for _ in range(200):
            report = monitor.observe(10.0, 10.1)
        assert not report.drifted


class TestJournalAttribution:
    def test_drift_event_carries_system_and_query_id(self, tmp_path):
        from repro import obs

        journal = obs.EventJournal(tmp_path / "j.jsonl")
        previous = obs.set_journal(journal)
        try:
            monitor = DriftMonitor(baseline_window=5, name="hive")
            for _ in range(5):
                monitor.observe(10.0, 10.0)
            with obs.query_context(query_id="q-000099"):
                for _ in range(50):
                    if monitor.observe(10.0, 25.0).drifted:
                        break
            journal.close()
        finally:
            obs.set_journal(previous)
        events = obs.read_journal(tmp_path / "j.jsonl").events
        drift_events = [e for e in events if e.type == "drift"]
        assert len(drift_events) == 1
        assert drift_events[0].payload["system"] == "hive"
        assert drift_events[0].payload["query_id"] == "q-000099"

    def test_unnamed_monitor_outside_context_omits_query_id(self, tmp_path):
        from repro import obs

        journal = obs.EventJournal(tmp_path / "j.jsonl")
        previous = obs.set_journal(journal)
        try:
            monitor = DriftMonitor(baseline_window=5)
            for _ in range(5):
                monitor.observe(10.0, 10.0)
            for _ in range(50):
                if monitor.observe(10.0, 25.0).drifted:
                    break
            journal.close()
        finally:
            obs.set_journal(previous)
        events = obs.read_journal(tmp_path / "j.jsonl").events
        drift_events = [e for e in events if e.type == "drift"]
        assert drift_events[0].payload["system"] == ""
        assert "query_id" not in drift_events[0].payload


class TestModuleIntegration:
    def test_cluster_change_detected_end_to_end(self, cluster_info):
        """Train costing on one engine configuration, then the cluster
        'degrades' (slower tuning); feedback observations flag drift."""
        corpus = build_paper_corpus(
            row_counts=(100_000, 1_000_000, 4_000_000), row_sizes=(100, 1000)
        )
        engine = HiveEngine(seed=0)
        catalog = Catalog()
        for spec in corpus:
            engine.load_table(spec)
            catalog.register(spec)
        module = CostEstimationModule()
        module.register_system(
            engine, RemoteSystemProfile(name="hive", cluster=cluster_info)
        )
        module.train_sub_op("hive")

        plans = [
            parse_select(
                f"SELECT * FROM t4000000_{size} r JOIN t{rows}_{size} s "
                "ON r.a1 = s.a1"
            )
            for size in (100, 1000)
            for rows in (100_000, 1_000_000)
        ]
        # Healthy phase: estimates and actuals agree.
        for _ in range(10):
            for plan in plans:
                estimate = module.estimate_plan("hive", plan, catalog)
                actual = engine.execute(plan).elapsed_seconds
                module.record_actual("hive", estimate, actual)
        assert not module.drift_report("hive").drifted

        # The cluster degrades: a much slower engine answers from now on.
        slow = HiveEngine(
            seed=1,
            tuning=EngineTuning(
                job_startup=3.0,
                wave_startup=0.6,
                overlap_factor=0.93,
                noise_sigma=0.04,
            ),
        )
        for spec in corpus:
            slow.load_table(spec)
        slow.env.kernels = HiveEngine(seed=1).env.kernels  # same kernels
        drifted = False
        for _ in range(20):
            for plan in plans:
                estimate = module.estimate_plan("hive", plan, catalog)
                actual = slow.execute(plan).elapsed_seconds * 1.5
                module.record_actual("hive", estimate, actual)
            if module.drift_report("hive").drifted:
                drifted = True
                break
        assert drifted
        assert module.drift_report("hive").direction == "slower"

        module.reset_drift("hive")
        assert not module.drift_report("hive").drifted
