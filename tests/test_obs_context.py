"""Query-scoped trace context: id minting, head sampling, exemplars,
and the propagation contract with the tracer."""

import threading

import pytest

from repro import obs
from repro.obs import context as ctx


@pytest.fixture(autouse=True)
def _fresh_context_state():
    """Isolate query ids, sampler, and exemplars per test."""
    obs.reset_query_ids()
    previous_sampler = obs.set_sampler(ctx.HeadSampler(rate=1.0))
    previous_store = obs.set_exemplar_store(ctx.ExemplarStore())
    previous_ledger = obs.set_tenant_ledger(obs.TenantLedger())
    yield
    obs.set_tenant_ledger(previous_ledger)
    obs.set_sampler(previous_sampler)
    obs.set_exemplar_store(previous_store)
    obs.reset_query_ids()


class TestQueryContext:
    def test_no_context_outside_scope(self):
        assert obs.current_context() is None
        assert obs.current_query_id() is None
        assert obs.current_sampled() is True

    def test_ids_are_monotonic_and_resettable(self):
        with obs.query_context() as first:
            pass
        with obs.query_context() as second:
            pass
        assert first.query_id == "q-000001"
        assert second.query_id == "q-000002"
        obs.reset_query_ids()
        with obs.query_context() as again:
            assert again.query_id == "q-000001"

    def test_scope_installs_and_restores(self):
        with obs.query_context(query="SELECT 1") as context:
            assert obs.current_context() is context
            assert obs.current_query_id() == context.query_id
            assert context.query == "SELECT 1"
        assert obs.current_context() is None

    def test_explicit_query_id_wins(self):
        with obs.query_context(query_id="q-custom") as context:
            assert context.query_id == "q-custom"

    def test_ensure_joins_active_scope(self):
        with obs.query_context() as outer:
            with obs.ensure_query_context() as inner:
                assert inner is outer
                assert obs.current_query_id() == outer.query_id
            # Leaving the joined scope must not tear down the outer one.
            assert obs.current_context() is outer

    def test_ensure_mints_when_no_scope(self):
        with obs.ensure_query_context(query="SELECT 2") as context:
            assert context.query_id == "q-000001"
            assert obs.current_context() is context
        assert obs.current_context() is None

    def test_nested_new_scopes_restore_parent(self):
        with obs.query_context() as outer:
            with obs.query_context() as inner:
                assert obs.current_query_id() == inner.query_id
            assert obs.current_query_id() == outer.query_id

    def test_counts_opened_queries(self):
        registry = obs.MetricsRegistry()
        previous = obs.set_registry(registry)
        try:
            with obs.query_context():
                pass
            with obs.query_context():
                pass
            assert registry.counter("context.queries").value == 2.0
        finally:
            obs.set_registry(previous)

    def test_context_propagates_across_threads_via_copy_context(self):
        import contextvars

        seen = {}

        def probe():
            seen["query_id"] = obs.current_query_id()

        with obs.query_context() as context:
            snapshot = contextvars.copy_context()
            thread = threading.Thread(target=lambda: snapshot.run(probe))
            thread.start()
            thread.join()
        assert seen["query_id"] == context.query_id

    def test_build_then_adopt_across_threads(self):
        """The serving handoff: mint at admission, adopt on a worker."""
        context = obs.build_query_context(query="SELECT 1", tenant="etl")
        assert obs.current_context() is None  # minting does not install
        seen = {}

        def worker():
            with obs.adopt_context(context) as adopted:
                seen["query_id"] = obs.current_query_id()
                seen["tenant"] = obs.current_tenant()
                seen["same"] = adopted is context

        thread = threading.Thread(target=worker)
        thread.start()
        thread.join()
        assert seen == {
            "query_id": context.query_id,
            "tenant": "etl",
            "same": True,
        }
        assert obs.current_context() is None

    def test_adopted_scope_runs_completion_hooks(self):
        outcomes = []

        def hook(outcome, decision):
            outcomes.append(outcome)

        obs.add_completion_hook(hook)
        try:
            context = obs.build_query_context(query="SELECT 1", tenant="adhoc")
            with obs.adopt_context(context):
                pass
        finally:
            obs.remove_completion_hook(hook)
        assert len(outcomes) == 1
        assert outcomes[0].tenant == "adhoc"


class TestHeadSampler:
    def test_rate_one_samples_everything(self):
        sampler = ctx.HeadSampler(rate=1.0)
        assert all(sampler.decide() for _ in range(10))

    def test_rate_zero_samples_nothing(self):
        sampler = ctx.HeadSampler(rate=0.0)
        assert not any(sampler.decide() for _ in range(10))

    def test_rate_quarter_keeps_every_fourth_deterministically(self):
        sampler = ctx.HeadSampler(rate=0.25)
        decisions = [sampler.decide() for _ in range(12)]
        assert decisions == [False, False, False, True] * 3

    def test_invalid_rate_rejected(self):
        with pytest.raises(ValueError):
            ctx.HeadSampler(rate=1.5)
        with pytest.raises(ValueError):
            ctx.HeadSampler(rate=-0.1)

    def test_reset_restarts_the_accumulator(self):
        sampler = ctx.HeadSampler(rate=0.5)
        first = [sampler.decide() for _ in range(4)]
        sampler.reset()
        assert [sampler.decide() for _ in range(4)] == first

    def test_env_var_configures_default_sampler(self, monkeypatch):
        monkeypatch.setenv(ctx.SAMPLE_ENV_VAR, "0.5")
        obs.set_sampler(None)  # force re-read of the environment
        try:
            assert obs.get_sampler().rate == 0.5
        finally:
            obs.set_sampler(ctx.HeadSampler(rate=1.0))

    def test_invalid_env_var_falls_back_to_full_sampling(self, monkeypatch):
        monkeypatch.setenv(ctx.SAMPLE_ENV_VAR, "not-a-number")
        obs.set_sampler(None)
        try:
            assert obs.get_sampler().rate == 1.0
        finally:
            obs.set_sampler(ctx.HeadSampler(rate=1.0))

    def test_unsampled_queries_counted(self):
        registry = obs.MetricsRegistry()
        previous = obs.set_registry(registry)
        obs.set_sampler(ctx.HeadSampler(rate=0.0))
        try:
            with obs.query_context():
                pass
            assert registry.counter("context.unsampled_queries").value == 1.0
        finally:
            obs.set_registry(previous)


class TestTracerIntegration:
    def test_unsampled_context_collapses_spans_to_noop(self):
        tracer = obs.Tracer()
        tracer.enable()
        with obs.query_context(sampled=False):
            span = tracer.span("probe")
        assert span is obs.NOOP_SPAN

    def test_sampled_span_carries_the_query_id(self):
        tracer = obs.Tracer()
        tracer.enable()
        with obs.query_context(sampled=True) as context:
            with tracer.span("probe") as span:
                pass
        assert span.attributes["query_id"] == context.query_id

    def test_explicit_query_id_attribute_is_not_overwritten(self):
        tracer = obs.Tracer()
        tracer.enable()
        with obs.query_context(sampled=True):
            with tracer.span("probe", query_id="explicit") as span:
                pass
        assert span.attributes["query_id"] == "explicit"

    def test_disabled_tracer_stays_noop_regardless_of_context(self):
        tracer = obs.Tracer()
        with obs.query_context(sampled=True):
            assert tracer.span("probe") is obs.NOOP_SPAN

    def test_spans_outside_any_context_record_normally(self):
        tracer = obs.Tracer()
        tracer.enable()
        with tracer.span("probe") as span:
            pass
        assert "query_id" not in span.attributes


class TestExemplarStore:
    def test_record_and_recent(self):
        store = ctx.ExemplarStore(per_key=3)
        for qid in ("q-1", "q-2", "q-3"):
            store.record("hive", qid)
        assert store.recent("hive") == ("q-1", "q-2", "q-3")
        assert store.recent("spark") == ()

    def test_ring_buffer_drops_oldest(self):
        store = ctx.ExemplarStore(per_key=2)
        for qid in ("q-1", "q-2", "q-3"):
            store.record("hive", qid)
        assert store.recent("hive") == ("q-2", "q-3")

    def test_duplicate_moves_to_newest(self):
        store = ctx.ExemplarStore(per_key=3)
        for qid in ("q-1", "q-2", "q-1"):
            store.record("hive", qid)
        assert store.recent("hive") == ("q-2", "q-1")

    def test_snapshot_is_sorted_and_detached(self):
        store = ctx.ExemplarStore()
        store.record("spark", "q-2")
        store.record("hive", "q-1")
        snapshot = store.snapshot()
        assert list(snapshot) == ["hive", "spark"]
        snapshot["hive"].append("mutated")
        assert store.recent("hive") == ("q-1",)

    def test_empty_key_or_id_ignored(self):
        store = ctx.ExemplarStore()
        store.record("", "q-1")
        store.record("hive", "")
        assert store.snapshot() == {}

    def test_validates_capacity(self):
        with pytest.raises(ValueError):
            ctx.ExemplarStore(per_key=0)

    def test_record_exemplar_uses_active_context(self):
        with obs.query_context() as context:
            obs.record_exemplar("hive")
        assert obs.get_exemplar_store().recent("hive") == (context.query_id,)

    def test_record_exemplar_noop_outside_context(self):
        obs.record_exemplar("hive")
        assert obs.get_exemplar_store().recent("hive") == ()

    def test_concurrent_records_stay_consistent(self):
        store = ctx.ExemplarStore(per_key=4)

        def worker(start):
            for index in range(200):
                store.record("hive", f"q-{start + index}")

        threads = [
            threading.Thread(target=worker, args=(1000 * t,)) for t in range(4)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        recent = store.recent("hive")
        assert len(recent) == 4
        assert len(set(recent)) == 4


class TestCompletionHooks:
    """The owning scope times the query, builds the outcome, and
    dispatches (outcome, decision) to every registered hook."""

    def _capture(self):
        seen = []
        hook = lambda outcome, decision: seen.append((outcome, decision))  # noqa: E731
        return seen, hook

    def test_outcome_carries_timing_and_identity(self):
        seen, hook = self._capture()
        obs.add_completion_hook(hook)
        try:
            with obs.query_context(query="SELECT 1", tenant="etl") as context:
                query_id = context.query_id
        finally:
            obs.remove_completion_hook(hook)
        (outcome, _), = seen
        assert outcome.query_id == query_id
        assert outcome.query == "SELECT 1"
        assert outcome.tenant == "etl"
        assert outcome.wall_seconds > 0.0
        assert outcome.error == ""

    def test_outcome_names_the_escaping_exception(self):
        seen, hook = self._capture()
        obs.add_completion_hook(hook)
        try:
            with pytest.raises(TimeoutError):
                with obs.query_context(query="SELECT 1"):
                    raise TimeoutError("remote died")
        finally:
            obs.remove_completion_hook(hook)
        (outcome, _), = seen
        assert outcome.error == "TimeoutError"

    def test_joining_scope_never_double_dispatches(self):
        seen, hook = self._capture()
        obs.add_completion_hook(hook)
        try:
            with obs.query_context(query="SELECT 1"):
                with obs.ensure_query_context(query="inner"):
                    pass
        finally:
            obs.remove_completion_hook(hook)
        assert len(seen) == 1

    def test_raising_hook_is_counted_and_isolated(self):
        previous_registry = obs.set_registry(obs.MetricsRegistry())

        def broken(outcome, decision):
            raise RuntimeError("hook bug")

        seen, capture = self._capture()
        obs.add_completion_hook(broken)
        obs.add_completion_hook(capture)
        try:
            with obs.query_context(query="SELECT 1"):
                pass
            errors = obs.get_registry().counter(
                "context.completion_hook_errors"
            ).value
        finally:
            obs.remove_completion_hook(capture)
            obs.remove_completion_hook(broken)
            obs.set_registry(previous_registry)
        assert errors == 1.0
        assert len(seen) == 1  # the later hook still ran

    def test_duplicate_registration_is_idempotent(self):
        seen, hook = self._capture()
        obs.add_completion_hook(hook)
        obs.add_completion_hook(hook)
        try:
            with obs.query_context(query="SELECT 1"):
                pass
        finally:
            obs.remove_completion_hook(hook)
        assert len(seen) == 1
        obs.remove_completion_hook(hook)  # second removal is a no-op
