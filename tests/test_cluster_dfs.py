"""Tests for the distributed file system model."""

import pytest

from repro.cluster import Cluster, ClusterConfig, DistributedFileSystem
from repro.exceptions import ConfigurationError

MIB = 1024**2


@pytest.fixture()
def dfs():
    cluster = Cluster(
        ClusterConfig(num_data_nodes=3, dfs_block_size=128 * MIB, dfs_replication=3)
    )
    return DistributedFileSystem(cluster)


class TestFileLifecycle:
    def test_create_and_get(self, dfs):
        created = dfs.create_file("/warehouse/t1", 300 * MIB)
        assert dfs.exists("/warehouse/t1")
        assert dfs.get_file("/warehouse/t1") == created
        assert created.num_blocks == 3

    def test_final_block_is_short(self, dfs):
        f = dfs.create_file("/f", 300 * MIB)
        assert f.blocks[0].size == 128 * MIB
        assert f.blocks[-1].size == 300 * MIB - 2 * 128 * MIB

    def test_duplicate_path_rejected(self, dfs):
        dfs.create_file("/f", 10)
        with pytest.raises(ConfigurationError):
            dfs.create_file("/f", 10)

    def test_delete_reclaims_capacity(self, dfs):
        before = dfs.free_raw_bytes
        dfs.create_file("/f", 100 * MIB)
        assert dfs.free_raw_bytes == before - 300 * MIB
        dfs.delete_file("/f")
        assert dfs.free_raw_bytes == before

    def test_delete_missing_raises(self, dfs):
        with pytest.raises(ConfigurationError):
            dfs.delete_file("/missing")

    def test_capacity_enforced(self, dfs):
        with pytest.raises(ConfigurationError):
            dfs.create_file("/huge", dfs.cluster.dfs_capacity)

    def test_empty_file(self, dfs):
        f = dfs.create_file("/empty", 0)
        assert f.num_blocks == 0
        assert dfs.used_raw_bytes == 0


class TestPlacement:
    def test_replica_count(self, dfs):
        f = dfs.create_file("/f", 512 * MIB)
        for block in f.blocks:
            assert len(block.replicas) == 3
            assert len(set(block.replicas)) == 3

    def test_replicas_only_on_data_nodes(self, dfs):
        f = dfs.create_file("/f", 256 * MIB)
        data_nodes = {n.name for n in dfs.cluster.data_nodes}
        for block in f.blocks:
            assert set(block.replicas) <= data_nodes

    def test_placement_spreads_across_nodes(self, dfs):
        f = dfs.create_file("/f", 6 * 128 * MIB)
        first_replicas = [b.replicas[0] for b in f.blocks]
        assert len(set(first_replicas)) == 3  # round-robin over 3 nodes

    def test_locality_full_with_full_replication(self, dfs):
        dfs.create_file("/f", 128 * MIB)
        assert dfs.locality_fraction("/f") == 1.0

    def test_locality_partial_with_low_replication(self):
        cluster = Cluster(
            ClusterConfig(num_data_nodes=4, dfs_replication=2)
        )
        dfs = DistributedFileSystem(cluster)
        dfs.create_file("/f", 10)
        assert dfs.locality_fraction("/f") == pytest.approx(0.5)


class TestAccounting:
    def test_utilization(self, dfs):
        assert dfs.utilization == 0.0
        dfs.create_file("/f", dfs.cluster.dfs_capacity // 6)
        assert dfs.utilization == pytest.approx(0.5, rel=0.01)

    def test_num_blocks_helper(self, dfs):
        assert dfs.num_blocks(0) == 0
        assert dfs.num_blocks(1) == 1
        assert dfs.num_blocks(128 * MIB + 1) == 2
