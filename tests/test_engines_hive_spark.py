"""Tests comparing the Hive and Spark engine configurations."""

import pytest

from repro.engines import HiveEngine, SparkEngine
from repro.sql.parser import parse_select


class TestEngineDifferences:
    def test_spark_faster_on_shuffle_heavy_join(self, small_corpus):
        plan = parse_select(
            "SELECT * FROM t8000000_1000 r JOIN t8000000_100 s ON r.a1 = s.a1"
        )
        hive = HiveEngine(seed=0, noise_sigma=0.0)
        spark = SparkEngine(seed=0, noise_sigma=0.0)
        for spec in small_corpus:
            hive.load_table(spec)
            spark.load_table(spec)
        assert spark.execute(plan).elapsed_seconds < hive.execute(plan).elapsed_seconds

    def test_spark_algorithm_names(self, spark):
        result = spark.execute(
            parse_select(
                "SELECT * FROM t1000000_100 r JOIN t10000_100 s ON r.a1 = s.a1"
            )
        )
        assert result.algorithm == "broadcast_hash_join"

    def test_spark_lower_startup(self):
        hive = HiveEngine()
        spark = SparkEngine()
        assert spark.tuning.job_startup < hive.tuning.job_startup

    def test_engines_have_independent_catalogs(self, small_corpus):
        hive = HiveEngine()
        spark = SparkEngine()
        hive.load_table(next(iter(small_corpus)))
        assert not spark.has_table(next(iter(small_corpus)).name)

    def test_load_table_relocates_spec(self, small_corpus):
        hive = HiveEngine(name="hive-x")
        located = hive.load_table(next(iter(small_corpus)))
        assert located.location == "hive-x"

    def test_drop_table(self, small_corpus):
        hive = HiveEngine()
        spec = next(iter(small_corpus))
        hive.load_table(spec)
        hive.drop_table(spec.name)
        assert not hive.has_table(spec.name)
