"""Tests for the complete logical-op costing model (Fig. 3 flow)."""

import numpy as np
import pytest

from repro.core.logical_op import LogicalOpModel
from repro.core.operators import OperatorKind
from repro.core.training import TrainingSet
from repro.exceptions import (
    ConfigurationError,
    ModelNotTrainedError,
    TrainingError,
)


def agg_cost(rows, size, groups, out_size):
    """Synthetic but realistic aggregation cost surface."""
    return 1.5 + rows * (0.5 + 0.004 * size) * 1e-6 + groups * out_size * 2e-8


def make_training_set():
    ts = TrainingSet(
        ("num_input_rows", "input_row_size", "num_output_rows", "output_row_size")
    )
    for rows in (1e5, 5e5, 1e6, 4e6, 8e6):
        for size in (40, 100, 500, 1000):
            for factor in (1, 5, 20, 100):
                groups = rows / factor
                ts.add(
                    (rows, size, groups, 12),
                    agg_cost(rows, size, groups, 12),
                )
    return ts


@pytest.fixture(scope="module")
def trained_model():
    model = LogicalOpModel(
        OperatorKind.AGGREGATE,
        search_topology=False,
        nn_iterations=5000,
        seed=0,
    )
    model.train(make_training_set())
    return model


class TestTraining:
    def test_report_contents(self, trained_model):
        report = trained_model.last_report
        assert report is not None
        assert report.num_queries == 80
        assert report.remote_training_seconds > 0
        assert len(report.topology) == 2
        assert report.history.final_error < 15

    def test_untrained_estimate_rejected(self):
        model = LogicalOpModel(OperatorKind.AGGREGATE)
        with pytest.raises(ModelNotTrainedError):
            model.estimate((1, 2, 3, 4))

    def test_too_small_training_set_rejected(self):
        model = LogicalOpModel(OperatorKind.AGGREGATE)
        tiny = TrainingSet(model.dimension_names)
        tiny.add((1, 2, 3, 4), 1.0)
        with pytest.raises(TrainingError):
            model.train(tiny)

    def test_dimension_mismatch_rejected(self):
        model = LogicalOpModel(OperatorKind.AGGREGATE)
        wrong = TrainingSet(("a", "b"))
        with pytest.raises(TrainingError):
            model.train(wrong)

    def test_beta_validation(self):
        with pytest.raises(ConfigurationError):
            LogicalOpModel(OperatorKind.JOIN, beta=0.5)


class TestEstimationFlow:
    def test_in_range_uses_nn_directly(self, trained_model):
        estimate = trained_model.estimate((1e6, 100, 1e6 / 5, 12))
        assert not estimate.used_remedy
        truth = agg_cost(1e6, 100, 1e6 / 5, 12)
        assert estimate.seconds == pytest.approx(truth, rel=0.35)

    def test_out_of_range_triggers_remedy(self, trained_model):
        estimate = trained_model.estimate((8e7, 100, 8e7 / 5, 12))
        assert estimate.used_remedy
        assert estimate.remedy is not None
        assert estimate.remedy.pivots  # the rows dims are the pivots

    def test_remedy_beats_raw_nn_out_of_range(self, trained_model):
        features = (8e7, 100, 8e7 / 100, 12)
        truth = agg_cost(*features)
        nn_only = trained_model.estimate_nn_only(features)
        remedied = trained_model.estimate(features).seconds
        assert abs(remedied - truth) < abs(nn_only - truth)

    def test_feature_count_checked(self, trained_model):
        with pytest.raises(ConfigurationError):
            trained_model.estimate((1, 2, 3))


class TestFeedbackLoop:
    def test_record_actual_feeds_log_and_alpha(self):
        model = LogicalOpModel(
            OperatorKind.AGGREGATE, search_topology=False, nn_iterations=800, seed=0
        )
        model.train(make_training_set())
        estimate = model.estimate((8e7, 100, 8e7 / 5, 12))
        assert estimate.used_remedy
        model.record_actual(estimate, agg_cost(8e7, 100, 8e7 / 5, 12))
        assert len(model.execution_log) == 1
        assert model.alpha_calibrator.num_observations == 1

    def test_alpha_recalibration_changes_alpha(self):
        model = LogicalOpModel(
            OperatorKind.AGGREGATE, search_topology=False, nn_iterations=800, seed=0
        )
        model.train(make_training_set())
        for factor in (1, 2, 5, 10, 20, 50):
            features = (8e7 / factor * 10, 100, 8e7 / factor, 12)
            estimate = model.estimate(features)
            if estimate.used_remedy:
                model.record_actual(estimate, agg_cost(*features))
        alpha = model.recalibrate_alpha()
        assert 0.05 <= alpha <= 0.95

    def test_offline_tuning_consumes_log(self):
        model = LogicalOpModel(
            OperatorKind.AGGREGATE, search_topology=False, nn_iterations=800, seed=0
        )
        model.train(make_training_set())
        estimate = model.estimate((8e7, 100, 8e7 / 5, 12))
        model.record_actual(estimate, agg_cost(8e7, 100, 8e7 / 5, 12))
        applied = model.run_offline_tuning()
        assert applied == 1
        assert len(model.execution_log) == 0
        # The out-of-range value is remembered in the metadata.
        rows_meta = model.metadata[0]
        assert rows_meta.extra_points or rows_meta.max_value >= 8e7

    def test_tuning_with_empty_log_is_noop(self, trained_model):
        assert trained_model.run_offline_tuning() == 0


class TestTopologySearch:
    def test_search_runs_and_picks_valid_topology(self):
        model = LogicalOpModel(
            OperatorKind.AGGREGATE,
            search_topology=True,
            search_iterations=200,
            max_search_candidates=2,
            nn_iterations=400,
            seed=0,
        )
        report = model.train(make_training_set())
        layer1, layer2 = report.topology
        assert 4 <= layer1 <= 8
        assert layer2 >= 3
