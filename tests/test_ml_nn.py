"""Tests for the from-scratch neural network."""

import numpy as np
import pytest

from repro.exceptions import ConfigurationError, ModelNotTrainedError, TrainingError
from repro.ml.metrics import rmse_percent
from repro.ml.nn import NeuralNetwork


def make_dataset(n=400, seed=0):
    """Nonlinear cost-like surface over positive features."""
    rng = np.random.default_rng(seed)
    x = rng.uniform(1, 100, size=(n, 3))
    y = 2 * x[:, 0] + 0.05 * x[:, 1] * x[:, 2] + 10
    return x, y


class TestTraining:
    def test_learns_nonlinear_surface(self):
        x, y = make_dataset()
        nn = NeuralNetwork(hidden_layers=(10, 5), seed=0)
        history = nn.fit(x, y, iterations=4000, record_every=500)
        assert history.final_error < 6.0  # RMSE% on the training set

    def test_error_decreases_over_training(self):
        x, y = make_dataset()
        nn = NeuralNetwork(hidden_layers=(8, 4), seed=0)
        history = nn.fit(x, y, iterations=3000, record_every=300)
        assert history.rmse_percent[-1] < history.rmse_percent[0]

    def test_deterministic_under_seed(self):
        x, y = make_dataset()

        def run():
            nn = NeuralNetwork(hidden_layers=(6, 3), seed=7)
            nn.fit(x, y, iterations=500, record_every=500)
            return nn.predict(x[:5])

        assert np.allclose(run(), run())

    def test_different_seeds_differ(self):
        x, y = make_dataset()
        preds = []
        for seed in (0, 1):
            nn = NeuralNetwork(hidden_layers=(6, 3), seed=seed)
            nn.fit(x, y, iterations=300, record_every=300)
            preds.append(nn.predict(x[:5]))
        assert not np.allclose(preds[0], preds[1])

    def test_history_records_on_external_set(self):
        x, y = make_dataset()
        x_val, y_val = make_dataset(n=50, seed=1)
        nn = NeuralNetwork(seed=0)
        history = nn.fit(
            x, y, iterations=400, record_every=200, record_on=(x_val, y_val)
        )
        assert len(history.iterations) == 2


class TestExtrapolationFailure:
    def test_tanh_saturation_caps_out_of_range_predictions(self):
        """The §3 premise: the NN cannot extrapolate beyond its training
        range — predictions plateau rather than keep growing."""
        rng = np.random.default_rng(3)
        x = rng.uniform(1, 100, size=(500, 1))
        y = 5.0 * x[:, 0]
        nn = NeuralNetwork(hidden_layers=(8, 4), seed=0)
        nn.fit(x, y, iterations=4000, record_every=4000)
        in_range = nn.predict_one([100.0])
        far_out = nn.predict_one([10_000.0])
        true_far = 50_000.0
        # Prediction grows a little past the boundary but vastly
        # underestimates the true out-of-range value.
        assert far_out < 0.2 * true_far
        assert far_out < in_range * 10


class TestPartialFit:
    def test_improves_on_new_region(self):
        x, y = make_dataset()
        nn = NeuralNetwork(hidden_layers=(10, 5), seed=0)
        nn.fit(x, y, iterations=2000, record_every=2000)
        # New out-of-range data.
        rng = np.random.default_rng(9)
        x_new = rng.uniform(150, 300, size=(200, 3))
        y_new = 2 * x_new[:, 0] + 0.05 * x_new[:, 1] * x_new[:, 2] + 10
        before = rmse_percent(y_new, nn.predict(x_new))
        nn.partial_fit(x_new, y_new, iterations=2500)
        after = rmse_percent(y_new, nn.predict(x_new))
        assert after < before / 2

    def test_requires_prior_fit(self):
        with pytest.raises(ModelNotTrainedError):
            NeuralNetwork().partial_fit(np.ones((5, 2)), np.ones(5))


class TestValidation:
    def test_predict_before_fit(self):
        with pytest.raises(ModelNotTrainedError):
            NeuralNetwork().predict(np.ones((1, 2)))

    def test_bad_hidden_layers(self):
        with pytest.raises(ConfigurationError):
            NeuralNetwork(hidden_layers=())
        with pytest.raises(ConfigurationError):
            NeuralNetwork(hidden_layers=(5, 0))

    def test_bad_learning_rate(self):
        with pytest.raises(ConfigurationError):
            NeuralNetwork(learning_rate=0)

    def test_negative_targets_rejected_in_log_mode(self):
        with pytest.raises(TrainingError):
            NeuralNetwork(log_target=True).fit(
                np.ones((5, 1)), np.array([-1.0, 1, 1, 1, 1])
            )

    def test_non_log_mode_allows_negatives(self):
        nn = NeuralNetwork(log_target=False, seed=0)
        x = np.arange(10.0).reshape(-1, 1)
        y = x.ravel() - 5
        nn.fit(x, y, iterations=200, record_every=200)
        assert nn.is_fitted

    def test_row_mismatch(self):
        with pytest.raises(TrainingError):
            NeuralNetwork().fit(np.ones((5, 2)), np.ones(4))

    def test_predict_one(self):
        x, y = make_dataset(n=100)
        nn = NeuralNetwork(seed=0)
        nn.fit(x, y, iterations=300, record_every=300)
        value = nn.predict_one(x[0])
        assert isinstance(value, float)
