"""Tests for the network fabric model."""

import pytest

from repro.cluster import NetworkFabric
from repro.exceptions import ConfigurationError

MIB = 1024**2


class TestTransfer:
    def test_zero_bytes_is_free(self):
        fabric = NetworkFabric()
        assert fabric.transfer_seconds(0) == 0.0

    def test_transfer_scales_with_payload(self):
        fabric = NetworkFabric(bandwidth=100 * MIB, latency=0.0)
        assert fabric.transfer_seconds(100 * MIB) == pytest.approx(1.0)
        assert fabric.transfer_seconds(200 * MIB) == pytest.approx(2.0)

    def test_latency_added_once(self):
        fabric = NetworkFabric(bandwidth=100 * MIB, latency=0.5)
        assert fabric.transfer_seconds(100 * MIB) == pytest.approx(1.5)

    def test_rejects_negative_bytes(self):
        with pytest.raises(ConfigurationError):
            NetworkFabric().transfer_seconds(-1)


class TestCollectives:
    def test_shuffle_benefits_from_parallelism(self):
        fabric = NetworkFabric(latency=0.0)
        one = fabric.shuffle_seconds(300 * MIB, num_nodes=1)
        three = fabric.shuffle_seconds(300 * MIB, num_nodes=3)
        assert three == pytest.approx(one / 3)

    def test_shuffle_contention_derating(self):
        full = NetworkFabric(latency=0.0, bisection_factor=1.0)
        derated = NetworkFabric(latency=0.0, bisection_factor=0.5)
        payload = 100 * MIB
        assert derated.shuffle_seconds(payload, 2) == pytest.approx(
            2 * full.shuffle_seconds(payload, 2)
        )

    def test_broadcast_grows_sublinearly_in_nodes(self):
        fabric = NetworkFabric(latency=0.0)
        two = fabric.broadcast_seconds(100 * MIB, 2)
        eight = fabric.broadcast_seconds(100 * MIB, 8)
        assert eight < 4 * two  # log-depth, not linear

    def test_collectives_reject_zero_nodes(self):
        fabric = NetworkFabric()
        with pytest.raises(ConfigurationError):
            fabric.shuffle_seconds(10, 0)
        with pytest.raises(ConfigurationError):
            fabric.broadcast_seconds(10, 0)

    def test_invalid_bisection_factor(self):
        with pytest.raises(ConfigurationError):
            NetworkFabric(bisection_factor=0.0)
