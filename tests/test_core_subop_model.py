"""Tests for sub-op training (Fig. 5 protocol) and models."""

import pytest

from repro.core.subop_model import (
    ClusterInfo,
    SubOpTrainer,
    SubOpModelSet,
)
from repro.engines.subops import SubOp
from repro.exceptions import ConfigurationError, ModelNotTrainedError

GIB = 1024**3


@pytest.fixture(scope="module")
def trained(small_hive_module, cluster_info_module):
    trainer = SubOpTrainer()
    return trainer.train(small_hive_module, cluster_info_module)


@pytest.fixture(scope="module")
def small_hive_module():
    from repro.data import build_paper_corpus
    from repro.engines import HiveEngine

    engine = HiveEngine(seed=0, noise_sigma=0.0)
    for spec in build_paper_corpus(row_counts=(10_000,), row_sizes=(40,)):
        engine.load_table(spec)
    return engine


@pytest.fixture(scope="module")
def cluster_info_module():
    return ClusterInfo(
        num_data_nodes=3, cores_per_node=2, dfs_block_size=128 * 1024 * 1024
    )


class TestClusterInfo:
    def test_parallel_units(self, cluster_info_module):
        info = cluster_info_module
        # 1M x 100B = 100MB -> 1 task, 1 wave, block_rows = 1M.
        assert info.parallel_units(1_000_000, 100) == 1_000_000
        # 8M x 1000B = 8GB -> 63 tasks, 11 waves, block rows ~127k.
        tasks = info.num_tasks(8_000_000 * 1000)
        assert tasks == 60
        assert info.waves(tasks) == 10

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            ClusterInfo(num_data_nodes=0, cores_per_node=1, dfs_block_size=1)


class TestKernelRecovery:
    """The trainer must recover the hidden kernels from observations only."""

    def test_read_dfs_close_to_truth(self, trained, small_hive_module):
        """Learned ReadDFS tracks the hidden kernel.  It runs somewhat
        high because the per-record regression slope absorbs the engine's
        per-wave scheduling overhead — an inherent property of
        measurement-based learning that contributes to the sub-op
        approach's slight overestimation trend (Fig. 13(g))."""
        learned = trained.model_set.model(SubOp.READ_DFS)
        truth = small_hive_module.env.kernels.kernel(SubOp.READ_DFS)
        for size in (100, 500, 1000):
            ratio = learned.per_record_us(size) / truth.per_record_us(size)
            assert 0.9 < ratio < 1.8, size

    @pytest.mark.parametrize(
        "op",
        [SubOp.WRITE_DFS, SubOp.SHUFFLE, SubOp.SORT, SubOp.SCAN, SubOp.REC_MERGE],
    )
    def test_subtraction_protocol_recovers_kernels(
        self, trained, small_hive_module, op
    ):
        learned = trained.model_set.model(op)
        truth = small_hive_module.env.kernels.kernel(op)
        for size in (100, 500, 1000):
            assert learned.per_record_us(size) == pytest.approx(
                truth.per_record_us(size), rel=0.2, abs=0.3
            )

    def test_read_local_via_double_subtraction(self, trained, small_hive_module):
        learned = trained.model_set.model(SubOp.READ_LOCAL)
        truth = small_hive_module.env.kernels.kernel(SubOp.READ_LOCAL)
        assert learned.per_record_us(500) == pytest.approx(
            truth.per_record_us(500), rel=0.3, abs=0.3
        )

    def test_job_overhead_estimated(self, trained, small_hive_module):
        tuning = small_hive_module.tuning
        assert trained.model_set.job_overhead_seconds == pytest.approx(
            tuning.job_startup, rel=0.6
        )

    def test_hash_build_two_regimes_found(self, trained, small_hive_module):
        hb = trained.model_set.hash_build
        assert hb.has_spill_regime
        truth_budget = small_hive_module.env.kernels.hash_build.memory_budget
        assert hb.workspace_threshold == pytest.approx(truth_budget, rel=0.8)
        # in-memory cheaper than spilling for big records
        assert hb.per_record_us(1000, workspace_bytes=0) < hb.per_record_us(
            1000, workspace_bytes=int(hb.workspace_threshold * 4)
        )


class TestTrainingAccounting:
    def test_query_count_and_time(self, trained):
        assert trained.num_queries > 0
        assert trained.remote_training_seconds > 0
        assert len(trained.training_curve) == trained.num_queries

    def test_curve_is_monotone(self, trained):
        seconds = [t for _, t in trained.training_curve]
        assert all(b >= a for a, b in zip(seconds, seconds[1:]))

    def test_samples_collected_per_op(self, trained):
        assert SubOp.READ_DFS in trained.samples
        assert SubOp.HASH_BUILD in trained.samples
        assert all(s.per_record_us >= 0 for s in trained.samples[SubOp.SHUFFLE])

    def test_per_record_flat_across_counts(self, trained):
        """Fig. 7(a): per-record cost is flat in the record count."""
        samples = [
            s for s in trained.samples[SubOp.READ_DFS] if s.record_size == 1000
        ]
        values = [s.per_record_us for s in samples]
        assert max(values) - min(values) < 0.5 * max(values)


class TestModelSet:
    def test_seconds_scaling(self, trained):
        ms = trained.model_set
        one = ms.seconds(SubOp.READ_DFS, 1_000_000, 100)
        two = ms.seconds(SubOp.READ_DFS, 2_000_000, 100)
        assert two == pytest.approx(2 * one)

    def test_zero_records_free(self, trained):
        assert trained.model_set.seconds(SubOp.SHUFFLE, 0, 100) == 0.0

    def test_hash_build_via_accessor_only(self, trained):
        with pytest.raises(ConfigurationError):
            trained.model_set.model(SubOp.HASH_BUILD)

    def test_missing_op_raises(self):
        from repro.core.subop_model import HashBuildModel

        empty = SubOpModelSet(
            models={},
            hash_build=HashBuildModel(
                in_memory=SubOpTrainer._constant_regression(1.0),
                spilling=None,
                workspace_threshold=float("inf"),
            ),
        )
        with pytest.raises(ModelNotTrainedError):
            empty.model(SubOp.SHUFFLE)


class TestTrainerValidation:
    def test_needs_two_counts(self):
        with pytest.raises(ConfigurationError):
            SubOpTrainer(record_counts=(1_000_000,))

    def test_empty_grids_rejected(self):
        with pytest.raises(ConfigurationError):
            SubOpTrainer(record_sizes=())
