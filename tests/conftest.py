"""Shared fixtures for the test suite.

Engines default to noise-free execution so assertions about cost
composition are exact; noisy variants are built per-test when the noise
behaviour itself is under test.
"""

from __future__ import annotations

import pytest

from repro.cluster import paper_cluster
from repro.core import ClusterInfo
from repro.data import Catalog, build_paper_corpus
from repro.engines import HiveEngine, SparkEngine


#: Small sub-grid of the corpus used where full 120-table loads are
#: unnecessary (keeps shape coverage: small..large counts, 3 sizes).
SMALL_COUNTS = (10_000, 100_000, 1_000_000, 8_000_000)
SMALL_SIZES = (40, 100, 1000)


@pytest.fixture(scope="session")
def corpus():
    """The full 120-table paper corpus (specs only — cheap)."""
    return build_paper_corpus()


@pytest.fixture(scope="session")
def small_corpus():
    return build_paper_corpus(row_counts=SMALL_COUNTS, row_sizes=SMALL_SIZES)


@pytest.fixture()
def catalog(corpus):
    cat = Catalog()
    for spec in corpus:
        cat.register(spec)
    return cat


@pytest.fixture()
def small_catalog(small_corpus):
    cat = Catalog()
    for spec in small_corpus:
        cat.register(spec)
    return cat


@pytest.fixture()
def hive(corpus):
    """Noise-free Hive engine with the full corpus loaded."""
    engine = HiveEngine(seed=0, noise_sigma=0.0)
    for spec in corpus:
        engine.load_table(spec)
    return engine


@pytest.fixture()
def small_hive(small_corpus):
    engine = HiveEngine(seed=0, noise_sigma=0.0)
    for spec in small_corpus:
        engine.load_table(spec)
    return engine


@pytest.fixture()
def spark(small_corpus):
    engine = SparkEngine(seed=0, noise_sigma=0.0)
    for spec in small_corpus:
        engine.load_table(spec)
    return engine


@pytest.fixture(scope="session")
def cluster():
    return paper_cluster()


@pytest.fixture(scope="session")
def cluster_info(cluster):
    return ClusterInfo(
        num_data_nodes=cluster.config.num_data_nodes,
        cores_per_node=cluster.config.node_cpu.cores,
        dfs_block_size=cluster.config.dfs_block_size,
    )


@pytest.fixture()
def restore_obs_plane():
    """Snapshot and restore the global observability plane.

    The traffic simulator (and anything else that calls the ``obs``
    setters) swaps in fresh registries for determinism; suites that run
    it opt into this fixture so the swap never leaks across tests.
    """
    from repro import obs

    registry = obs.set_registry(obs.MetricsRegistry())
    ledger = obs.set_ledger(obs.AccuracyLedger())
    tenants = obs.set_tenant_ledger(obs.TenantLedger())
    exemplars = obs.set_exemplar_store(obs.ExemplarStore())
    yield
    obs.set_registry(registry)
    obs.set_ledger(ledger)
    obs.set_tenant_ledger(tenants)
    obs.set_exemplar_store(exemplars)
