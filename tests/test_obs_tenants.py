"""Per-tenant cost attribution: the tenant ledger, ranking, and the
completion-hook / costing-path integration."""

import threading

import pytest

from repro import obs
from repro.obs import context as ctx
from repro.obs import tenants
from repro.obs.tail import QueryOutcome, TailDecision


@pytest.fixture(autouse=True)
def _fresh_obs_state():
    """Isolate ids, registry, samplers, and the tenant ledger per test."""
    obs.reset_query_ids()
    previous_registry = obs.set_registry(obs.MetricsRegistry())
    previous_sampler = obs.set_sampler(ctx.HeadSampler(rate=1.0))
    previous_tail = obs.set_tail_sampler(None)
    previous_ledger = obs.set_tenant_ledger(obs.TenantLedger())
    yield
    obs.set_tenant_ledger(previous_ledger)
    obs.set_tail_sampler(previous_tail)
    obs.set_sampler(previous_sampler)
    obs.set_registry(previous_registry)
    obs.reset_query_ids()


KEEP = TailDecision(keep=True, reasons=("latency",))
DROP = TailDecision(keep=False)


class TestTenantLedger:
    def test_record_query_accumulates_traffic(self):
        ledger = obs.TenantLedger()
        ledger.record_query(
            QueryOutcome(query_id="q-1", tenant="etl", wall_seconds=2.0), KEEP
        )
        ledger.record_query(
            QueryOutcome(
                query_id="q-2", tenant="etl", wall_seconds=1.0, error="OSError"
            ),
            DROP,
        )
        stats = ledger.snapshot()["etl"]
        assert stats["queries"] == 2
        assert stats["errors"] == 1
        assert stats["wall_seconds"] == 3.0
        assert stats["kept_traces"] == 1

    def test_unattributed_traffic_ignored(self):
        ledger = obs.TenantLedger()
        ledger.record_query(QueryOutcome(query_id="q-1"), KEEP)
        ledger.record_estimate("", 5.0)
        ledger.record_actual("", 2.0)
        assert ledger.snapshot() == {}
        assert ledger.tenants() == ()

    def test_estimates_and_actuals_fold_into_accuracy(self):
        ledger = obs.TenantLedger()
        ledger.record_estimate("adhoc", 10.0)
        ledger.record_estimate("adhoc", 5.0)
        ledger.record_actual("adhoc", 2.0)
        ledger.record_actual("adhoc", 4.0)
        stats = ledger.snapshot()["adhoc"]
        assert stats["estimates"] == 2
        assert stats["estimated_seconds"] == 15.0
        assert stats["actuals"] == 2
        assert stats["mean_q_error"] == 3.0
        assert stats["max_q_error"] == 4.0

    def test_invalid_feedback_ignored(self):
        ledger = obs.TenantLedger()
        ledger.record_actual("etl", 0.0)
        ledger.record_actual("etl", -1.0)
        assert ledger.snapshot() == {}

    def test_snapshot_sorted_and_detached(self):
        ledger = obs.TenantLedger()
        ledger.record_estimate("zeta", 1.0)
        ledger.record_estimate("alpha", 1.0)
        snapshot = ledger.snapshot()
        assert list(snapshot) == ["alpha", "zeta"]
        snapshot["alpha"]["estimates"] = 999
        assert ledger.snapshot()["alpha"]["estimates"] == 1

    def test_reset_clears_everything(self):
        ledger = obs.TenantLedger()
        ledger.record_estimate("etl", 1.0)
        ledger.reset()
        assert ledger.snapshot() == {}

    def test_concurrent_attribution_stays_coherent(self):
        ledger = obs.TenantLedger()
        errors = []

        def worker(seed):
            try:
                for step in range(300):
                    tenant = f"t{(seed + step) % 3}"
                    ledger.record_estimate(tenant, 1.0)
                    ledger.record_actual(tenant, 2.0)
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)

        threads = [
            threading.Thread(target=worker, args=(seed,)) for seed in range(4)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert errors == []
        snapshot = ledger.snapshot()
        assert sum(s["estimates"] for s in snapshot.values()) == 4 * 300
        assert sum(s["actuals"] for s in snapshot.values()) == 4 * 300


class TestRankTenants:
    def test_ranks_descending_with_name_tiebreak(self):
        snapshot = {
            "adhoc": {"estimated_seconds": 5.0},
            "etl": {"estimated_seconds": 9.0},
            "ml": {"estimated_seconds": 5.0},
        }
        ranked = obs.rank_tenants(snapshot)
        assert [name for name, _ in ranked] == ["etl", "adhoc", "ml"]

    def test_rank_by_other_field(self):
        snapshot = {
            "adhoc": {"max_q_error": 9.0, "estimated_seconds": 1.0},
            "etl": {"max_q_error": 2.0, "estimated_seconds": 8.0},
        }
        ranked = obs.rank_tenants(snapshot, by="max_q_error")
        assert [name for name, _ in ranked] == ["adhoc", "etl"]

    def test_missing_or_bad_values_rank_last(self):
        snapshot = {
            "bad": {"estimated_seconds": "not-a-number"},
            "good": {"estimated_seconds": 1.0},
            "missing": {},
        }
        ranked = obs.rank_tenants(snapshot)
        assert [name for name, _ in ranked] == ["good", "bad", "missing"]


class TestCompletionIntegration:
    def test_attributed_scope_feeds_the_default_ledger(self):
        with obs.query_context(query="SELECT 1", tenant="analytics"):
            pass
        stats = obs.get_tenant_ledger().snapshot()["analytics"]
        assert stats["queries"] == 1
        assert stats["kept_traces"] == 1  # head-sampled scope is tail-kept

    def test_unattributed_scope_leaves_ledger_empty(self):
        with obs.query_context(query="SELECT 1"):
            pass
        assert obs.get_tenant_ledger().snapshot() == {}

    def test_current_tenant_follows_the_scope(self):
        assert obs.current_tenant() == ""
        with obs.query_context(tenant="etl"):
            assert obs.current_tenant() == "etl"
        assert obs.current_tenant() == ""

    def test_ensure_context_honours_tenant_only_when_opening(self):
        with obs.query_context(tenant="outer"):
            with obs.ensure_query_context(tenant="inner"):
                assert obs.current_tenant() == "outer"
        with obs.ensure_query_context(tenant="fresh"):
            assert obs.current_tenant() == "fresh"

    def test_swapped_ledger_receives_the_attribution(self):
        mine = obs.TenantLedger()
        obs.set_tenant_ledger(mine)
        with obs.query_context(tenant="etl"):
            pass
        assert mine.snapshot()["etl"]["queries"] == 1


@pytest.fixture(scope="module")
def sphere():
    from repro.core import ClusterInfo, RemoteSystemProfile, SubOpTrainer
    from repro.data import build_paper_corpus
    from repro.engines import HiveEngine
    from repro.master.federation import IntelliSphere

    sphere = IntelliSphere(seed=0)
    hive = HiveEngine(seed=0, noise_sigma=0.0)
    info = ClusterInfo(
        num_data_nodes=3, cores_per_node=2, dfs_block_size=128 * 1024 * 1024
    )
    sphere.add_remote_system(hive, RemoteSystemProfile(name="hive", cluster=info))
    for spec in build_paper_corpus(
        row_counts=(10_000, 1_000_000), row_sizes=(100,)
    ):
        sphere.add_table(spec)
    sphere.costing.train_sub_op(
        "hive", SubOpTrainer(record_counts=(1_000_000, 2_000_000))
    )
    return sphere


class TestCostingIntegration:
    """The costing emission sites attribute estimates, q-errors, and
    tenant exemplars to the active scope's tenant."""

    SQL = "SELECT r.a1 FROM t1000000_100 r JOIN t10000_100 s ON r.a1 = s.a1"

    def test_run_with_tenant_attributes_traffic_and_cost(self, sphere):
        previous_store = obs.set_exemplar_store(ctx.ExemplarStore())
        obs.reset_query_ids()
        try:
            sphere.run(self.SQL, tenant="analytics")
            stats = obs.get_tenant_ledger().snapshot()["analytics"]
            assert stats["queries"] == 1
            assert stats["estimates"] > 0
            assert stats["estimated_seconds"] > 0.0
            assert stats["wall_seconds"] > 0.0
            # The tenant exemplar ring names the query.
            recent = obs.get_exemplar_store().recent("tenant:analytics")
            assert recent == ("q-000001",)
        finally:
            obs.set_exemplar_store(previous_store)

    def test_feedback_attributes_accuracy_to_the_tenant(self, sphere):
        from repro.sql.parser import parse_select

        plan = parse_select(self.SQL)
        with obs.query_context(query=self.SQL, tenant="etl"):
            estimate = sphere.costing.estimate_plan("hive", plan, sphere.catalog)
            sphere.costing.record_actual("hive", estimate, estimate.seconds * 2.0)
        estimate = sphere.costing.estimate_plan("hive", plan, sphere.catalog)
        sphere.costing.record_actual("hive", estimate, estimate.seconds)
        stats = obs.get_tenant_ledger().snapshot()["etl"]
        assert stats["actuals"] == 1
        assert stats["mean_q_error"] == pytest.approx(2.0)
        assert stats["max_q_error"] == pytest.approx(2.0)
        # The accuracy ledger slices by tenant; the unattributed
        # observation stays out of the tenant's slice.
        attributed = sphere.costing.ledger.entries(tenant="etl")
        unattributed = sphere.costing.ledger.entries(tenant="")
        assert attributed and unattributed
        assert {entry.tenant for entry in attributed} == {"etl"}
        assert {entry.tenant for entry in unattributed} == {""}
