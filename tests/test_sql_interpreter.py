"""Tests for the row-level interpreter and cardinality-model validation."""

import pytest

from repro.data import Catalog, TableSpec
from repro.data.generator import materialize_rows
from repro.data.schema import paper_schema
from repro.exceptions import ConfigurationError, UnsupportedOperationError
from repro.sql.cardinality import CardinalityEstimator
from repro.sql.interpreter import MaterializedTable, PlanInterpreter
from repro.sql.parser import parse_select

ROWS_BIG = 2_000
ROWS_SMALL = 500
ROW_SIZE = 40


@pytest.fixture(scope="module")
def world():
    """Two tiny corpus-model tables, materialized and cataloged."""
    schema = paper_schema(ROW_SIZE)
    tables = {}
    catalog = Catalog()
    for name, rows in (("big", ROWS_BIG), ("small", ROWS_SMALL)):
        tables[name] = MaterializedTable(schema, materialize_rows(schema, rows))
        catalog.register(
            TableSpec(name=name, schema=schema, num_rows=rows, row_size=ROW_SIZE)
        )
    return PlanInterpreter(tables), CardinalityEstimator(catalog)


def both(world, sql):
    interpreter, estimator = world
    plan = parse_select(sql)
    return len(interpreter.run(plan)), estimator.estimate(plan).num_rows


class TestBasicExecution:
    def test_scan(self, world):
        interpreter, _ = world
        rows = interpreter.run(parse_select("SELECT * FROM big"))
        assert len(rows) == ROWS_BIG
        assert rows[0]["z"] == 0

    def test_projection(self, world):
        interpreter, _ = world
        rows = interpreter.run(parse_select("SELECT a1, a5 FROM small"))
        assert set(rows[0]) == {"a1", "a5"}

    def test_filter_values(self, world):
        interpreter, _ = world
        rows = interpreter.run(parse_select("SELECT * FROM big WHERE a1 < 10"))
        assert sorted(r["a1"] for r in rows) == list(range(10))

    def test_join_produces_small_side(self, world):
        interpreter, _ = world
        rows = interpreter.run(
            parse_select("SELECT * FROM big r JOIN small s ON r.a1 = s.a1")
        )
        assert len(rows) == ROWS_SMALL

    def test_aggregate_sums(self, world):
        interpreter, _ = world
        rows = interpreter.run(
            parse_select("SELECT SUM(a1) FROM small GROUP BY a5")
        )
        assert len(rows) == ROWS_SMALL // 5
        group0 = next(r for r in rows if r["a5"] == 0)
        assert group0["agg_0"] == 0 + 1 + 2 + 3 + 4

    def test_count_star_global(self, world):
        interpreter, _ = world
        rows = interpreter.run(parse_select("SELECT COUNT(*) FROM big"))
        assert rows == [{"agg_0": ROWS_BIG}]

    def test_missing_table(self, world):
        interpreter, _ = world
        with pytest.raises(ConfigurationError):
            interpreter.run(parse_select("SELECT * FROM nope"))


class TestCardinalityModelValidation:
    """The analytic estimates must equal true tuple counts on the corpus
    value model — the foundation of every cost in the library."""

    @pytest.mark.parametrize(
        "sql",
        [
            "SELECT * FROM big",
            "SELECT * FROM big WHERE a1 < 1000",
            "SELECT * FROM big WHERE a1 < 100",
            "SELECT * FROM small WHERE a1 >= 250",
            "SELECT * FROM big r JOIN small s ON r.a1 = s.a1",
            "SELECT * FROM big r JOIN small s ON r.a1 = s.a1 "
            "AND r.a1 + s.z < 125",
            "SELECT SUM(a1) FROM big GROUP BY a5",
            "SELECT SUM(a1) FROM big GROUP BY a100",
            "SELECT SUM(a1) FROM small GROUP BY a10",
            "SELECT COUNT(*) FROM big",
            "SELECT SUM(a1) FROM big r JOIN small s ON r.a1 = s.a1 "
            "GROUP BY a5",
        ],
    )
    def test_estimate_equals_truth(self, world, sql):
        actual, estimated = both(world, sql)
        assert estimated == pytest.approx(actual, rel=0.02, abs=1)

    def test_join_selectivity_thresholds(self, world):
        for threshold in (125, 250, 375, 500):
            actual, estimated = both(
                world,
                "SELECT * FROM big r JOIN small s ON r.a1 = s.a1 "
                f"AND r.a1 + s.z < {threshold}",
            )
            assert actual == threshold
            assert estimated == pytest.approx(actual, rel=0.02, abs=1)

    def test_many_to_many_join(self, world):
        actual, estimated = both(
            world, "SELECT * FROM big r JOIN small s ON r.a10 = s.a10"
        )
        # a10 of small has ndv 50; each value matches 10 rows in big.
        assert actual == ROWS_SMALL * 10
        assert estimated == pytest.approx(actual, rel=0.02)
