"""Failure-injection tests: stragglers in the remote system.

Real clusters have slow tasks, GC pauses, and contended nodes.  The
engine's straggler injection makes a configurable fraction of queries
take several times longer, and these tests check the costing stack's
robustness: estimation stays calibrated on the healthy majority, the
drift monitor tolerates isolated stragglers but catches an epidemic,
and offline tuning is not derailed by a contaminated log.
"""

import numpy as np
import pytest

from repro.core import (
    ClusterInfo,
    CostEstimationModule,
    RemoteSystemProfile,
    SubOpTrainer,
)
from repro.data import Catalog, build_paper_corpus
from repro.engines import HiveEngine
from repro.engines.execution import EngineTuning
from repro.exceptions import ConfigurationError
from repro.sql.parser import parse_select


def straggling_engine(probability, corpus, seed=0, factor=3.0):
    engine = HiveEngine(
        seed=seed,
        tuning=EngineTuning(
            straggler_probability=probability, straggler_factor=factor
        ),
    )
    for spec in corpus:
        engine.load_table(spec)
    return engine


@pytest.fixture(scope="module")
def corpus():
    return build_paper_corpus(
        row_counts=(100_000, 1_000_000, 4_000_000), row_sizes=(100, 1000)
    )


@pytest.fixture(scope="module")
def catalog(corpus):
    cat = Catalog()
    for spec in corpus:
        cat.register(spec)
    return cat


class TestInjectionMechanics:
    def test_straggler_rate_matches_probability(self, corpus):
        engine = straggling_engine(0.2, corpus, seed=1)
        plan = parse_select("SELECT SUM(a1) FROM t1000000_100 GROUP BY a100")
        baseline = HiveEngine(seed=99, noise_sigma=0.0)
        for spec in corpus:
            baseline.load_table(spec)
        healthy = baseline.execute(plan).elapsed_seconds
        hits = sum(
            engine.execute(plan).elapsed_seconds > 2.0 * healthy
            for _ in range(200)
        )
        assert 20 <= hits <= 60  # ~200 * 0.2, with noise slack

    def test_zero_probability_never_straggles(self, corpus):
        engine = straggling_engine(0.0, corpus, seed=1)
        plan = parse_select("SELECT SUM(a1) FROM t1000000_100 GROUP BY a100")
        times = [engine.execute(plan).elapsed_seconds for _ in range(50)]
        assert max(times) < 1.3 * min(times)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            EngineTuning(straggler_probability=1.0)
        with pytest.raises(ConfigurationError):
            EngineTuning(straggler_factor=0.5)


class TestCostingRobustness:
    def test_estimates_stay_calibrated_on_majority(self, corpus, catalog):
        """Sub-op training under 5% stragglers still yields estimates
        tracking the healthy execution time."""
        engine = straggling_engine(0.05, corpus, seed=2)
        module = CostEstimationModule()
        module.register_system(
            engine,
            RemoteSystemProfile(
                name="hive",
                cluster=ClusterInfo(
                    num_data_nodes=3,
                    cores_per_node=2,
                    dfs_block_size=128 * 1024 * 1024,
                ),
            ),
        )
        module.train_sub_op("hive")

        baseline = HiveEngine(seed=99, noise_sigma=0.0)
        for spec in corpus:
            baseline.load_table(spec)
        plan = parse_select(
            "SELECT * FROM t4000000_100 r JOIN t1000000_100 s ON r.a1 = s.a1"
        )
        estimate = module.estimate_plan("hive", plan, catalog)
        healthy = baseline.execute(plan).elapsed_seconds
        assert estimate.seconds == pytest.approx(healthy, rel=0.5)

    def test_drift_monitor_tolerates_isolated_stragglers(self, corpus, catalog):
        """5% stragglers are business as usual — no drift alarm."""
        engine = straggling_engine(0.05, corpus, seed=3)
        module = CostEstimationModule()
        module.register_system(
            engine,
            RemoteSystemProfile(
                name="hive",
                cluster=ClusterInfo(
                    num_data_nodes=3,
                    cores_per_node=2,
                    dfs_block_size=128 * 1024 * 1024,
                ),
            ),
        )
        module.train_sub_op("hive")
        plans = [
            parse_select(
                f"SELECT * FROM t4000000_{size} r JOIN t1000000_{size} s "
                "ON r.a1 = s.a1"
            )
            for size in (100, 1000)
        ]
        for _ in range(60):
            for plan in plans:
                estimate = module.estimate_plan("hive", plan, catalog)
                actual = engine.execute(plan).elapsed_seconds
                module.record_actual("hive", estimate, actual)
        assert not module.drift_report("hive").drifted

    def test_drift_monitor_catches_straggler_epidemic(self, corpus, catalog):
        """When most queries straggle (an overloaded cluster), that IS a
        behaviour change and must be flagged."""
        engine = straggling_engine(0.05, corpus, seed=4)
        module = CostEstimationModule()
        module.register_system(
            engine,
            RemoteSystemProfile(
                name="hive",
                cluster=ClusterInfo(
                    num_data_nodes=3,
                    cores_per_node=2,
                    dfs_block_size=128 * 1024 * 1024,
                ),
            ),
        )
        module.train_sub_op("hive")
        plan = parse_select(
            "SELECT * FROM t4000000_100 r JOIN t1000000_100 s ON r.a1 = s.a1"
        )
        for _ in range(40):
            estimate = module.estimate_plan("hive", plan, catalog)
            module.record_actual(
                "hive", estimate, engine.execute(plan).elapsed_seconds
            )
        assert not module.drift_report("hive").drifted

        epidemic = straggling_engine(0.8, corpus, seed=5, factor=3.0)
        drifted = False
        for _ in range(60):
            estimate = module.estimate_plan("hive", plan, catalog)
            module.record_actual(
                "hive", estimate, epidemic.execute(plan).elapsed_seconds
            )
            if module.drift_report("hive").drifted:
                drifted = True
                break
        assert drifted
