"""Tests for operator statistics descriptors."""

import pytest

from repro.core.operators import (
    AGGREGATE_DIMENSIONS,
    AggregateOperatorStats,
    JOIN_DIMENSIONS,
    JoinOperatorStats,
    OperatorKind,
    ScanOperatorStats,
    dimensions_for,
)
from repro.exceptions import ConfigurationError


class TestDimensions:
    def test_join_has_seven_dimensions(self):
        """Fig. 2: the join training model has exactly seven dimensions."""
        assert len(JOIN_DIMENSIONS) == 7

    def test_aggregate_has_four_dimensions(self):
        assert len(AGGREGATE_DIMENSIONS) == 4

    def test_dimensions_for(self):
        assert dimensions_for(OperatorKind.JOIN) == JOIN_DIMENSIONS
        assert dimensions_for(OperatorKind.AGGREGATE) == AGGREGATE_DIMENSIONS


class TestJoinStats:
    @pytest.fixture()
    def stats(self):
        return JoinOperatorStats(
            row_size_r=100,
            num_rows_r=1_000_000,
            row_size_s=250,
            num_rows_s=10_000,
            projected_size_r=8,
            projected_size_s=12,
            num_output_rows=5_000,
        )

    def test_feature_order_matches_dimensions(self, stats):
        features = stats.features()
        assert len(features) == len(JOIN_DIMENSIONS)
        assert features[0] == 100.0  # row_size_r
        assert features[1] == 1_000_000.0  # num_rows_r
        assert features[6] == 5_000.0  # num_output_rows

    def test_derived_sizes(self, stats):
        assert stats.big_bytes == 100_000_000
        assert stats.small_bytes == 2_500_000
        assert stats.output_row_size == 20

    def test_rejects_negative(self):
        with pytest.raises(ConfigurationError):
            JoinOperatorStats(
                row_size_r=-1,
                num_rows_r=1,
                row_size_s=1,
                num_rows_s=1,
                projected_size_r=1,
                projected_size_s=1,
                num_output_rows=1,
            )

    def test_layout_flags_default_false(self, stats):
        assert not stats.r_partitioned_on_key
        assert not stats.skewed
        assert stats.is_equi


class TestAggregateStats:
    def test_features(self):
        stats = AggregateOperatorStats(
            num_input_rows=1_000_000,
            input_row_size=100,
            num_output_rows=200_000,
            output_row_size=12,
        )
        assert stats.features() == (1_000_000.0, 100.0, 200_000.0, 12.0)

    def test_rejects_negative(self):
        with pytest.raises(ConfigurationError):
            AggregateOperatorStats(
                num_input_rows=1,
                input_row_size=1,
                num_output_rows=-1,
                output_row_size=1,
            )


class TestScanStats:
    def test_features(self):
        stats = ScanOperatorStats(
            num_input_rows=100,
            input_row_size=40,
            num_output_rows=10,
            output_row_size=8,
        )
        assert len(stats.features()) == 4
