"""Windowed time-series plane: quantile histograms, fixed-boundary
window rolling under a manual clock, the retention ring, registry
observer wiring, journal round-trips (bit-identical reconstruction),
and the environment-variable configuration surface."""

import json
import threading

import pytest

from repro import obs
from repro.obs.journal import EventJournal, read_journal
from repro.obs.metrics import MetricsRegistry
from repro.obs.timeseries import (
    DEFAULT_WINDOW_RETENTION,
    DEFAULT_WINDOW_WIDTH,
    HISTOGRAM_STATS,
    WINDOW_BUCKETS,
    WINDOW_RETENTION_ENV_VAR,
    WINDOW_SCHEMA_VERSION,
    WINDOW_WIDTH_ENV_VAR,
    HistogramWindow,
    ManualClock,
    TimeSeriesAggregator,
    WindowSummary,
    disable_timeseries,
    enable_timeseries,
    get_timeseries,
    log_buckets,
    maybe_roll_timeseries,
    set_timeseries,
    windows_from_events,
)


@pytest.fixture()
def clock():
    return ManualClock()


@pytest.fixture()
def aggregator(clock):
    return TimeSeriesAggregator(width=10.0, retention=5, clock=clock)


def close_one(aggregator, clock):
    """Advance past the next boundary and roll; returns closed windows."""
    clock.advance(aggregator.width)
    aggregator.maybe_roll()
    return aggregator.windows()


class TestLogBuckets:
    def test_default_bounds_are_reproducible(self):
        assert log_buckets(-6, 4, 3) == WINDOW_BUCKETS
        assert len(WINDOW_BUCKETS) == 31
        assert WINDOW_BUCKETS[0] == pytest.approx(1e-6)
        assert WINDOW_BUCKETS[-1] == pytest.approx(1e4)

    def test_strictly_increasing(self):
        bounds = log_buckets(-3, 3, 4)
        assert all(a < b for a, b in zip(bounds, bounds[1:]))

    def test_validates_arguments(self):
        with pytest.raises(ValueError):
            log_buckets(2, 2)
        with pytest.raises(ValueError):
            log_buckets(0, 1, per_decade=0)


class TestHistogramWindow:
    def build(self, values):
        clock = ManualClock()
        aggregator = TimeSeriesAggregator(width=10.0, clock=clock)
        for value in values:
            aggregator.on_histogram("m", value)
        clock.advance(10.0)
        aggregator.maybe_roll()
        return aggregator.windows()[-1].histograms["m"]

    def test_quantiles_interpolate_and_clamp(self):
        histogram = self.build([0.001 * i for i in range(1, 11)])
        assert histogram.count == 10
        assert histogram.sum == pytest.approx(0.055)
        assert histogram.min == pytest.approx(0.001)
        assert histogram.max == pytest.approx(0.010)
        # p99 clamps to the observed maximum; p50 stays inside range.
        assert histogram.quantile(0.99) == pytest.approx(0.010)
        assert histogram.min <= histogram.quantile(0.50) <= histogram.max

    def test_single_observation_quantiles_collapse(self):
        histogram = self.build([0.5])
        for q in (0.0, 0.5, 0.95, 1.0):
            assert histogram.quantile(q) == pytest.approx(0.5)

    def test_empty_histogram_quantile_is_zero(self):
        empty = HistogramWindow(
            counts=tuple([0] * (len(WINDOW_BUCKETS) + 1)),
            count=0,
            sum=0.0,
            min=0.0,
            max=0.0,
        )
        assert empty.quantile(0.99) == 0.0
        assert empty.mean == 0.0

    def test_quantile_rejects_out_of_range(self):
        histogram = self.build([1.0])
        with pytest.raises(ValueError):
            histogram.quantile(1.5)

    def test_stat_answers_every_catalogued_name(self):
        histogram = self.build([0.1, 0.2, 0.3])
        for name in HISTOGRAM_STATS:
            assert isinstance(histogram.stat(name), float)
        assert histogram.stat("count") == 3.0
        assert histogram.stat("mean") == pytest.approx(0.2)
        with pytest.raises(ValueError):
            histogram.stat("p42")

    def test_payload_round_trip_is_exact(self):
        histogram = self.build([0.0017, 24.496869998477838])
        payload = json.loads(json.dumps(histogram.to_payload()))
        assert HistogramWindow.from_payload(payload) == histogram

    def test_from_payload_rejects_wrong_bucket_count(self):
        with pytest.raises(ValueError):
            HistogramWindow.from_payload({"counts": [0, 1], "count": 1})


class TestWindowRolling:
    def test_no_close_before_boundary(self, aggregator, clock):
        aggregator.on_counter("c", 1.0)
        clock.advance(9.9)
        assert aggregator.maybe_roll() == 0
        assert aggregator.windows() == ()

    def test_boundary_cross_closes_exactly_one(self, aggregator, clock):
        aggregator.on_counter("c", 3.0)
        clock.advance(10.0)
        assert aggregator.maybe_roll() == 1
        (window,) = aggregator.windows()
        assert window.index == 0
        assert window.start == 0.0
        assert window.end == 10.0
        assert window.counters == {"c": 3.0}

    def test_idle_gap_closes_one_window_not_many(self, aggregator, clock):
        aggregator.on_counter("c", 1.0)
        clock.advance(1000.0)  # skip ~100 boundaries
        assert aggregator.maybe_roll() == 1
        aggregator.on_counter("c", 2.0)
        clock.advance(10.0)
        aggregator.maybe_roll()
        indices = [w.index for w in aggregator.windows()]
        assert indices == [0, 100]  # non-consecutive: no empty flood

    def test_counter_deltas_reset_per_window(self, aggregator, clock):
        aggregator.on_counter("c", 5.0)
        close_one(aggregator, clock)
        aggregator.on_counter("c", 2.0)
        close_one(aggregator, clock)
        first, second = aggregator.windows()
        assert first.counters["c"] == 5.0
        assert second.counters["c"] == 2.0

    def test_gauge_keeps_last_value(self, aggregator, clock):
        aggregator.on_gauge("g", 1.0)
        aggregator.on_gauge("g", 0.25)
        close_one(aggregator, clock)
        assert aggregator.windows()[0].gauges["g"] == 0.25

    def test_idle_window_has_empty_maps(self, aggregator, clock):
        aggregator.maybe_roll()  # opens the first window, touches nothing
        close_one(aggregator, clock)
        (window,) = aggregator.windows()
        assert window.metric_names() == ()

    def test_retention_ring_is_bounded(self, aggregator, clock):
        for i in range(8):
            aggregator.on_counter("c", float(i + 1))
            close_one(aggregator, clock)
        windows = aggregator.windows()
        assert len(windows) == 5  # retention
        assert aggregator.closed_count == 8
        assert [w.counters["c"] for w in windows] == [4.0, 5.0, 6.0, 7.0, 8.0]

    def test_validates_configuration(self):
        with pytest.raises(ValueError):
            TimeSeriesAggregator(width=0.0)
        with pytest.raises(ValueError):
            TimeSeriesAggregator(retention=0)

    def test_thread_safety_counter_deltas_exact(self, aggregator, clock):
        threads, per_thread = 8, 2_000

        def work():
            for _ in range(per_thread):
                aggregator.on_counter("c", 1.0)

        workers = [threading.Thread(target=work) for _ in range(threads)]
        for t in workers:
            t.start()
        for t in workers:
            t.join()
        close_one(aggregator, clock)
        assert aggregator.windows()[0].counters["c"] == threads * per_thread


class TestWindowSummaryStat:
    def summary(self, aggregator, clock):
        aggregator.on_counter("runs", 4.0)
        aggregator.on_gauge("alpha", 0.59)
        aggregator.on_histogram("lat", 0.01)
        close_one(aggregator, clock)
        return aggregator.windows()[0]

    def test_stat_dispatches_by_kind(self, aggregator, clock):
        window = self.summary(aggregator, clock)
        assert window.stat("runs", "delta") == 4.0
        assert window.stat("alpha", "last") == 0.59
        assert window.stat("lat", "p99") == pytest.approx(0.01)
        assert window.stat("lat", "count") == 1.0

    def test_stat_is_none_for_missing_or_mismatched(self, aggregator, clock):
        window = self.summary(aggregator, clock)
        assert window.stat("absent", "delta") is None
        assert window.stat("runs", "p99") is None  # counters have no quantiles
        assert window.stat("alpha", "delta") is None

    def test_metric_names_sorted_union(self, aggregator, clock):
        window = self.summary(aggregator, clock)
        assert window.metric_names() == ("alpha", "lat", "runs")


class TestObserverWiring:
    def test_registry_updates_flow_into_windows(self, clock):
        registry = MetricsRegistry()
        aggregator = TimeSeriesAggregator(width=10.0, clock=clock)
        registry.attach_observer(aggregator)
        registry.counter("c").inc(2.0)
        registry.gauge("g").set(7.0)
        registry.histogram("h", buckets=(1.0,)).observe(0.5)
        close_one(aggregator, clock)
        (window,) = aggregator.windows()
        assert window.counters == {"c": 2.0}
        assert window.gauges == {"g": 7.0}
        assert window.histograms["h"].count == 1

    def test_observer_attaches_to_preexisting_instruments(self, clock):
        registry = MetricsRegistry()
        counter = registry.counter("pre")
        aggregator = TimeSeriesAggregator(width=10.0, clock=clock)
        registry.attach_observer(aggregator)
        counter.inc()
        close_one(aggregator, clock)
        assert aggregator.windows()[0].counters == {"pre": 1.0}

    def test_detach_stops_the_flow(self, clock):
        registry = MetricsRegistry()
        aggregator = TimeSeriesAggregator(width=10.0, clock=clock)
        registry.attach_observer(aggregator)
        registry.counter("c").inc()
        registry.detach_observer()
        registry.counter("c").inc(10.0)
        close_one(aggregator, clock)
        assert aggregator.windows()[0].counters == {"c": 1.0}


class TestJournalRoundTrip:
    def test_window_events_rebuild_bit_identically(self, tmp_path, clock):
        journal = EventJournal(tmp_path / "j.jsonl")
        aggregator = TimeSeriesAggregator(
            width=10.0, clock=clock, journal=journal
        )
        aggregator.on_counter("runs", 3.0)
        aggregator.on_histogram("lat", 0.0017)
        aggregator.on_histogram("lat", 24.496869998477838)
        close_one(aggregator, clock)
        aggregator.on_gauge("alpha", 0.123456789012345)
        close_one(aggregator, clock)
        journal.close()

        rebuilt = windows_from_events(read_journal(tmp_path / "j.jsonl").events)
        assert rebuilt == aggregator.windows()

    def test_window_payload_carries_schema_version(self, tmp_path, clock):
        journal = EventJournal(tmp_path / "j.jsonl")
        aggregator = TimeSeriesAggregator(
            width=10.0, clock=clock, journal=journal
        )
        aggregator.on_counter("c", 1.0)
        close_one(aggregator, clock)
        journal.close()
        (event,) = read_journal(tmp_path / "j.jsonl").events
        assert event.type == "window"
        assert event.payload["window_v"] == WINDOW_SCHEMA_VERSION

    def test_newer_window_versions_are_skipped(self):
        newer = obs.JournalEvent(
            seq=1,
            type="window",
            payload={"window_v": WINDOW_SCHEMA_VERSION + 1, "index": 0},
        )
        assert windows_from_events([newer]) == ()

    def test_malformed_payloads_are_skipped(self):
        bad = obs.JournalEvent(
            seq=1,
            type="window",
            payload={"window_v": 1, "histograms": {"m": {"counts": [1]}}},
        )
        assert windows_from_events([bad]) == ()

    def test_non_window_events_are_ignored(self):
        other = obs.JournalEvent(seq=1, type="estimate", payload={})
        assert windows_from_events([other]) == ()

    def test_disabled_journal_appends_nothing(self, tmp_path, clock):
        aggregator = TimeSeriesAggregator(
            width=10.0, clock=clock, journal=obs.NOOP_JOURNAL
        )
        aggregator.on_counter("c", 1.0)
        close_one(aggregator, clock)
        assert aggregator.closed_count == 1  # ring still fills

    def test_replay_counts_window_events_without_driving_metrics(
        self, tmp_path, clock
    ):
        journal = EventJournal(tmp_path / "j.jsonl")
        aggregator = TimeSeriesAggregator(
            width=10.0, clock=clock, journal=journal
        )
        aggregator.on_counter("c", 1.0)
        close_one(aggregator, clock)
        journal.close()

        registry = MetricsRegistry()
        ledger = obs.AccuracyLedger()
        result = obs.replay(
            tmp_path / "j.jsonl", ledger=ledger, registry=registry
        )
        assert result.counts.get("window") == 1
        assert result.applied == 1
        # Window events reconstruct through windows_from_events, never
        # by re-driving instruments: the registry must stay untouched.
        assert tuple(registry.names()) == ()


class TestEnvironmentConfiguration:
    def test_defaults_without_env(self, monkeypatch):
        monkeypatch.delenv(WINDOW_WIDTH_ENV_VAR, raising=False)
        monkeypatch.delenv(WINDOW_RETENTION_ENV_VAR, raising=False)
        aggregator = TimeSeriesAggregator()
        assert aggregator.width == DEFAULT_WINDOW_WIDTH
        assert aggregator.retention == DEFAULT_WINDOW_RETENTION

    def test_env_overrides(self, monkeypatch):
        monkeypatch.setenv(WINDOW_WIDTH_ENV_VAR, "2.5")
        monkeypatch.setenv(WINDOW_RETENTION_ENV_VAR, "7")
        aggregator = TimeSeriesAggregator()
        assert aggregator.width == 2.5
        assert aggregator.retention == 7

    def test_invalid_env_falls_back(self, monkeypatch):
        monkeypatch.setenv(WINDOW_WIDTH_ENV_VAR, "not-a-number")
        monkeypatch.setenv(WINDOW_RETENTION_ENV_VAR, "-3")
        aggregator = TimeSeriesAggregator()
        assert aggregator.width == DEFAULT_WINDOW_WIDTH
        assert aggregator.retention == DEFAULT_WINDOW_RETENTION

    def test_explicit_arguments_beat_env(self, monkeypatch):
        monkeypatch.setenv(WINDOW_WIDTH_ENV_VAR, "99")
        aggregator = TimeSeriesAggregator(width=1.0)
        assert aggregator.width == 1.0


class TestDefaultAggregatorLifecycle:
    @pytest.fixture(autouse=True)
    def isolate(self):
        previous = set_timeseries(None)
        yield
        set_timeseries(previous)

    def test_enable_attaches_and_sets_default(self, clock):
        registry = MetricsRegistry()
        aggregator = enable_timeseries(
            width=10.0, clock=clock, registry=registry
        )
        assert get_timeseries() is aggregator
        assert registry.observer is aggregator
        registry.counter("c").inc()
        clock.advance(10.0)
        assert maybe_roll_timeseries() == 1
        assert aggregator.windows()[0].counters == {"c": 1.0}

    def test_disable_detaches_only_its_own_observer(self, clock):
        registry = MetricsRegistry()
        enable_timeseries(width=10.0, clock=clock, registry=registry)
        other = TimeSeriesAggregator(width=10.0, clock=clock)
        registry.attach_observer(other)  # someone else took the slot
        disable_timeseries(registry=registry)
        assert registry.observer is other  # not clobbered
        assert get_timeseries() is None

    def test_maybe_roll_is_noop_when_disabled(self):
        assert get_timeseries() is None
        assert maybe_roll_timeseries() == 0

    def test_snapshot_shape(self, clock):
        registry = MetricsRegistry()
        aggregator = enable_timeseries(
            width=10.0, retention=3, clock=clock, registry=registry
        )
        registry.counter("c").inc()
        clock.advance(10.0)
        aggregator.maybe_roll()
        snapshot = aggregator.snapshot()
        assert snapshot["width"] == 10.0
        assert snapshot["retention"] == 3
        assert snapshot["closed"] == 1
        assert snapshot["windows"][0]["counters"] == {"c": 1.0}
        json.dumps(snapshot)  # JSON-serializable end to end
