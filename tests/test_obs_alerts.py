"""The declarative SLO alert engine: rule validation, signal paths,
wildcards, guards, delta mode, state transitions, and journal emission."""

import json

import pytest

from repro import obs
from repro.obs.alerts import AlertEngine, AlertRule, default_rules


def make_observation(
    metrics=None, ledger=None, drift=None, cache=None, exemplars=None
):
    base_cache = {
        "hits": 0,
        "misses": 0,
        "lookups": 0,
        "hit_rate": 0.0,
        "size": 0,
        "evictions": 0,
        "invalidations": 0,
    }
    if cache:
        base_cache.update(cache)
    return {
        "version": 1,
        "metrics": metrics or {},
        "ledger": ledger or {},
        "drift": drift or {},
        "cache": base_cache,
        "exemplars": exemplars or {},
    }


def ledger_entry(mean_q=1.0, rmse=10.0, count=32, remedy=0.0):
    return {
        "count": count,
        "mean_q_error": mean_q,
        "rmse_percent": rmse,
        "slope": 1.0,
        "remedy_fraction": remedy,
    }


class TestAlertRule:
    def test_rejects_bad_operator(self):
        with pytest.raises(ValueError):
            AlertRule(name="r", signal="cache:hit_rate", op="!=", threshold=1)

    def test_rejects_bad_severity(self):
        with pytest.raises(ValueError):
            AlertRule(
                name="r", signal="cache:hit_rate", op=">", threshold=1,
                severity="page-me",
            )

    def test_rejects_bad_mode(self):
        with pytest.raises(ValueError):
            AlertRule(
                name="r", signal="cache:hit_rate", op=">", threshold=1,
                mode="rate",
            )

    def test_rejects_unknown_signal_root(self):
        with pytest.raises(ValueError):
            AlertRule(name="r", signal="weather:rain", op=">", threshold=1)

    def test_rejects_empty_name(self):
        with pytest.raises(ValueError):
            AlertRule(name="", signal="cache:hit_rate", op=">", threshold=1)

    def test_compare_covers_all_operators(self):
        mk = lambda op: AlertRule(
            name="r", signal="cache:hit_rate", op=op, threshold=1.0
        )
        assert mk(">").compare(1.5) and not mk(">").compare(1.0)
        assert mk(">=").compare(1.0) and not mk(">=").compare(0.9)
        assert mk("<").compare(0.5) and not mk("<").compare(1.0)
        assert mk("<=").compare(1.0) and not mk("<=").compare(1.1)


class TestSignalResolution:
    def test_scalar_cache_signal(self):
        rule = AlertRule(
            name="lowhit", signal="cache:hit_rate", op="<", threshold=0.5
        )
        engine = AlertEngine(rules=[rule])
        report = engine.evaluate(
            make_observation(cache={"hit_rate": 0.2}), emit=False
        )
        assert len(report.alerts) == 1
        assert report.alerts[0].firing
        assert report.alerts[0].value == 0.2

    def test_metric_counter_signal(self):
        rule = AlertRule(
            name="busy", signal="metric:context.queries", op=">", threshold=5
        )
        engine = AlertEngine(rules=[rule])
        metrics = {
            "context.queries": {"type": "counter", "value": 9.0, "help": ""}
        }
        report = engine.evaluate(make_observation(metrics=metrics), emit=False)
        assert report.alerts[0].firing
        assert report.alerts[0].value == 9.0

    def test_metric_histogram_fields(self):
        metrics = {
            "lat": {"type": "histogram", "count": 4, "sum": 8.0, "buckets": []}
        }
        for field, expected in (("count", 4.0), ("sum", 8.0), ("mean", 2.0)):
            rule = AlertRule(
                name="h", signal=f"metric:lat:{field}", op=">=", threshold=0
            )
            report = AlertEngine(rules=[rule]).evaluate(
                make_observation(metrics=metrics), emit=False
            )
            assert report.alerts[0].value == expected

    def test_missing_signal_produces_no_alert(self):
        rule = AlertRule(
            name="ghost", signal="ledger:hive/scan:mean_q_error", op=">",
            threshold=1,
        )
        report = AlertEngine(rules=[rule]).evaluate(
            make_observation(), emit=False
        )
        assert report.alerts == ()

    def test_wildcard_fans_out_over_ledger_keys(self):
        rule = AlertRule(
            name="q", signal="ledger:*:mean_q_error", op=">", threshold=2.0
        )
        ledger = {
            "hive/scan": ledger_entry(mean_q=5.0),
            "spark/join": ledger_entry(mean_q=1.1),
        }
        report = AlertEngine(rules=[rule]).evaluate(
            make_observation(ledger=ledger), emit=False
        )
        by_instance = {a.instance: a for a in report.alerts}
        assert set(by_instance) == {"hive/scan", "spark/join"}
        assert by_instance["hive/scan"].firing
        assert not by_instance["spark/join"].firing

    def test_wildcard_fans_out_over_drift_systems(self):
        rule = AlertRule(
            name="d", signal="drift:*:drifted", op=">=", threshold=1.0
        )
        drift = {
            "hive": {"drifted": True, "statistic": 9.0},
            "spark": {"drifted": False, "statistic": 0.1},
        }
        report = AlertEngine(rules=[rule]).evaluate(
            make_observation(drift=drift), emit=False
        )
        by_instance = {a.instance: a for a in report.alerts}
        assert by_instance["hive"].firing
        assert not by_instance["spark"].firing


class TestGuards:
    def test_guard_suppresses_until_sample_size(self):
        rule = AlertRule(
            name="q", signal="ledger:*:mean_q_error", op=">", threshold=2.0,
            guard=("ledger:*:count", 16.0),
        )
        engine = AlertEngine(rules=[rule])
        small = make_observation(
            ledger={"hive/scan": ledger_entry(mean_q=9.0, count=4)}
        )
        report = engine.evaluate(small, emit=False)
        assert not report.alerts[0].firing
        big = make_observation(
            ledger={"hive/scan": ledger_entry(mean_q=9.0, count=64)}
        )
        report = engine.evaluate(big, emit=False)
        assert report.alerts[0].firing

    def test_guard_with_missing_signal_suppresses(self):
        rule = AlertRule(
            name="lowhit", signal="cache:hit_rate", op="<", threshold=0.5,
            guard=("cache:nonexistent", 1.0),
        )
        report = AlertEngine(rules=[rule]).evaluate(
            make_observation(cache={"hit_rate": 0.0}), emit=False
        )
        assert not report.alerts[0].firing


class TestDeltaMode:
    def test_first_evaluation_establishes_baseline(self):
        rule = AlertRule(
            name="spike", signal="metric:errors", op=">", threshold=5.0,
            mode="delta",
        )
        engine = AlertEngine(rules=[rule])

        def observe(total):
            return make_observation(
                metrics={"errors": {"type": "counter", "value": total}}
            )

        first = engine.evaluate(observe(100.0), emit=False)
        assert first.alerts[0].value == 0.0
        assert not first.alerts[0].firing
        second = engine.evaluate(observe(110.0), emit=False)
        assert second.alerts[0].value == 10.0
        assert second.alerts[0].firing
        third = engine.evaluate(observe(112.0), emit=False)
        assert third.alerts[0].value == 2.0
        assert not third.alerts[0].firing


class TestStateTransitions:
    def _engine(self):
        return AlertEngine(rules=[
            AlertRule(
                name="q", signal="ledger:*:mean_q_error", op=">", threshold=2.0
            )
        ])

    def test_fire_then_hold_then_resolve(self):
        engine = self._engine()
        bad = make_observation(ledger={"hive/scan": ledger_entry(mean_q=9.0)})
        good = make_observation(ledger={"hive/scan": ledger_entry(mean_q=1.1)})

        first = engine.evaluate(bad, emit=False)
        assert first.fired == ("q|hive/scan",)
        assert first.resolved == ()

        held = engine.evaluate(bad, emit=False)
        assert held.fired == ()
        assert held.resolved == ()
        assert held.firing[0].rule == "q"
        assert engine.firing_keys == ("q|hive/scan",)

        third = engine.evaluate(good, emit=False)
        assert third.fired == ()
        assert third.resolved == ("q|hive/scan",)
        assert engine.firing_keys == ()

    def test_counters_track_transitions(self):
        registry = obs.MetricsRegistry()
        previous = obs.set_registry(registry)
        try:
            engine = self._engine()
            bad = make_observation(
                ledger={"hive/scan": ledger_entry(mean_q=9.0)}
            )
            good = make_observation(
                ledger={"hive/scan": ledger_entry(mean_q=1.1)}
            )
            engine.evaluate(bad, emit=False)
            engine.evaluate(good, emit=False)
            assert registry.counter("alerts.evaluations").value == 2.0
            assert registry.counter("alerts.fired").value == 1.0
            assert registry.counter("alerts.resolved").value == 1.0
        finally:
            obs.set_registry(previous)

    def test_duplicate_rule_names_rejected(self):
        rule = AlertRule(
            name="dup", signal="cache:hit_rate", op=">", threshold=1
        )
        with pytest.raises(ValueError):
            AlertEngine(rules=[rule, rule])


class TestExemplars:
    def test_firing_alert_carries_system_exemplars(self):
        rule = AlertRule(
            name="q", signal="ledger:*:mean_q_error", op=">", threshold=2.0
        )
        observation = make_observation(
            ledger={"hive/scan": ledger_entry(mean_q=9.0)},
            exemplars={"hive": ["q-000003", "q-000007"]},
        )
        report = AlertEngine(rules=[rule]).evaluate(observation, emit=False)
        assert report.alerts[0].exemplars == ("q-000003", "q-000007")

    def test_quiet_alert_has_no_exemplars(self):
        rule = AlertRule(
            name="q", signal="ledger:*:mean_q_error", op=">", threshold=2.0
        )
        observation = make_observation(
            ledger={"hive/scan": ledger_entry(mean_q=1.1)},
            exemplars={"hive": ["q-000003"]},
        )
        report = AlertEngine(rules=[rule]).evaluate(observation, emit=False)
        assert report.alerts[0].exemplars == ()


class TestJournalEmission:
    def test_transitions_append_schema_versioned_events(self, tmp_path):
        journal = obs.EventJournal(tmp_path / "j.jsonl")
        rule = AlertRule(
            name="q", signal="ledger:*:mean_q_error", op=">", threshold=2.0
        )
        engine = AlertEngine(rules=[rule])
        bad = make_observation(
            ledger={"hive/scan": ledger_entry(mean_q=9.0)},
            exemplars={"hive": ["q-000005"]},
        )
        good = make_observation(ledger={"hive/scan": ledger_entry(mean_q=1.1)})
        engine.evaluate(bad, journal=journal)
        engine.evaluate(bad, journal=journal)  # held state: no new event
        engine.evaluate(good, journal=journal)
        journal.close()

        events = obs.read_journal(tmp_path / "j.jsonl").events
        alert_events = [e for e in events if e.type == "alert"]
        assert [e.payload["state"] for e in alert_events] == [
            "firing", "resolved",
        ]
        firing = alert_events[0].payload
        assert firing["alert_version"] == 1
        assert firing["rule"] == "q"
        assert firing["instance"] == "hive/scan"
        assert firing["exemplars"] == ["q-000005"]
        assert firing["value"] == 9.0

    def test_emit_false_leaves_journal_untouched(self, tmp_path):
        journal = obs.EventJournal(tmp_path / "j.jsonl")
        rule = AlertRule(
            name="q", signal="ledger:*:mean_q_error", op=">", threshold=2.0
        )
        bad = make_observation(ledger={"hive/scan": ledger_entry(mean_q=9.0)})
        AlertEngine(rules=[rule]).evaluate(bad, journal=journal, emit=False)
        journal.close()
        events = obs.read_journal(tmp_path / "j.jsonl").events
        assert [e for e in events if e.type == "alert"] == []


class TestDeterminism:
    def test_same_observation_yields_byte_identical_reports(self):
        observation = make_observation(
            ledger={
                "hive/scan": ledger_entry(mean_q=9.0),
                "spark/join": ledger_entry(mean_q=1.2, rmse=90.0),
            },
            drift={"hive": {"drifted": True, "statistic": 7.5}},
            exemplars={"hive": ["q-000001", "q-000002"]},
        )
        first = AlertEngine().evaluate(observation, emit=False).to_json()
        second = AlertEngine().evaluate(observation, emit=False).to_json()
        assert first == second
        parsed = json.loads(first)
        assert parsed["version"] == 1
        assert parsed["worst_severity"] == "critical"

    def test_report_alerts_sorted_by_key(self):
        observation = make_observation(
            ledger={
                "spark/join": ledger_entry(),
                "hive/scan": ledger_entry(),
                "presto/agg": ledger_entry(),
            }
        )
        rule = AlertRule(
            name="q", signal="ledger:*:mean_q_error", op=">", threshold=2.0
        )
        report = AlertEngine(rules=[rule]).evaluate(observation, emit=False)
        keys = [a.key for a in report.alerts]
        assert keys == sorted(keys)


class TestRuleSets:
    def test_default_rules_validate_and_cover_the_slos(self):
        rules = default_rules()
        names = {rule.name for rule in rules}
        assert {
            "slo-q-error", "slo-rmse", "drift-alarm",
            "remedy-saturation", "cache-hit-rate",
        } <= names

    def test_default_rules_fire_on_degraded_accuracy(self):
        observation = make_observation(
            ledger={"hive/scan": ledger_entry(mean_q=10.0, rmse=200.0)},
            exemplars={"hive": ["q-000009"]},
        )
        report = AlertEngine().evaluate(observation, emit=False)
        firing = {a.rule for a in report.firing}
        assert "slo-q-error" in firing
        assert "slo-rmse" in firing
        assert report.worst_severity == "critical"

    def test_rules_from_json_round_trip(self, tmp_path):
        data = [
            {
                "name": "custom-q",
                "signal": "ledger:*:mean_q_error",
                "op": ">",
                "threshold": 3.0,
                "severity": "critical",
                "guard": ["ledger:*:count", 8],
                "description": "custom accuracy SLO",
            }
        ]
        path = tmp_path / "rules.json"
        path.write_text(json.dumps(data))
        rules = obs.load_rules(path)
        assert len(rules) == 1
        assert rules[0].name == "custom-q"
        assert rules[0].guard == ("ledger:*:count", 8.0)

    def test_rules_from_json_rejects_malformed(self):
        with pytest.raises(ValueError):
            obs.rules_from_json({"not": "a list"})
        with pytest.raises(ValueError):
            obs.rules_from_json(["not an object"])
        with pytest.raises(ValueError):
            obs.rules_from_json([{"name": "x"}])  # missing fields
        with pytest.raises(ValueError):
            obs.rules_from_json(
                [{
                    "name": "x", "signal": "cache:hit_rate", "op": ">",
                    "threshold": 1, "guard": "not-a-pair",
                }]
            )


# ----------------------------------------------------------------------
# Windowed (trend) signals
# ----------------------------------------------------------------------
def windowed_observation(per_window, width=10.0, **kwargs):
    """An observation whose timeseries slice holds one closed window per
    entry of ``per_window``: ``{name: ("hist", values) | ("counter",
    delta) | ("gauge", value)}``."""
    from repro.obs.timeseries import ManualClock, TimeSeriesAggregator

    clock = ManualClock()
    aggregator = TimeSeriesAggregator(
        width=width, clock=clock, journal=obs.NOOP_JOURNAL
    )
    for window in per_window:
        for name, (kind, value) in window.items():
            if kind == "hist":
                for observed in value:
                    aggregator.on_histogram(name, observed)
            elif kind == "counter":
                aggregator.on_counter(name, value)
            else:
                aggregator.on_gauge(name, value)
        clock.advance(width)
    aggregator.maybe_roll()
    observation = make_observation(**kwargs)
    observation["timeseries"] = aggregator.snapshot()
    return observation


class TestWindowSignals:
    def evaluate(self, rule, observation):
        return AlertEngine([rule]).evaluate(observation, emit=False)

    def test_three_part_signal_reads_newest_window(self):
        observation = windowed_observation(
            [{"lat": ("hist", [0.01])}, {"lat": ("hist", [0.3])}]
        )
        rule = AlertRule(
            name="r", signal="window:lat:p99", op=">", threshold=0.05
        )
        report = self.evaluate(rule, observation)
        assert report.alerts[0].firing
        assert report.alerts[0].value == pytest.approx(0.3)

    def test_average_over_span(self):
        observation = windowed_observation(
            [{"lat": ("hist", [0.1])}, {"lat": ("hist", [0.3])}]
        )
        rule = AlertRule(
            name="r", signal="window:lat:p99:avg:2", op=">", threshold=0.19
        )
        report = self.evaluate(rule, observation)
        assert report.alerts[0].firing
        assert report.alerts[0].value == pytest.approx(0.2)

    def test_counter_delta_and_gauge_last_stats(self):
        observation = windowed_observation(
            [
                {"runs": ("counter", 4.0), "alpha": ("gauge", 0.5)},
                {"runs": ("counter", 6.0), "alpha": ("gauge", 0.9)},
            ]
        )
        runs = AlertRule(
            name="runs", signal="window:runs:delta:sum:2", op=">=", threshold=10
        )
        alpha = AlertRule(
            name="alpha", signal="window:alpha:last", op=">", threshold=0.8
        )
        assert self.evaluate(runs, observation).alerts[0].firing
        assert self.evaluate(alpha, observation).alerts[0].firing

    def test_slope_detects_sustained_growth(self):
        observation = windowed_observation(
            [{"q": ("hist", [1.0])}, {"q": ("hist", [2.0])}, {"q": ("hist", [3.0])}]
        )
        rule = AlertRule(
            name="r", signal="window:q:mean:slope:3", op=">", threshold=0.5
        )
        report = self.evaluate(rule, observation)
        assert report.alerts[0].firing
        assert report.alerts[0].value == pytest.approx(1.0)

    def test_flat_series_has_zero_slope(self):
        observation = windowed_observation(
            [{"q": ("hist", [2.0])}, {"q": ("hist", [2.0])}]
        )
        rule = AlertRule(
            name="r", signal="window:q:mean:slope:2", op=">", threshold=0.1
        )
        report = self.evaluate(rule, observation)
        assert not report.alerts[0].firing
        assert report.alerts[0].value == 0.0

    def test_wildcard_fans_out_per_system(self):
        observation = windowed_observation(
            [
                {
                    "accuracy.q_error.hive": ("hist", [1.0]),
                    "accuracy.q_error.spark": ("hist", [9.0]),
                }
            ],
            exemplars={"spark": ["q-000042"]},
        )
        rule = AlertRule(
            name="r", signal="window:accuracy.q_error.*:mean", op=">",
            threshold=5.0,
        )
        report = self.evaluate(rule, observation)
        by_instance = {alert.instance: alert for alert in report.alerts}
        assert set(by_instance) == {"hive", "spark"}
        assert not by_instance["hive"].firing
        assert by_instance["spark"].firing
        assert by_instance["spark"].exemplars == ("q-000042",)

    def test_missing_metric_produces_no_alert(self):
        observation = windowed_observation([{"lat": ("hist", [0.1])}])
        rule = AlertRule(
            name="r", signal="window:absent:p99", op=">", threshold=0.0
        )
        assert self.evaluate(rule, observation).alerts == ()

    def test_observation_without_timeseries_is_quiet(self):
        observation = make_observation()  # no timeseries slice at all
        rule = AlertRule(
            name="r", signal="window:lat:p99", op=">", threshold=0.0
        )
        assert self.evaluate(rule, observation).alerts == ()

    def test_span_longer_than_history_uses_what_exists(self):
        observation = windowed_observation([{"lat": ("hist", [0.2])}])
        rule = AlertRule(
            name="r", signal="window:lat:p99:avg:5", op=">", threshold=0.1
        )
        report = self.evaluate(rule, observation)
        assert report.alerts[0].firing


class TestWindowSignalValidation:
    def test_unknown_stat_names_the_rule(self):
        with pytest.raises(ValueError, match="'typo-stat'"):
            AlertRule(
                name="typo-stat", signal="window:m:p42", op=">", threshold=1
            )

    def test_unknown_aggregation_names_the_rule(self):
        with pytest.raises(ValueError, match="'typo-agg'"):
            AlertRule(
                name="typo-agg", signal="window:m:p99:bogus:5", op=">",
                threshold=1,
            )

    def test_non_positive_span_rejected(self):
        with pytest.raises(ValueError, match="span"):
            AlertRule(
                name="r", signal="window:m:p99:avg:0", op=">", threshold=1
            )
        with pytest.raises(ValueError, match="span"):
            AlertRule(
                name="r", signal="window:m:p99:avg:soon", op=">", threshold=1
            )

    def test_wrong_arity_rejected(self):
        with pytest.raises(ValueError, match="window:<metric>:<stat>"):
            AlertRule(name="r", signal="window:m:p99:avg", op=">", threshold=1)

    def test_guard_signals_are_validated_too(self):
        with pytest.raises(ValueError, match="'guarded'"):
            AlertRule(
                name="guarded", signal="cache:hit_rate", op="<", threshold=1,
                guard=("window:m:nope", 1.0),
            )


class TestTrendDefaultRules:
    def test_default_set_includes_trend_rules(self):
        names = {rule.name for rule in default_rules()}
        assert {"trend-estimate-latency", "trend-q-error"} <= names

    def test_trend_latency_fires_on_sustained_p99(self):
        slow = {"costing.estimate_wall_seconds": ("hist", [0.2] * 8)}
        observation = windowed_observation([slow] * 5)
        report = AlertEngine().evaluate(observation, emit=False)
        assert "trend-estimate-latency" in {a.rule for a in report.firing}

    def test_trend_latency_guard_suppresses_thin_windows(self):
        # Same slow latency, but far too few samples to trust the trend.
        slow = {"costing.estimate_wall_seconds": ("hist", [0.2])}
        observation = windowed_observation([slow] * 3)
        report = AlertEngine().evaluate(observation, emit=False)
        assert "trend-estimate-latency" not in {a.rule for a in report.firing}


class TestRuleFileErrors:
    def test_unknown_signal_prefix_names_the_rule(self):
        with pytest.raises(ValueError, match="'bad-sig'"):
            obs.rules_from_json(
                [{"name": "bad-sig", "signal": "nosuch:x", "op": ">",
                  "threshold": 1}]
            )

    def test_malformed_guard_names_the_rule(self):
        with pytest.raises(ValueError, match="'bad-guard'"):
            obs.rules_from_json(
                [{"name": "bad-guard", "signal": "cache:hit_rate", "op": ">",
                  "threshold": 1, "guard": ["cache:lookups", "many"]}]
            )

    def test_nameless_rule_reported_by_position(self):
        with pytest.raises(ValueError, match="rule #0"):
            obs.rules_from_json([{"signal": "cache:hit_rate"}])

    def test_missing_threshold_names_the_rule(self):
        with pytest.raises(ValueError, match="'no-threshold'"):
            obs.rules_from_json(
                [{"name": "no-threshold", "signal": "cache:hit_rate",
                  "op": ">"}]
            )


class TestFlightRecorderIntegration:
    """A firing transition freezes the flight recorder's rings into an
    incident bundle naming the breaching alerts."""

    def _breaching_observation(self):
        return make_observation(
            ledger={"hive/join": ledger_entry(mean_q=9.0, count=32)}
        )

    def test_firing_transition_triggers_one_incident(self):
        recorder = obs.FlightRecorder()
        previous = obs.set_flight_recorder(recorder)
        try:
            engine = AlertEngine()
            engine.evaluate(self._breaching_observation(), emit=False)
            # Still firing on the next evaluation: no new transition,
            # no second bundle.
            engine.evaluate(self._breaching_observation(), emit=False)
        finally:
            obs.set_flight_recorder(previous)
        (bundle,) = recorder.incidents()
        assert bundle.trigger["kind"] == "alert"
        rules = [alert["rule"] for alert in bundle.trigger["alerts"]]
        assert "slo-q-error" in rules

    def test_no_recorder_means_no_side_effects(self):
        previous = obs.set_flight_recorder(None)
        try:
            report = AlertEngine().evaluate(
                self._breaching_observation(), emit=False
            )
        finally:
            obs.set_flight_recorder(previous)
        assert report.fired  # the evaluation itself is unaffected

    def test_emitting_evaluation_journals_the_bundle_group(self, tmp_path):
        recorder = obs.FlightRecorder()
        previous_recorder = obs.set_flight_recorder(recorder)
        journal = obs.EventJournal(tmp_path / "j.jsonl")
        try:
            AlertEngine().evaluate(
                self._breaching_observation(), journal=journal
            )
            journal.close()
        finally:
            obs.set_flight_recorder(previous_recorder)
        types = [
            event.type
            for event in obs.read_journal(tmp_path / "j.jsonl").events
        ]
        assert "alert" in types
        assert "incident" in types
