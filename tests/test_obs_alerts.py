"""The declarative SLO alert engine: rule validation, signal paths,
wildcards, guards, delta mode, state transitions, and journal emission."""

import json

import pytest

from repro import obs
from repro.obs.alerts import AlertEngine, AlertRule, default_rules


def make_observation(
    metrics=None, ledger=None, drift=None, cache=None, exemplars=None
):
    base_cache = {
        "hits": 0,
        "misses": 0,
        "lookups": 0,
        "hit_rate": 0.0,
        "size": 0,
        "evictions": 0,
        "invalidations": 0,
    }
    if cache:
        base_cache.update(cache)
    return {
        "version": 1,
        "metrics": metrics or {},
        "ledger": ledger or {},
        "drift": drift or {},
        "cache": base_cache,
        "exemplars": exemplars or {},
    }


def ledger_entry(mean_q=1.0, rmse=10.0, count=32, remedy=0.0):
    return {
        "count": count,
        "mean_q_error": mean_q,
        "rmse_percent": rmse,
        "slope": 1.0,
        "remedy_fraction": remedy,
    }


class TestAlertRule:
    def test_rejects_bad_operator(self):
        with pytest.raises(ValueError):
            AlertRule(name="r", signal="cache:hit_rate", op="!=", threshold=1)

    def test_rejects_bad_severity(self):
        with pytest.raises(ValueError):
            AlertRule(
                name="r", signal="cache:hit_rate", op=">", threshold=1,
                severity="page-me",
            )

    def test_rejects_bad_mode(self):
        with pytest.raises(ValueError):
            AlertRule(
                name="r", signal="cache:hit_rate", op=">", threshold=1,
                mode="rate",
            )

    def test_rejects_unknown_signal_root(self):
        with pytest.raises(ValueError):
            AlertRule(name="r", signal="weather:rain", op=">", threshold=1)

    def test_rejects_empty_name(self):
        with pytest.raises(ValueError):
            AlertRule(name="", signal="cache:hit_rate", op=">", threshold=1)

    def test_compare_covers_all_operators(self):
        mk = lambda op: AlertRule(
            name="r", signal="cache:hit_rate", op=op, threshold=1.0
        )
        assert mk(">").compare(1.5) and not mk(">").compare(1.0)
        assert mk(">=").compare(1.0) and not mk(">=").compare(0.9)
        assert mk("<").compare(0.5) and not mk("<").compare(1.0)
        assert mk("<=").compare(1.0) and not mk("<=").compare(1.1)


class TestSignalResolution:
    def test_scalar_cache_signal(self):
        rule = AlertRule(
            name="lowhit", signal="cache:hit_rate", op="<", threshold=0.5
        )
        engine = AlertEngine(rules=[rule])
        report = engine.evaluate(
            make_observation(cache={"hit_rate": 0.2}), emit=False
        )
        assert len(report.alerts) == 1
        assert report.alerts[0].firing
        assert report.alerts[0].value == 0.2

    def test_metric_counter_signal(self):
        rule = AlertRule(
            name="busy", signal="metric:context.queries", op=">", threshold=5
        )
        engine = AlertEngine(rules=[rule])
        metrics = {
            "context.queries": {"type": "counter", "value": 9.0, "help": ""}
        }
        report = engine.evaluate(make_observation(metrics=metrics), emit=False)
        assert report.alerts[0].firing
        assert report.alerts[0].value == 9.0

    def test_metric_histogram_fields(self):
        metrics = {
            "lat": {"type": "histogram", "count": 4, "sum": 8.0, "buckets": []}
        }
        for field, expected in (("count", 4.0), ("sum", 8.0), ("mean", 2.0)):
            rule = AlertRule(
                name="h", signal=f"metric:lat:{field}", op=">=", threshold=0
            )
            report = AlertEngine(rules=[rule]).evaluate(
                make_observation(metrics=metrics), emit=False
            )
            assert report.alerts[0].value == expected

    def test_missing_signal_produces_no_alert(self):
        rule = AlertRule(
            name="ghost", signal="ledger:hive/scan:mean_q_error", op=">",
            threshold=1,
        )
        report = AlertEngine(rules=[rule]).evaluate(
            make_observation(), emit=False
        )
        assert report.alerts == ()

    def test_wildcard_fans_out_over_ledger_keys(self):
        rule = AlertRule(
            name="q", signal="ledger:*:mean_q_error", op=">", threshold=2.0
        )
        ledger = {
            "hive/scan": ledger_entry(mean_q=5.0),
            "spark/join": ledger_entry(mean_q=1.1),
        }
        report = AlertEngine(rules=[rule]).evaluate(
            make_observation(ledger=ledger), emit=False
        )
        by_instance = {a.instance: a for a in report.alerts}
        assert set(by_instance) == {"hive/scan", "spark/join"}
        assert by_instance["hive/scan"].firing
        assert not by_instance["spark/join"].firing

    def test_wildcard_fans_out_over_drift_systems(self):
        rule = AlertRule(
            name="d", signal="drift:*:drifted", op=">=", threshold=1.0
        )
        drift = {
            "hive": {"drifted": True, "statistic": 9.0},
            "spark": {"drifted": False, "statistic": 0.1},
        }
        report = AlertEngine(rules=[rule]).evaluate(
            make_observation(drift=drift), emit=False
        )
        by_instance = {a.instance: a for a in report.alerts}
        assert by_instance["hive"].firing
        assert not by_instance["spark"].firing


class TestGuards:
    def test_guard_suppresses_until_sample_size(self):
        rule = AlertRule(
            name="q", signal="ledger:*:mean_q_error", op=">", threshold=2.0,
            guard=("ledger:*:count", 16.0),
        )
        engine = AlertEngine(rules=[rule])
        small = make_observation(
            ledger={"hive/scan": ledger_entry(mean_q=9.0, count=4)}
        )
        report = engine.evaluate(small, emit=False)
        assert not report.alerts[0].firing
        big = make_observation(
            ledger={"hive/scan": ledger_entry(mean_q=9.0, count=64)}
        )
        report = engine.evaluate(big, emit=False)
        assert report.alerts[0].firing

    def test_guard_with_missing_signal_suppresses(self):
        rule = AlertRule(
            name="lowhit", signal="cache:hit_rate", op="<", threshold=0.5,
            guard=("cache:nonexistent", 1.0),
        )
        report = AlertEngine(rules=[rule]).evaluate(
            make_observation(cache={"hit_rate": 0.0}), emit=False
        )
        assert not report.alerts[0].firing


class TestDeltaMode:
    def test_first_evaluation_establishes_baseline(self):
        rule = AlertRule(
            name="spike", signal="metric:errors", op=">", threshold=5.0,
            mode="delta",
        )
        engine = AlertEngine(rules=[rule])

        def observe(total):
            return make_observation(
                metrics={"errors": {"type": "counter", "value": total}}
            )

        first = engine.evaluate(observe(100.0), emit=False)
        assert first.alerts[0].value == 0.0
        assert not first.alerts[0].firing
        second = engine.evaluate(observe(110.0), emit=False)
        assert second.alerts[0].value == 10.0
        assert second.alerts[0].firing
        third = engine.evaluate(observe(112.0), emit=False)
        assert third.alerts[0].value == 2.0
        assert not third.alerts[0].firing


class TestStateTransitions:
    def _engine(self):
        return AlertEngine(rules=[
            AlertRule(
                name="q", signal="ledger:*:mean_q_error", op=">", threshold=2.0
            )
        ])

    def test_fire_then_hold_then_resolve(self):
        engine = self._engine()
        bad = make_observation(ledger={"hive/scan": ledger_entry(mean_q=9.0)})
        good = make_observation(ledger={"hive/scan": ledger_entry(mean_q=1.1)})

        first = engine.evaluate(bad, emit=False)
        assert first.fired == ("q|hive/scan",)
        assert first.resolved == ()

        held = engine.evaluate(bad, emit=False)
        assert held.fired == ()
        assert held.resolved == ()
        assert held.firing[0].rule == "q"
        assert engine.firing_keys == ("q|hive/scan",)

        third = engine.evaluate(good, emit=False)
        assert third.fired == ()
        assert third.resolved == ("q|hive/scan",)
        assert engine.firing_keys == ()

    def test_counters_track_transitions(self):
        registry = obs.MetricsRegistry()
        previous = obs.set_registry(registry)
        try:
            engine = self._engine()
            bad = make_observation(
                ledger={"hive/scan": ledger_entry(mean_q=9.0)}
            )
            good = make_observation(
                ledger={"hive/scan": ledger_entry(mean_q=1.1)}
            )
            engine.evaluate(bad, emit=False)
            engine.evaluate(good, emit=False)
            assert registry.counter("alerts.evaluations").value == 2.0
            assert registry.counter("alerts.fired").value == 1.0
            assert registry.counter("alerts.resolved").value == 1.0
        finally:
            obs.set_registry(previous)

    def test_duplicate_rule_names_rejected(self):
        rule = AlertRule(
            name="dup", signal="cache:hit_rate", op=">", threshold=1
        )
        with pytest.raises(ValueError):
            AlertEngine(rules=[rule, rule])


class TestExemplars:
    def test_firing_alert_carries_system_exemplars(self):
        rule = AlertRule(
            name="q", signal="ledger:*:mean_q_error", op=">", threshold=2.0
        )
        observation = make_observation(
            ledger={"hive/scan": ledger_entry(mean_q=9.0)},
            exemplars={"hive": ["q-000003", "q-000007"]},
        )
        report = AlertEngine(rules=[rule]).evaluate(observation, emit=False)
        assert report.alerts[0].exemplars == ("q-000003", "q-000007")

    def test_quiet_alert_has_no_exemplars(self):
        rule = AlertRule(
            name="q", signal="ledger:*:mean_q_error", op=">", threshold=2.0
        )
        observation = make_observation(
            ledger={"hive/scan": ledger_entry(mean_q=1.1)},
            exemplars={"hive": ["q-000003"]},
        )
        report = AlertEngine(rules=[rule]).evaluate(observation, emit=False)
        assert report.alerts[0].exemplars == ()


class TestJournalEmission:
    def test_transitions_append_schema_versioned_events(self, tmp_path):
        journal = obs.EventJournal(tmp_path / "j.jsonl")
        rule = AlertRule(
            name="q", signal="ledger:*:mean_q_error", op=">", threshold=2.0
        )
        engine = AlertEngine(rules=[rule])
        bad = make_observation(
            ledger={"hive/scan": ledger_entry(mean_q=9.0)},
            exemplars={"hive": ["q-000005"]},
        )
        good = make_observation(ledger={"hive/scan": ledger_entry(mean_q=1.1)})
        engine.evaluate(bad, journal=journal)
        engine.evaluate(bad, journal=journal)  # held state: no new event
        engine.evaluate(good, journal=journal)
        journal.close()

        events = obs.read_journal(tmp_path / "j.jsonl").events
        alert_events = [e for e in events if e.type == "alert"]
        assert [e.payload["state"] for e in alert_events] == [
            "firing", "resolved",
        ]
        firing = alert_events[0].payload
        assert firing["alert_version"] == 1
        assert firing["rule"] == "q"
        assert firing["instance"] == "hive/scan"
        assert firing["exemplars"] == ["q-000005"]
        assert firing["value"] == 9.0

    def test_emit_false_leaves_journal_untouched(self, tmp_path):
        journal = obs.EventJournal(tmp_path / "j.jsonl")
        rule = AlertRule(
            name="q", signal="ledger:*:mean_q_error", op=">", threshold=2.0
        )
        bad = make_observation(ledger={"hive/scan": ledger_entry(mean_q=9.0)})
        AlertEngine(rules=[rule]).evaluate(bad, journal=journal, emit=False)
        journal.close()
        events = obs.read_journal(tmp_path / "j.jsonl").events
        assert [e for e in events if e.type == "alert"] == []


class TestDeterminism:
    def test_same_observation_yields_byte_identical_reports(self):
        observation = make_observation(
            ledger={
                "hive/scan": ledger_entry(mean_q=9.0),
                "spark/join": ledger_entry(mean_q=1.2, rmse=90.0),
            },
            drift={"hive": {"drifted": True, "statistic": 7.5}},
            exemplars={"hive": ["q-000001", "q-000002"]},
        )
        first = AlertEngine().evaluate(observation, emit=False).to_json()
        second = AlertEngine().evaluate(observation, emit=False).to_json()
        assert first == second
        parsed = json.loads(first)
        assert parsed["version"] == 1
        assert parsed["worst_severity"] == "critical"

    def test_report_alerts_sorted_by_key(self):
        observation = make_observation(
            ledger={
                "spark/join": ledger_entry(),
                "hive/scan": ledger_entry(),
                "presto/agg": ledger_entry(),
            }
        )
        rule = AlertRule(
            name="q", signal="ledger:*:mean_q_error", op=">", threshold=2.0
        )
        report = AlertEngine(rules=[rule]).evaluate(observation, emit=False)
        keys = [a.key for a in report.alerts]
        assert keys == sorted(keys)


class TestRuleSets:
    def test_default_rules_validate_and_cover_the_slos(self):
        rules = default_rules()
        names = {rule.name for rule in rules}
        assert {
            "slo-q-error", "slo-rmse", "drift-alarm",
            "remedy-saturation", "cache-hit-rate",
        } <= names

    def test_default_rules_fire_on_degraded_accuracy(self):
        observation = make_observation(
            ledger={"hive/scan": ledger_entry(mean_q=10.0, rmse=200.0)},
            exemplars={"hive": ["q-000009"]},
        )
        report = AlertEngine().evaluate(observation, emit=False)
        firing = {a.rule for a in report.firing}
        assert "slo-q-error" in firing
        assert "slo-rmse" in firing
        assert report.worst_severity == "critical"

    def test_rules_from_json_round_trip(self, tmp_path):
        data = [
            {
                "name": "custom-q",
                "signal": "ledger:*:mean_q_error",
                "op": ">",
                "threshold": 3.0,
                "severity": "critical",
                "guard": ["ledger:*:count", 8],
                "description": "custom accuracy SLO",
            }
        ]
        path = tmp_path / "rules.json"
        path.write_text(json.dumps(data))
        rules = obs.load_rules(path)
        assert len(rules) == 1
        assert rules[0].name == "custom-q"
        assert rules[0].guard == ("ledger:*:count", 8.0)

    def test_rules_from_json_rejects_malformed(self):
        with pytest.raises(ValueError):
            obs.rules_from_json({"not": "a list"})
        with pytest.raises(ValueError):
            obs.rules_from_json(["not an object"])
        with pytest.raises(ValueError):
            obs.rules_from_json([{"name": "x"}])  # missing fields
        with pytest.raises(ValueError):
            obs.rules_from_json(
                [{
                    "name": "x", "signal": "cache:hit_rate", "op": ">",
                    "threshold": 1, "guard": "not-a-pair",
                }]
            )
