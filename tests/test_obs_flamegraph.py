"""Flamegraph rendering over folded stacks: tree building, frame
statistics, byte-deterministic HTML/collapsed output, and differential
profiles (``repro flamegraph --diff``)."""

import pytest

from repro.obs.flamegraph import (
    MIN_WIDTH_PERCENT,
    ROW_HEIGHT,
    FrameDelta,
    build_flame,
    diff_frames,
    frame_stats,
    render_collapsed,
    render_diff_html,
    render_diff_text,
    render_flamegraph_fragment,
    render_flamegraph_html,
    render_top_text,
)

STACKS = {
    "[serve];repro.serve.loop;repro.core.estimate": 60,
    "[serve];repro.serve.loop;repro.core.lookup": 25,
    "[serve];repro.serve.loop": 5,
    "[http];http.server.handle": 9,
    "[main]": 1,
}


class TestBuildFlame:
    def test_tree_counts(self):
        root = build_flame(STACKS)
        assert root.name == "all"
        assert root.total_count == 100
        serve = root.children["[serve]"]
        assert serve.total_count == 90
        assert serve.self_count == 0
        loop = serve.children["repro.serve.loop"]
        assert loop.total_count == 90
        assert loop.self_count == 5
        assert loop.children["repro.core.estimate"].self_count == 60
        assert root.children["[main]"].self_count == 1

    def test_children_sorted_by_name(self):
        root = build_flame(STACKS)
        names = [child.name for child in root.sorted_children()]
        assert names == sorted(names)

    def test_depth(self):
        assert build_flame(STACKS).depth == 4  # all -> role -> loop -> leaf
        assert build_flame({}).depth == 1

    def test_non_positive_counts_dropped(self):
        root = build_flame({"[a];f": 0, "[b];g": -3, "[c];h": 2})
        assert root.total_count == 2
        assert set(root.children) == {"[c]"}


class TestFrameStats:
    def test_self_and_total(self):
        stats = frame_stats(STACKS)
        assert stats["repro.core.estimate"] == (60, 60)
        assert stats["repro.serve.loop"] == (5, 90)
        assert stats["[serve]"] == (0, 90)
        assert stats["[main]"] == (1, 1)
        assert list(stats) == sorted(stats)

    def test_recursion_counts_once_per_stack(self):
        stats = frame_stats({"[s];f;f;f": 7})
        assert stats["f"] == (7, 7)


class TestTextRenderers:
    def test_collapsed_sorted_with_trailing_newline(self):
        text = render_collapsed(STACKS)
        lines = text.splitlines()
        assert len(lines) == 5
        assert lines == sorted(lines)
        assert text.endswith("\n")
        assert "[main] 1" in lines

    def test_collapsed_empty(self):
        assert render_collapsed({}) == ""

    def test_top_text_ranked_by_self(self):
        text = render_top_text(STACKS)
        lines = text.splitlines()
        assert lines[0].startswith("frame")
        assert "repro.core.estimate" in lines[1]  # self-heaviest first
        assert text.endswith("\n")

    def test_top_text_limit_note(self):
        text = render_top_text(STACKS, limit=2)
        assert "more frames" in text

    def test_top_text_empty(self):
        assert render_top_text({}) == "no samples\n"


class TestHtmlFlamegraph:
    def test_byte_deterministic(self):
        a = render_flamegraph_html(STACKS, subtitle="run A")
        b = render_flamegraph_html(dict(STACKS), subtitle="run A")
        assert a == b

    def test_page_structure(self):
        html = render_flamegraph_html(STACKS, title="t<1>", subtitle="s&b")
        assert html.startswith("<!doctype html>")
        assert "t&lt;1&gt;" in html  # escaped title
        assert "s&amp;b" in html
        assert "100 samples, 5 distinct stacks" in html
        assert '<div class="flame"' in html
        assert "Hot frames" in html
        assert "<script" not in html  # self-contained, no scripts

    def test_fragment_geometry(self):
        fragment = render_flamegraph_fragment(STACKS)
        # root spans the full width at the top row
        assert 'left:0.0000%;top:0px;width:100.0000%' in fragment
        assert f'style="height:{4 * ROW_HEIGHT + ROW_HEIGHT}px"' in fragment
        # the serve subtree is 90% wide
        assert "width:90.0000%" in fragment

    def test_fragment_empty(self):
        assert render_flamegraph_fragment({}) == '<p class="muted">no samples</p>'

    def test_narrow_nodes_pruned(self):
        stacks = {"[a];wide": 100000, "[b];sliver": 1}
        fragment = render_flamegraph_fragment(stacks)
        assert "wide" in fragment
        assert 100.0 * 1 / 100001 < MIN_WIDTH_PERCENT
        assert "sliver" not in fragment

    def test_colors_are_stable_hsl(self):
        fragment = render_flamegraph_fragment(STACKS)
        assert "hsl(" in fragment
        assert fragment == render_flamegraph_fragment(STACKS)


class TestDiff:
    def test_diff_frames_deltas(self):
        before = {"[s];a": 50, "[s];b": 50}
        after = {"[s];a": 30, "[s];b": 60, "[s];c": 10}
        deltas = {d.frame: d for d in diff_frames(before, after)}
        a = deltas["a"]
        assert (a.self_before, a.self_after) == (50, 30)
        assert a.self_share_before == 50.0
        assert a.self_share_after == 30.0
        assert a.d_self == -20.0
        c = deltas["c"]
        assert c.self_before == 0
        assert c.d_self == 10.0
        # [s] appears in every stack: total share stays 100%
        assert deltas["[s]"].d_total == 0.0

    def test_sorted_by_absolute_self_movement(self):
        before = {"[s];a": 50, "[s];b": 50}
        after = {"[s];a": 30, "[s];b": 60, "[s];c": 10}
        frames = [d.frame for d in diff_frames(before, after)]
        assert frames[0] == "a"  # |−20pp| is the biggest mover

    def test_empty_profiles(self):
        assert diff_frames({}, {}) == []
        assert render_diff_text([]) == "no frames to compare\n"

    def test_diff_text_renders(self):
        deltas = diff_frames({"[s];a": 10}, {"[s];a": 5, "[s];b": 5})
        text = render_diff_text(deltas)
        assert "d self" in text
        assert "pp" in text
        assert text.endswith("\n")

    def test_diff_text_limit_note(self):
        deltas = diff_frames({"[s];a": 10}, {"[s];b": 5, "[s];c": 5})
        assert "more frames" in render_diff_text(deltas, limit=1)

    def test_diff_html_deterministic_and_escaped(self):
        deltas = diff_frames({"[s];<a>": 10}, {"[s];<a>": 20})
        html = render_diff_html(deltas, subtitle="A vs B")
        assert html == render_diff_html(deltas, subtitle="A vs B")
        assert "&lt;a&gt;" in html
        assert "delta-" in html
        assert "A vs B" in html

    def test_diff_html_empty(self):
        html = render_diff_html([])
        assert "no frames to compare" in html

    def test_frame_delta_properties(self):
        delta = FrameDelta(
            frame="f",
            self_before=1, self_after=2,
            total_before=3, total_after=4,
            self_share_before=10.0, self_share_after=15.0,
            total_share_before=30.0, total_share_after=25.0,
        )
        assert delta.d_self == 5.0
        assert delta.d_total == -5.0
