"""End-to-end tests for skewed join keys and the Skew Join path (§4)."""

import pytest

from repro.core import (
    ClusterInfo,
    CostEstimationModule,
    RemoteSystemProfile,
    SubOpTrainer,
)
from repro.core.costing import derive_join_stats
from repro.data import Catalog, TableSpec, build_paper_corpus
from repro.data.schema import paper_schema
from repro.data.statistics import TableStatistics
from repro.engines import HiveEngine
from repro.exceptions import ConfigurationError
from repro.sql.parser import parse_select

MIB = 1024**2


@pytest.fixture()
def skew_setup():
    """A Hive system with one skew-keyed fact table plus normal tables."""
    corpus = build_paper_corpus(row_counts=(100_000, 8_000_000), row_sizes=(100,))
    skewed = TableSpec(
        name="clicks",
        schema=paper_schema(100),
        num_rows=8_000_000,
        location="hive",
        skewed_columns=("a1",),
    )
    engine = HiveEngine(seed=0, noise_sigma=0.0)
    catalog = Catalog()
    for spec in list(corpus) + [skewed]:
        engine.load_table(spec)
        catalog.register(spec)
    return engine, catalog


class TestSpecAndStatistics:
    def test_unknown_skew_column_rejected(self):
        with pytest.raises(ConfigurationError):
            TableSpec(
                name="t",
                schema=paper_schema(40),
                num_rows=1,
                skewed_columns=("nope",),
            )

    def test_statistics_carry_skew_flag(self):
        spec = TableSpec(
            name="t",
            schema=paper_schema(40),
            num_rows=100,
            skewed_columns=("a1",),
        )
        stats = TableStatistics.from_spec(spec)
        assert stats.column("a1").skewed
        assert not stats.column("a2").skewed

    def test_with_location_preserves_skew(self):
        spec = TableSpec(
            name="t",
            schema=paper_schema(40),
            num_rows=100,
            skewed_columns=("a1",),
        )
        assert spec.with_location("x").skewed_columns == ("a1",)


class TestEngineBehaviour:
    def test_skew_join_chosen_for_skewed_key(self, skew_setup):
        engine, _ = skew_setup
        # The small side would fit memory-wise? 8M x 100 = 800 MB fits,
        # so broadcast still wins; force a non-broadcastable size by
        # joining two large sides.
        result = engine.execute(
            parse_select(
                "SELECT * FROM clicks r JOIN t8000000_100 s ON r.a1 = s.a1"
            )
        )
        assert result.algorithm in ("skew_join", "broadcast_join")

    def test_skew_join_when_broadcast_impossible(self, skew_setup):
        engine, catalog = skew_setup
        big = TableSpec(
            name="clicks_big",
            schema=paper_schema(1000),
            num_rows=8_000_000,  # 8 GB — never broadcastable
            location="hive",
            skewed_columns=("a1",),
        )
        other = TableSpec(
            name="other_big",
            schema=paper_schema(1000),
            num_rows=8_000_000,
            location="hive",
        )
        for spec in (big, other):
            engine.load_table(spec)
            catalog.register(spec)
        result = engine.execute(
            parse_select(
                "SELECT * FROM clicks_big r JOIN other_big s ON r.a1 = s.a1"
            )
        )
        assert result.algorithm == "skew_join"

    def test_skew_join_costs_more_than_plain_shuffle(self, skew_setup):
        engine, catalog = skew_setup
        big = TableSpec(
            name="clicks_big",
            schema=paper_schema(1000),
            num_rows=8_000_000,
            location="hive",
            skewed_columns=("a1",),
        )
        plain = TableSpec(
            name="plain_big",
            schema=paper_schema(1000),
            num_rows=8_000_000,
            location="hive",
        )
        for spec in (big, plain):
            engine.load_table(spec)
            catalog.register(spec)
        skewed_run = engine.execute(
            parse_select(
                "SELECT * FROM clicks_big r JOIN plain_big s ON r.a1 = s.a1"
            )
        )
        other = TableSpec(
            name="other_big",
            schema=paper_schema(1000),
            num_rows=8_000_000,
            location="hive",
        )
        engine.load_table(other)
        catalog.register(other)
        plain_run = engine.execute(
            parse_select(
                "SELECT * FROM plain_big r JOIN other_big s ON r.a1 = s.a1"
            )
        )
        assert plain_run.algorithm == "shuffle_join"
        assert skewed_run.elapsed_seconds > plain_run.elapsed_seconds


class TestCostingSide:
    def test_derive_join_stats_sets_skewed(self, skew_setup):
        _, catalog = skew_setup
        stats = derive_join_stats(
            parse_select(
                "SELECT * FROM clicks r JOIN t8000000_100 s ON r.a1 = s.a1"
            ),
            catalog,
        )
        assert stats.skewed
        plain = derive_join_stats(
            parse_select(
                "SELECT * FROM t100000_100 r JOIN t8000000_100 s ON r.a1 = s.a1"
            ),
            catalog,
        )
        assert not plain.skewed

    def test_rules_predict_skew_join(self, skew_setup):
        """The sub-op estimator predicts the engine's skew-join choice."""
        engine, catalog = skew_setup
        big = TableSpec(
            name="clicks_big",
            schema=paper_schema(1000),
            num_rows=8_000_000,
            location="hive",
            skewed_columns=("a1",),
        )
        other = TableSpec(
            name="other_big",
            schema=paper_schema(1000),
            num_rows=8_000_000,
            location="hive",
        )
        for spec in (big, other):
            engine.load_table(spec)
            catalog.register(spec)
        module = CostEstimationModule()
        module.register_system(
            engine,
            RemoteSystemProfile(
                name="hive",
                cluster=ClusterInfo(
                    num_data_nodes=3,
                    cores_per_node=2,
                    dfs_block_size=128 * MIB,
                ),
            ),
        )
        module.train_sub_op(
            "hive", SubOpTrainer(record_counts=(1_000_000, 2_000_000))
        )
        plan = parse_select(
            "SELECT * FROM clicks_big r JOIN other_big s ON r.a1 = s.a1"
        )
        estimate = module.estimate_plan("hive", plan, catalog)
        actual = engine.execute(plan)
        assert actual.algorithm == "skew_join"
        assert estimate.detail.predicted_algorithm == "skew_join"
        assert estimate.seconds == pytest.approx(
            actual.elapsed_seconds, rel=0.35
        )
