"""Tests for accuracy metrics."""

import numpy as np
import pytest

from repro.exceptions import ConfigurationError
from repro.ml.metrics import (
    fit_line,
    mean_absolute_error,
    r_squared,
    rmse,
    rmse_percent,
)


class TestRmse:
    def test_perfect_prediction(self):
        y = np.array([1.0, 2.0, 3.0])
        assert rmse(y, y) == 0.0

    def test_known_value(self):
        assert rmse(np.array([0.0, 0.0]), np.array([3.0, 4.0])) == pytest.approx(
            np.sqrt(12.5)
        )

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ConfigurationError):
            rmse(np.array([1.0]), np.array([1.0, 2.0]))

    def test_empty_rejected(self):
        with pytest.raises(ConfigurationError):
            rmse(np.array([]), np.array([]))


class TestRmsePercent:
    def test_matches_paper_formula(self):
        actual = np.array([10.0, 10.0])
        predicted = np.array([11.0, 9.0])
        # e = 1.0, v = 10 -> 10%
        assert rmse_percent(actual, predicted) == pytest.approx(10.0)

    def test_zero_mean_rejected(self):
        with pytest.raises(ConfigurationError):
            rmse_percent(np.array([0.0, 0.0]), np.array([1.0, 1.0]))


class TestR2:
    def test_perfect(self):
        y = np.array([1.0, 2.0, 3.0])
        assert r_squared(y, y) == 1.0

    def test_mean_predictor_is_zero(self):
        y = np.array([1.0, 2.0, 3.0])
        pred = np.full(3, y.mean())
        assert r_squared(y, pred) == pytest.approx(0.0)

    def test_constant_actuals(self):
        y = np.array([5.0, 5.0])
        assert r_squared(y, y) == 1.0
        assert r_squared(y, np.array([4.0, 6.0])) == 0.0


class TestMae:
    def test_known_value(self):
        assert mean_absolute_error(
            np.array([1.0, 2.0]), np.array([2.0, 4.0])
        ) == pytest.approx(1.5)


class TestFitLine:
    def test_recovers_exact_line(self):
        x = np.linspace(0, 10, 20)
        y = 0.9 * x + 1.2
        line = fit_line(x, y)
        assert line.slope == pytest.approx(0.9)
        assert line.intercept == pytest.approx(1.2)
        assert line.r2 == pytest.approx(1.0)

    def test_noisy_line(self):
        rng = np.random.default_rng(0)
        x = np.linspace(0, 100, 200)
        y = 2 * x + rng.normal(0, 1, 200)
        line = fit_line(x, y)
        assert line.slope == pytest.approx(2.0, abs=0.05)
        assert line.r2 > 0.99

    def test_degenerate_x_rejected(self):
        with pytest.raises(ConfigurationError):
            fit_line(np.array([1.0, 1.0]), np.array([1.0, 2.0]))

    def test_str_rendering(self):
        line = fit_line(np.array([0.0, 1.0]), np.array([0.0, 1.0]))
        assert "y = " in str(line) and "R²" in str(line)
