"""Tests for the QueryGrid transfer-cost learning mechanism."""

import pytest

from repro.exceptions import ConfigurationError, TrainingError
from repro.master.querygrid import QueryGrid
from repro.master.transfer_learning import (
    DEFAULT_PROBE_SHAPES,
    NoisyTransferChannel,
    TransferCostLearner,
    probe_transfers,
)

MIB = 1024**2


@pytest.fixture()
def hidden_truth():
    return QueryGrid(
        bandwidth=80 * MIB, connection_latency=0.4, per_row_overhead_us=0.8
    )


class TestLearning:
    def test_recovers_noise_free_parameters(self, hidden_truth):
        channel = NoisyTransferChannel(hidden_truth, noise_sigma=0.0)
        learner = probe_transfers(channel)
        learned = learner.fit()
        assert learned.bandwidth == pytest.approx(hidden_truth.bandwidth, rel=0.02)
        assert learned.connection_latency == pytest.approx(0.4, abs=0.05)
        assert learned.per_row_overhead_us == pytest.approx(0.8, rel=0.1)

    def test_predictions_match_truth_under_noise(self, hidden_truth):
        channel = NoisyTransferChannel(hidden_truth, noise_sigma=0.05, seed=1)
        learned = probe_transfers(channel).fit()
        for rows, size in ((5_000, 100), (2_000_000, 500), (20_000_000, 100)):
            # Latency-dominated tiny transfers carry the largest relative
            # error (absolute-error least squares favors big payloads).
            assert learned.transfer_seconds(rows, size) == pytest.approx(
                hidden_truth.transfer_seconds(rows, size), rel=0.2
            )

    def test_learned_model_is_a_querygrid(self, hidden_truth):
        learned = probe_transfers(NoisyTransferChannel(hidden_truth, 0.0)).fit()
        assert isinstance(learned, QueryGrid)
        estimate = learned.estimate("hive", "teradata", 1000, 100)
        assert estimate.seconds > 0

    def test_probe_grid_covers_decades(self):
        byte_sizes = {rows * size for rows, size in DEFAULT_PROBE_SHAPES}
        assert min(byte_sizes) < 10**5
        assert max(byte_sizes) > 10**9


class TestValidation:
    def test_too_few_observations(self):
        learner = TransferCostLearner()
        learner.observe(100, 100, 1.0)
        with pytest.raises(TrainingError):
            learner.fit()

    def test_degenerate_shapes(self):
        learner = TransferCostLearner()
        for _ in range(5):
            learner.observe(100, 100, 1.0)
        with pytest.raises(TrainingError):
            learner.fit()

    def test_bad_observation(self):
        with pytest.raises(ConfigurationError):
            TransferCostLearner().observe(0, 100, 1.0)
        with pytest.raises(ConfigurationError):
            TransferCostLearner().observe(10, 100, 0.0)

    def test_bad_channel_noise(self):
        with pytest.raises(ConfigurationError):
            NoisyTransferChannel(QueryGrid(), noise_sigma=-1)


class TestFederationIntegration:
    def test_calibrate_querygrid_replaces_model(self, hidden_truth):
        from repro.master.federation import IntelliSphere

        sphere = IntelliSphere()
        before = sphere.querygrid
        learned = sphere.calibrate_querygrid(
            NoisyTransferChannel(hidden_truth, noise_sigma=0.0)
        )
        assert sphere.querygrid is learned
        assert sphere.querygrid is not before
        assert learned.bandwidth == pytest.approx(
            hidden_truth.bandwidth, rel=0.05
        )
