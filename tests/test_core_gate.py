"""ReadWriteGate: reader concurrency, writer exclusion and preference,
reentrant reads, and the explicit upgrade-deadlock guard."""

import threading
import time

import pytest

from repro.core.gate import ReadWriteGate


@pytest.fixture()
def gate():
    return ReadWriteGate()


def spawn(target):
    thread = threading.Thread(target=target, daemon=True)
    thread.start()
    return thread


class TestReadSide:
    def test_concurrent_readers(self, gate):
        """N readers hold the gate simultaneously."""
        inside = threading.Barrier(4, timeout=5.0)

        def reader():
            with gate.read():
                inside.wait()  # all four must be inside at once

        threads = [spawn(reader) for _ in range(4)]
        for thread in threads:
            thread.join(timeout=5.0)
        assert gate.active_readers == 0

    def test_reentrant_read(self, gate):
        with gate.read():
            with gate.read():
                assert gate.active_readers == 1
            assert gate.active_readers == 1
        assert gate.active_readers == 0

    def test_release_without_acquire_raises(self, gate):
        with pytest.raises(RuntimeError):
            gate.release_read()


class TestWriteSide:
    def test_writer_excludes_writers(self, gate):
        """Unsynchronized increments stay exact under the write side."""
        counts = {"value": 0}

        def writer():
            for _ in range(200):
                with gate.write():
                    current = counts["value"]
                    counts["value"] = current + 1

        threads = [spawn(writer) for _ in range(4)]
        for thread in threads:
            thread.join(timeout=10.0)
        assert counts["value"] == 800

    def test_writer_excludes_readers(self, gate):
        """A reader arriving during a write sees the post-write state."""
        observed = []
        state = {"value": "old"}
        reader_started = threading.Event()

        gate.acquire_write()

        def reader():
            reader_started.set()
            with gate.read():
                observed.append(state["value"])

        thread = spawn(reader)
        reader_started.wait(timeout=5.0)
        time.sleep(0.05)  # give the reader time to park on the gate
        assert observed == []  # still excluded
        state["value"] = "new"
        gate.release_write()
        thread.join(timeout=5.0)
        assert observed == ["new"]

    def test_writer_preference_blocks_new_readers(self, gate):
        """Readers arriving behind a waiting writer queue until it runs."""
        order = []
        first_reader_in = threading.Event()
        release_first_reader = threading.Event()

        def first_reader():
            with gate.read():
                first_reader_in.set()
                release_first_reader.wait(timeout=5.0)
            order.append("reader1-out")

        def writer():
            with gate.write():
                order.append("writer")

        def late_reader():
            with gate.read():
                order.append("reader2")

        r1 = spawn(first_reader)
        first_reader_in.wait(timeout=5.0)
        w = spawn(writer)
        time.sleep(0.05)  # writer is now parked, waiting on reader1
        r2 = spawn(late_reader)
        time.sleep(0.05)  # late reader must park behind the writer
        assert order == []
        release_first_reader.set()
        for thread in (r1, w, r2):
            thread.join(timeout=5.0)
        assert order[0] == "reader1-out"
        assert order[1] == "writer"  # ran before the late reader
        assert order[2] == "reader2"

    def test_upgrade_raises_instead_of_deadlocking(self, gate):
        with gate.read():
            with pytest.raises(RuntimeError):
                gate.acquire_write()

    def test_release_without_acquire_raises(self, gate):
        with pytest.raises(RuntimeError):
            gate.release_write()


class TestIntrospection:
    def test_counters_and_repr(self, gate):
        assert gate.active_readers == 0
        assert not gate.writer_active
        with gate.read():
            assert gate.active_readers == 1
        with gate.write():
            assert gate.writer_active
            assert "writer=on" in repr(gate)
        assert "writer=off" in repr(gate)
