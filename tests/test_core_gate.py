"""ReadWriteGate: reader concurrency, writer exclusion and preference,
reentrant reads, the explicit upgrade-deadlock guard, and the gate's
saturation telemetry (wait/hold histograms, writers-waiting gauge)."""

import threading
import time

import pytest

from repro import obs
from repro.core.gate import ReadWriteGate
from repro.obs.metrics import MetricsRegistry


@pytest.fixture()
def gate():
    return ReadWriteGate()


@pytest.fixture(autouse=True)
def obs_state():
    previous = obs.set_registry(MetricsRegistry())
    yield
    obs.set_registry(previous)


def histogram_count(name):
    metric = obs.get_registry().get(name)
    return 0 if metric is None else metric.snapshot()["count"]


def spawn(target):
    thread = threading.Thread(target=target, daemon=True)
    thread.start()
    return thread


class TestReadSide:
    def test_concurrent_readers(self, gate):
        """N readers hold the gate simultaneously."""
        inside = threading.Barrier(4, timeout=5.0)

        def reader():
            with gate.read():
                inside.wait()  # all four must be inside at once

        threads = [spawn(reader) for _ in range(4)]
        for thread in threads:
            thread.join(timeout=5.0)
        assert gate.active_readers == 0

    def test_reentrant_read(self, gate):
        with gate.read():
            with gate.read():
                assert gate.active_readers == 1
            assert gate.active_readers == 1
        assert gate.active_readers == 0

    def test_release_without_acquire_raises(self, gate):
        with pytest.raises(RuntimeError):
            gate.release_read()


class TestWriteSide:
    def test_writer_excludes_writers(self, gate):
        """Unsynchronized increments stay exact under the write side."""
        counts = {"value": 0}

        def writer():
            for _ in range(200):
                with gate.write():
                    current = counts["value"]
                    counts["value"] = current + 1

        threads = [spawn(writer) for _ in range(4)]
        for thread in threads:
            thread.join(timeout=10.0)
        assert counts["value"] == 800

    def test_writer_excludes_readers(self, gate):
        """A reader arriving during a write sees the post-write state."""
        observed = []
        state = {"value": "old"}
        reader_started = threading.Event()

        gate.acquire_write()

        def reader():
            reader_started.set()
            with gate.read():
                observed.append(state["value"])

        thread = spawn(reader)
        reader_started.wait(timeout=5.0)
        time.sleep(0.05)  # give the reader time to park on the gate
        assert observed == []  # still excluded
        state["value"] = "new"
        gate.release_write()
        thread.join(timeout=5.0)
        assert observed == ["new"]

    def test_writer_preference_blocks_new_readers(self, gate):
        """Readers arriving behind a waiting writer queue until it runs."""
        order = []
        first_reader_in = threading.Event()
        release_first_reader = threading.Event()

        def first_reader():
            with gate.read():
                first_reader_in.set()
                release_first_reader.wait(timeout=5.0)
            order.append("reader1-out")

        def writer():
            with gate.write():
                order.append("writer")

        def late_reader():
            with gate.read():
                order.append("reader2")

        r1 = spawn(first_reader)
        first_reader_in.wait(timeout=5.0)
        w = spawn(writer)
        time.sleep(0.05)  # writer is now parked, waiting on reader1
        r2 = spawn(late_reader)
        time.sleep(0.05)  # late reader must park behind the writer
        assert order == []
        release_first_reader.set()
        for thread in (r1, w, r2):
            thread.join(timeout=5.0)
        assert order[0] == "reader1-out"
        assert order[1] == "writer"  # ran before the late reader
        assert order[2] == "reader2"

    def test_upgrade_raises_instead_of_deadlocking(self, gate):
        with gate.read():
            with pytest.raises(RuntimeError):
                gate.acquire_write()

    def test_release_without_acquire_raises(self, gate):
        with pytest.raises(RuntimeError):
            gate.release_write()


class TestSaturationTelemetry:
    def test_uncontended_reads_record_holds_but_no_waits(self, gate):
        """The estimate hot path: no writer anywhere means no wait
        timing at all — only the outermost hold is observed."""
        with gate.read():
            with gate.read():
                pass
        assert histogram_count("gate.read_wait_seconds") == 0
        assert histogram_count("gate.read_hold_seconds") == 1  # outermost only

    def test_reader_parked_behind_writer_records_wait(self, gate):
        release_writer = threading.Event()
        writer_in = threading.Event()
        reader_done = threading.Event()

        def writer():
            with gate.write():
                writer_in.set()
                release_writer.wait(timeout=5.0)

        def reader():
            with gate.read():
                pass
            reader_done.set()

        w = spawn(writer)
        assert writer_in.wait(timeout=5.0)
        r = spawn(reader)
        time.sleep(0.05)  # reader parks behind the active writer
        release_writer.set()
        assert reader_done.wait(timeout=5.0)
        for thread in (w, r):
            thread.join(timeout=5.0)
        snapshot = obs.get_registry().get("gate.read_wait_seconds").snapshot()
        assert snapshot["count"] == 1
        assert snapshot["sum"] >= 0.04  # parked for the writer's hold

    def test_reader_parked_behind_waiting_writer_records_wait(self, gate):
        """Writer preference: a reader arriving behind a *waiting*
        (not yet active) writer is contended and times its wait."""
        first_in = threading.Event()
        release_first = threading.Event()

        def first_reader():
            with gate.read():
                first_in.set()
                release_first.wait(timeout=5.0)

        def writer():
            with gate.write():
                pass

        def late_reader():
            with gate.read():
                pass

        r1 = spawn(first_reader)
        assert first_in.wait(timeout=5.0)
        w = spawn(writer)
        time.sleep(0.05)  # writer parked behind reader1
        assert obs.gauge("gate.writers_waiting").value == 1.0
        r2 = spawn(late_reader)
        time.sleep(0.05)  # late reader parked behind the waiting writer
        release_first.set()
        for thread in (r1, w, r2):
            thread.join(timeout=5.0)
        assert histogram_count("gate.read_wait_seconds") == 1  # late reader
        assert histogram_count("gate.write_wait_seconds") == 1
        snapshot = obs.get_registry().get("gate.write_wait_seconds").snapshot()
        assert snapshot["sum"] >= 0.04  # waited out reader1's hold
        assert obs.gauge("gate.writers_waiting").value == 0.0

    def test_write_waits_and_holds_always_observed(self, gate):
        with gate.write():
            time.sleep(0.01)
        assert histogram_count("gate.write_wait_seconds") == 1
        hold = obs.get_registry().get("gate.write_hold_seconds").snapshot()
        assert hold["count"] == 1
        assert hold["sum"] >= 0.009

    def test_read_hold_covers_outermost_span(self, gate):
        with gate.read():
            time.sleep(0.01)
        snapshot = obs.get_registry().get("gate.read_hold_seconds").snapshot()
        assert snapshot["count"] == 1
        assert snapshot["sum"] >= 0.009


class TestIntrospection:
    def test_counters_and_repr(self, gate):
        assert gate.active_readers == 0
        assert not gate.writer_active
        with gate.read():
            assert gate.active_readers == 1
        with gate.write():
            assert gate.writer_active
            assert "writer=on" in repr(gate)
        assert "writer=off" in repr(gate)
