"""Accuracy ledger: rolling windows, exact statistics, validation."""

import math
import threading

import pytest

from repro import obs
from repro.obs.ledger import AccuracyLedger, AccuracyStats


def _fill(ledger, estimates, actuals, **kwargs):
    for est, act in zip(estimates, actuals):
        ledger.record(
            system="hive",
            operator="join",
            estimated_seconds=est,
            actual_seconds=act,
            **kwargs,
        )


class TestRecording:
    def test_entry_fields_and_q_error(self):
        ledger = AccuracyLedger()
        entry = ledger.record(
            system="hive",
            operator="join",
            estimated_seconds=4.0,
            actual_seconds=2.0,
            approach="sub_op",
            remedy_active=True,
        )
        assert entry.q_error == 2.0
        assert entry.approach == "sub_op"
        assert entry.remedy_active is True
        assert len(ledger) == 1

    @pytest.mark.parametrize("bad", [0.0, -1.0, float("nan"), float("inf")])
    def test_rejects_invalid_actual(self, bad):
        ledger = AccuracyLedger()
        with pytest.raises(ValueError):
            ledger.record("hive", "join", estimated_seconds=1.0, actual_seconds=bad)

    @pytest.mark.parametrize("bad", [0.0, -1.0, float("nan"), float("inf")])
    def test_rejects_invalid_estimate(self, bad):
        ledger = AccuracyLedger()
        with pytest.raises(ValueError):
            ledger.record("hive", "join", estimated_seconds=bad, actual_seconds=1.0)

    def test_window_evicts_oldest(self):
        ledger = AccuracyLedger(window=2)
        _fill(ledger, [1.0, 2.0, 3.0], [1.0, 2.0, 3.0])
        entries = ledger.entries()
        assert [e.estimated_seconds for e in entries] == [2.0, 3.0]

    def test_window_must_be_positive(self):
        with pytest.raises(ValueError):
            AccuracyLedger(window=0)


class TestStats:
    def test_exact_statistics(self):
        # estimates [1, 2] vs actuals [2, 2]:
        #   q-errors [2, 1]          -> mean 1.5, max 2
        #   sq errors [1, 0]          -> rmse = sqrt(0.5), mean actual 2
        #   slope = (1*2 + 2*2) / (1 + 4) = 1.2
        ledger = AccuracyLedger()
        _fill(ledger, [1.0, 2.0], [2.0, 2.0])
        stats = ledger.stats(system="hive", operator="join")
        assert stats.count == 2
        assert stats.mean_q_error == pytest.approx(1.5)
        assert stats.max_q_error == pytest.approx(2.0)
        assert stats.rmse_percent == pytest.approx(100 * math.sqrt(0.5) / 2.0)
        assert stats.slope == pytest.approx(1.2)
        assert stats.remedy_fraction == 0.0

    def test_remedy_fraction(self):
        ledger = AccuracyLedger()
        ledger.record("hive", "join", 1.0, 1.0, remedy_active=True)
        ledger.record("hive", "join", 1.0, 1.0, remedy_active=False)
        assert ledger.stats().remedy_fraction == pytest.approx(0.5)

    def test_empty_stats(self):
        assert AccuracyLedger().stats() == AccuracyStats.empty()

    def test_filters_by_system_and_operator(self):
        ledger = AccuracyLedger()
        ledger.record("hive", "join", 1.0, 1.0)
        ledger.record("hive", "aggregate", 1.0, 4.0)
        ledger.record("spark", "join", 1.0, 8.0)
        assert ledger.stats(system="hive", operator="join").max_q_error == 1.0
        assert ledger.stats(system="hive").count == 2
        assert ledger.stats(operator="join").count == 2
        assert ledger.keys() == (
            ("hive", "aggregate"),
            ("hive", "join"),
            ("spark", "join"),
        )

    def test_perfect_estimates_are_unbiased(self):
        ledger = AccuracyLedger()
        _fill(ledger, [1.0, 5.0, 9.0], [1.0, 5.0, 9.0])
        stats = ledger.stats()
        assert stats.rmse_percent == pytest.approx(0.0)
        assert stats.mean_q_error == pytest.approx(1.0)
        assert stats.slope == pytest.approx(1.0)


class TestSnapshotAndReset:
    def test_snapshot_keys_and_fields(self):
        ledger = AccuracyLedger()
        ledger.record("hive", "join", 2.0, 2.0, remedy_active=True)
        snap = ledger.snapshot()
        assert set(snap) == {"hive/join"}
        assert snap["hive/join"]["count"] == 1
        assert snap["hive/join"]["remedy_fraction"] == 1.0

    def test_reset(self):
        ledger = AccuracyLedger()
        ledger.record("hive", "join", 1.0, 1.0)
        ledger.reset()
        assert len(ledger) == 0
        assert ledger.snapshot() == {}


class TestConcurrency:
    def test_concurrent_records_all_land(self):
        ledger = AccuracyLedger(window=10_000)

        def work():
            for _ in range(1_000):
                ledger.record("hive", "join", 1.0, 1.0)

        workers = [threading.Thread(target=work) for _ in range(4)]
        for t in workers:
            t.start()
        for t in workers:
            t.join()
        assert len(ledger) == 4_000


class TestDefaultLedger:
    def test_set_ledger_swaps_and_restores(self):
        fresh = AccuracyLedger()
        previous = obs.set_ledger(fresh)
        try:
            assert obs.get_ledger() is fresh
        finally:
            assert obs.set_ledger(previous) is fresh
