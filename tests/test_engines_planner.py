"""Tests for the engine-internal physical planner."""

import pytest

from repro.cluster import Cluster, ClusterConfig
from repro.engines.physical import (
    AggregateContext,
    ExecutionEnv,
    HIVE_JOIN_ALGORITHMS,
    JoinContext,
    RelShape,
)
from repro.engines.planner import PhysicalPlanner
from repro.engines.subops import hive_kernels
from repro.exceptions import PlanningError


@pytest.fixture()
def env():
    cluster = Cluster(ClusterConfig(num_data_nodes=3))
    return ExecutionEnv(cluster, hive_kernels(cluster.per_task_memory))


@pytest.fixture()
def planner():
    return PhysicalPlanner(HIVE_JOIN_ALGORITHMS)


def ctx_for(env, small_rows, row_size=100, **kw):
    return JoinContext(
        env=env,
        big=RelShape(num_rows=10_000_000, row_size=row_size, **kw.pop("big_kw", {})),
        small=RelShape(num_rows=small_rows, row_size=row_size, **kw.pop("small_kw", {})),
        join_column_big="a1",
        join_column_small="a1",
        output_rows=small_rows,
        output_row_size=row_size,
        **kw,
    )


class TestJoinChoice:
    def test_small_side_broadcast(self, env, planner):
        assert planner.choose_join(ctx_for(env, 10_000)).name == "broadcast_join"

    def test_large_small_side_shuffles(self, env, planner):
        too_big = env.kernels.hash_build.memory_budget // 100 * 2
        assert planner.choose_join(ctx_for(env, too_big)).name == "shuffle_join"

    def test_bucketed_beats_broadcast(self, env, planner):
        ctx = ctx_for(
            env,
            10_000,
            big_kw={"partitioned_by": "a1"},
            small_kw={"partitioned_by": "a1"},
        )
        assert planner.choose_join(ctx).name == "bucket_map_join"

    def test_sorted_buckets_win_overall(self, env, planner):
        ctx = ctx_for(
            env,
            10_000,
            big_kw={"partitioned_by": "a1", "sorted_by": "a1"},
            small_kw={"partitioned_by": "a1", "sorted_by": "a1"},
        )
        assert planner.choose_join(ctx).name == "sort_merge_bucket_join"

    def test_no_algorithm_raises(self, env):
        planner = PhysicalPlanner(HIVE_JOIN_ALGORITHMS[:1])  # SMB only
        with pytest.raises(PlanningError):
            planner.choose_join(ctx_for(env, 1000))


class TestAggregateChoice:
    def test_hash_when_groups_fit(self, env, planner):
        ctx = AggregateContext(
            env=env,
            input=RelShape(num_rows=1_000_000, row_size=100),
            num_groups=100,
            output_row_size=12,
        )
        assert planner.choose_aggregate(ctx).name == "hash_aggregate"

    def test_sort_when_groups_spill(self, env, planner):
        ctx = AggregateContext(
            env=env,
            input=RelShape(num_rows=1_000_000, row_size=100),
            num_groups=env.kernels.hash_build.memory_budget,
            output_row_size=16,
        )
        assert planner.choose_aggregate(ctx).name == "sort_aggregate"


class TestValidation:
    def test_empty_roster_rejected(self):
        with pytest.raises(PlanningError):
            PhysicalPlanner(())
