"""End-to-end tests for the scenario registry and the simulator loop.

These are deliberately small runs (the 50-query floor) except for the
one full `table-growth-drift` pass, which is the acceptance loop: drift
fires, the remedy activates, offline tuning folds the journal back in,
and health returns to healthy — all in one process, in a couple of
seconds.
"""

import pytest

from repro.exceptions import ConfigurationError
from repro.workloads.scenarios import (
    SCENARIOS,
    get_scenario,
    run_scenario,
    scenario_names,
)


@pytest.fixture(autouse=True)
def _isolate_obs(restore_obs_plane):
    """Simulator runs swap in fresh obs globals; restore after each."""


class TestRegistry:
    EXPECTED = {
        "steady",
        "diurnal-burst",
        "table-growth-drift",
        "engine-upgrade",
        "tenant-storm",
        "out-of-range",
    }

    def test_all_scenarios_registered(self):
        assert set(scenario_names()) == self.EXPECTED

    def test_every_scenario_has_description_and_checks(self):
        for spec in SCENARIOS.values():
            assert spec.description
            assert spec.checks
            names = [check.name for check in spec.checks]
            assert "replay-consistent" in names

    def test_unknown_scenario_raises(self):
        with pytest.raises(ConfigurationError, match="unknown scenario"):
            get_scenario("meteor-strike")

    def test_scaled_adjusts_recovery_timers(self):
        spec = get_scenario("table-growth-drift")
        half = spec.scaled(queries=spec.config.queries // 2)
        assert half.config.queries == spec.config.queries // 2
        assert half.config.recovery_lag < spec.config.recovery_lag
        assert half.config.tuning_delay < spec.config.tuning_delay
        # Mutations stay fractional, so the narrative shape is intact.
        assert half.config.mutations == spec.config.mutations

    def test_scaled_enforces_floor(self):
        with pytest.raises(ConfigurationError, match="at least 50"):
            get_scenario("steady").scaled(queries=10)

    def test_scaled_is_identity_without_overrides(self):
        spec = get_scenario("steady")
        assert spec.scaled() is spec


class TestMiniRuns:
    def test_steady_mini_run_reports_traffic(self, tmp_path):
        journal = tmp_path / "journal.jsonl"
        result = run_scenario("steady", queries=60, journal_path=str(journal))
        report = result.report
        assert report.queries == 60
        assert report.executed + report.rejected + report.errors == 60
        assert report.errors == 0
        assert report.tenants_seen > 1
        assert sum(report.tenant_queries.values()) == 60
        assert report.sim_seconds > 0
        assert journal.exists()
        assert report.replay_consistent, report.replay_detail

    def test_mini_run_health_timeline_ends_at_budget(self, tmp_path):
        result = run_scenario(
            "steady", queries=60, journal_path=str(tmp_path / "j.jsonl")
        )
        timeline = result.report.health_timeline
        assert timeline and timeline[-1][0] == 60
        assert "hive" in timeline[-1][1]

    def test_same_seed_runs_are_byte_identical(self, tmp_path):
        paths = [tmp_path / "run1.jsonl", tmp_path / "run2.jsonl"]
        for path in paths:
            run_scenario("steady", queries=60, journal_path=str(path))
        first, second = (path.read_bytes() for path in paths)
        assert first and first == second

    def test_different_seeds_diverge(self, tmp_path):
        paths = [tmp_path / "seed0.jsonl", tmp_path / "seed1.jsonl"]
        run_scenario("steady", queries=60, journal_path=str(paths[0]), seed=0)
        run_scenario("steady", queries=60, journal_path=str(paths[1]), seed=1)
        assert paths[0].read_bytes() != paths[1].read_bytes()

    def test_mini_drift_run_fails_its_checks(self, tmp_path):
        """Scaled far below its recovery timers, the drift scenario
        cannot complete the loop — the check verdicts must say so."""
        result = run_scenario(
            "table-growth-drift",
            queries=50,
            journal_path=str(tmp_path / "j.jsonl"),
        )
        assert not result.passed
        failed = {check.name for check in result.checks if not check.passed}
        assert "drift-alarm" in failed


class TestFullLoop:
    def test_table_growth_drift_closes_the_loop(self, tmp_path):
        """The acceptance scenario: stale statistics → drift alarm →
        remedy pressure → statistics refresh + offline tuning → healthy."""
        journal = tmp_path / "journal.jsonl"
        result = run_scenario("table-growth-drift", journal_path=str(journal))
        report = result.report
        for check in result.checks:
            assert check.passed, f"{check.name}: {check.detail}"
        assert report.drift_alarms >= 1
        assert report.first_drift_query is not None
        assert report.first_drift_query >= min(report.mutation_indices.values())
        assert report.remedy_activations >= 1
        assert report.tuning_runs >= 1 and report.tuning_entries > 0
        assert report.recoveries >= 1
        assert report.final_health.get("hive") == "healthy"
        assert report.replay_consistent, report.replay_detail
