"""Tests for the traffic simulator's building blocks.

Distribution-shape tests run at fixed seeds: the arrival processes and
the tenant sampler are pure functions of their ``numpy`` generator, so
expected counts are stable across platforms.  The property tests check
the determinism contract directly — simulated-clock scheduling must not
depend on wall-clock time or thread interleaving.
"""

import threading
import time

import numpy as np
import pytest

from repro.exceptions import ConfigurationError
from repro.workloads.traffic import (
    AdmissionGate,
    BurstyArrivals,
    DiurnalArrivals,
    DiurnalBurstArrivals,
    Mutation,
    SimClock,
    SteadyArrivals,
    TenantMix,
    generate_arrivals,
)


class TestSimClock:
    def test_starts_at_zero_and_advances(self):
        clock = SimClock()
        assert clock.now == 0.0
        assert clock.advance(2.5) == 2.5
        assert clock.advance_to(10.0) == 10.0
        assert clock.now == 10.0

    def test_rejects_rewind(self):
        clock = SimClock(start=5.0)
        with pytest.raises(ConfigurationError):
            clock.advance(-1.0)
        with pytest.raises(ConfigurationError):
            clock.advance_to(4.0)


class TestArrivalProcesses:
    def test_steady_rate_is_flat(self):
        process = SteadyArrivals(rate_per_second=4.0)
        assert process.peak_rate == 4.0
        assert process.rate(0.0) == process.rate(123.4) == 4.0

    def test_steady_rejects_nonpositive_rate(self):
        with pytest.raises(ConfigurationError):
            SteadyArrivals(rate_per_second=0.0)

    def test_diurnal_trough_at_day_start_peak_at_noon(self):
        process = DiurnalArrivals(base_rate=10.0, amplitude=0.8, day_seconds=40.0)
        assert process.rate(0.0) == pytest.approx(2.0)  # base * (1 - amp)
        assert process.rate(20.0) == pytest.approx(18.0)  # base * (1 + amp)
        assert process.peak_rate == pytest.approx(18.0)
        # A full day later the phase repeats exactly.
        assert process.rate(40.0) == pytest.approx(process.rate(0.0))

    def test_diurnal_rejects_bad_amplitude(self):
        with pytest.raises(ConfigurationError):
            DiurnalArrivals(amplitude=1.0)

    def test_bursty_duty_cycle_windows(self):
        process = BurstyArrivals(
            base_rate=2.0, burst_factor=12.0, period_seconds=10.0, duty_cycle=0.3
        )
        assert process.in_burst(0.0) and process.in_burst(2.9)
        assert not process.in_burst(3.1) and not process.in_burst(9.9)
        assert process.in_burst(10.5)  # next period
        assert process.rate(1.0) == pytest.approx(24.0)
        assert process.rate(5.0) == pytest.approx(2.0)

    def test_bursty_validation(self):
        with pytest.raises(ConfigurationError):
            BurstyArrivals(burst_factor=0.5)
        with pytest.raises(ConfigurationError):
            BurstyArrivals(duty_cycle=1.0)

    def test_diurnal_burst_composes_both(self):
        process = DiurnalBurstArrivals()
        inside = process.rate(20.0)  # noon, and t % 10 = 0 is in-burst
        outside = process.rate(25.0)  # noon-ish, out of burst
        assert inside > outside
        assert process.peak_rate == pytest.approx(
            process.diurnal.peak_rate * process.burst.burst_factor
        )


class TestGenerateArrivals:
    def test_returns_sorted_timestamps_of_requested_count(self):
        rng = np.random.default_rng(7)
        arrivals = generate_arrivals(SteadyArrivals(8.0), 200, rng)
        assert len(arrivals) == 200
        assert arrivals == sorted(arrivals)
        assert arrivals[0] > 0.0

    def test_fixed_seed_is_reproducible(self):
        a = generate_arrivals(DiurnalArrivals(), 150, np.random.default_rng(3))
        b = generate_arrivals(DiurnalArrivals(), 150, np.random.default_rng(3))
        assert a == b

    def test_steady_empirical_rate_matches(self):
        rng = np.random.default_rng(11)
        arrivals = generate_arrivals(SteadyArrivals(rate_per_second=8.0), 800, rng)
        empirical = len(arrivals) / arrivals[-1]
        assert empirical == pytest.approx(8.0, rel=0.15)

    def test_diurnal_peak_half_outdraws_trough_half(self):
        process = DiurnalArrivals(base_rate=10.0, amplitude=0.8, day_seconds=40.0)
        rng = np.random.default_rng(5)
        arrivals = generate_arrivals(process, 1_000, rng)
        # Daytime = middle half of each simulated day (surrounds the peak).
        day = [t for t in arrivals if 10.0 <= (t % 40.0) < 30.0]
        night = [t for t in arrivals if not 10.0 <= (t % 40.0) < 30.0]
        assert len(day) > 2 * len(night)

    def test_bursty_arrivals_concentrate_in_burst_windows(self):
        process = BurstyArrivals(
            base_rate=2.0, burst_factor=12.0, period_seconds=10.0, duty_cycle=0.3
        )
        rng = np.random.default_rng(9)
        arrivals = generate_arrivals(process, 1_000, rng)
        in_burst = sum(1 for t in arrivals if process.in_burst(t))
        share = in_burst / len(arrivals)
        # 30% of the time carries 12x the rate: expected share
        # 0.3*12 / (0.3*12 + 0.7) ≈ 0.84, far above the duty cycle.
        assert share > 0.7

    def test_rejects_negative_count(self):
        with pytest.raises(ConfigurationError):
            generate_arrivals(SteadyArrivals(), -1, np.random.default_rng(0))


class TestTenantMix:
    def test_zipf_skew_top_tenant_dominates(self):
        mix = TenantMix(tenants=200, classes=("scan", "join"), zipf_s=1.1)
        rng = np.random.default_rng(0)
        counts = {}
        for _ in range(2_000):
            tenant, _ = mix.sample(rng)
            counts[tenant] = counts.get(tenant, 0) + 1
        ranked = sorted(counts.items(), key=lambda item: -item[1])
        # Rank-0 tenant is the most popular and holds a clear plurality.
        assert ranked[0][0] == "tenant-0000"
        assert ranked[0][1] > 3 * counts.get("tenant-0009", 1)
        top10 = sum(count for _, count in ranked[:10])
        assert top10 / 2_000 > 0.4

    def test_affinity_one_pins_the_preferred_class(self):
        mix = TenantMix(
            tenants=6, classes=("scan", "join", "aggregate"), affinity=1.0
        )
        rng = np.random.default_rng(1)
        for _ in range(200):
            tenant, klass = mix.sample(rng)
            index = int(tenant.split("-")[1])
            assert klass == mix.classes[index % len(mix.classes)]

    def test_fixed_seed_sampling_is_reproducible(self):
        mix = TenantMix(tenants=50, classes=("scan", "join"))
        a = [mix.sample(np.random.default_rng(4)) for _ in range(1)]
        b = [mix.sample(np.random.default_rng(4)) for _ in range(1)]
        assert a == b

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            TenantMix(tenants=0, classes=("scan",))
        with pytest.raises(ConfigurationError):
            TenantMix(tenants=5, classes=())
        with pytest.raises(ConfigurationError):
            TenantMix(tenants=5, classes=("scan",), affinity=1.5)


class TestAdmissionGate:
    def test_admits_within_depth(self):
        gate = AdmissionGate(drain_per_second=10.0, depth=4)
        assert all(gate.offer(0.0) for _ in range(4))
        assert gate.admitted == 4 and gate.rejected == 0

    def test_sheds_burst_past_depth(self):
        gate = AdmissionGate(drain_per_second=10.0, depth=4)
        verdicts = [gate.offer(0.0) for _ in range(6)]
        assert verdicts == [True] * 4 + [False] * 2
        assert gate.rejected == 2

    def test_backlog_drains_on_simulated_time(self):
        gate = AdmissionGate(drain_per_second=2.0, depth=2)
        assert gate.offer(0.0) and gate.offer(0.0)
        assert not gate.offer(0.0)  # full
        assert gate.offer(1.0)  # two slots drained in one simulated second
        assert gate.admitted == 3

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            AdmissionGate(drain_per_second=0.0, depth=4)
        with pytest.raises(ConfigurationError):
            AdmissionGate(drain_per_second=1.0, depth=0)


class TestMutation:
    def test_known_kinds_accepted(self):
        Mutation(at_fraction=0.5, kind="grow-tables")
        Mutation(at_fraction=0.0, kind="engine-tuning")
        Mutation(at_fraction=0.9, kind="inject-out-of-range")

    def test_rejects_unknown_kind_and_bad_fraction(self):
        with pytest.raises(ConfigurationError):
            Mutation(at_fraction=0.5, kind="meteor-strike")
        with pytest.raises(ConfigurationError):
            Mutation(at_fraction=1.0, kind="grow-tables")


class TestSchedulingIsSimulatedTimeOnly:
    """The determinism property behind the CI byte-diff leg."""

    PROCESSES = (
        SteadyArrivals(8.0),
        DiurnalArrivals(),
        BurstyArrivals(),
        DiurnalBurstArrivals(),
    )

    def test_schedule_ignores_wall_clock(self):
        """Re-running after real time has passed — and with unrelated
        wall-clock reads interleaved — reproduces the exact schedule."""
        for process in self.PROCESSES:
            reference = generate_arrivals(process, 100, np.random.default_rng(2))
            time.sleep(0.002)
            time.monotonic()  # unrelated clock reads change nothing
            again = generate_arrivals(process, 100, np.random.default_rng(2))
            assert again == reference

    def test_schedule_identical_across_threads(self):
        """Concurrent generation on many threads yields identical
        schedules — nothing reads shared mutable state or the host
        clock."""
        process = DiurnalBurstArrivals()
        reference = generate_arrivals(process, 200, np.random.default_rng(6))
        results = [None] * 8
        barrier = threading.Barrier(8)

        def worker(slot):
            barrier.wait()
            time.sleep(0.001 * (slot % 3))  # stagger interleavings
            results[slot] = generate_arrivals(
                process, 200, np.random.default_rng(6)
            )

        threads = [
            threading.Thread(target=worker, args=(slot,)) for slot in range(8)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert all(result == reference for result in results)

    def test_admission_gate_is_pure_in_arrival_times(self):
        arrivals = generate_arrivals(
            BurstyArrivals(), 300, np.random.default_rng(8)
        )

        def run_gate():
            gate = AdmissionGate(drain_per_second=6.0, depth=8)
            return [gate.offer(t) for t in arrivals]

        first = run_gate()
        time.sleep(0.002)
        assert run_gate() == first
        assert first.count(False) > 0  # the bursts actually shed
