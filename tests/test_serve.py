"""The concurrent estimation service: admission control, worker-pool
determinism (bit-identical to single-threaded runs), graceful model
swaps under load, and the HTTP endpoints on the shared obs port."""

import json
import threading
import urllib.error
import urllib.request

import pytest

from repro import obs
from repro.core import ClusterInfo, RemoteSystemProfile
from repro.data import build_paper_corpus
from repro.engines import HiveEngine
from repro.master.federation import IntelliSphere
from repro.obs.metrics import MetricsRegistry
from repro.serve import (
    AdmissionQueue,
    AdmissionRejected,
    EstimationService,
    ServeDaemon,
)
from repro.sql.parser import parse_select

QUERIES = (
    "SELECT r.a1 FROM t1000000_100 r JOIN t100000_100 s ON r.a1 = s.a1",
    "SELECT SUM(a1) FROM t1000000_100 GROUP BY a20",
    "SELECT a1 FROM t100000_100 WHERE a1 = 7",
    "SELECT SUM(a2) FROM t100000_40 GROUP BY a5",
    "SELECT r.a1 FROM t1000000_40 r JOIN t10000_40 s ON r.a1 = s.a1",
)


@pytest.fixture(scope="module")
def sphere():
    sphere = IntelliSphere(seed=0)
    info = ClusterInfo(
        num_data_nodes=3, cores_per_node=2, dfs_block_size=128 * 1024 * 1024
    )
    sphere.add_remote_system(
        HiveEngine(seed=0, noise_sigma=0.0),
        RemoteSystemProfile(name="hive", cluster=info),
    )
    for spec in build_paper_corpus(
        row_counts=(10_000, 100_000, 1_000_000), row_sizes=(40, 100)
    ):
        sphere.add_table(spec)
    sphere.costing.train_sub_op("hive")
    return sphere


@pytest.fixture(autouse=True)
def obs_state():
    """Fresh process-wide metrics/ledgers per test, restored on exit."""
    previous_registry = obs.set_registry(MetricsRegistry())
    previous_ledger = obs.set_ledger(obs.AccuracyLedger())
    previous_tenants = obs.set_tenant_ledger(obs.TenantLedger())
    yield
    obs.set_tenant_ledger(previous_tenants)
    obs.set_ledger(previous_ledger)
    obs.set_registry(previous_registry)


def serial_reference(sphere):
    """Single-threaded estimates, computed on a cold cache."""
    sphere.costing.invalidate_cache()
    reference = {}
    for sql in QUERIES:
        estimate = sphere.costing.estimate_plan(
            "hive", parse_select(sql), sphere.catalog
        )
        reference[sql] = estimate.seconds
    return reference


class TestAdmissionQueue:
    def test_fifo_and_depth(self):
        queue = AdmissionQueue(limit=4)
        jobs = []
        for index in range(3):
            job = _noop_job(index)
            jobs.append(job)
            queue.offer(job)
        assert queue.depth == 3
        assert [queue.take() for _ in range(3)] == jobs
        assert queue.depth == 0

    def test_overflow_rejects_with_retry_after(self):
        queue = AdmissionQueue(limit=2, retry_after=0.5)
        queue.offer(_noop_job(0))
        queue.offer(_noop_job(1))
        with pytest.raises(AdmissionRejected) as excinfo:
            queue.offer(_noop_job(2))
        assert excinfo.value.depth == 2
        assert excinfo.value.limit == 2
        assert excinfo.value.retry_after == 0.5
        assert obs.counter("serve.rejected").value == 1.0

    def test_closed_queue_drains_then_signals_shutdown(self):
        queue = AdmissionQueue(limit=4)
        admitted = _noop_job(0)
        queue.offer(admitted)
        queue.close()
        with pytest.raises(RuntimeError):
            queue.offer(_noop_job(1))
        assert queue.take() is admitted  # already-admitted work drains
        assert queue.take() is None  # then workers are told to exit

    def test_bad_depth_rejected(self):
        from repro.exceptions import ConfigurationError

        with pytest.raises(ConfigurationError):
            AdmissionQueue(limit=0)


def _noop_job(index):
    from repro.serve import _Job

    return _Job(
        context=obs.build_query_context(query=f"job-{index}"),
        work=lambda: index,
        enqueued=0.0,
    )


class TestConcurrentDeterminism:
    def test_eight_workers_bit_identical_to_serial(self, sphere):
        """The acceptance criterion: estimates served through 8
        concurrent workers equal single-threaded runs bit for bit."""
        reference = serial_reference(sphere)
        sphere.costing.invalidate_cache()
        with EstimationService(sphere, workers=8, queue_depth=256) as service:
            results = [[] for _ in range(8)]
            errors = []

            def client(slot):
                try:
                    for round_index in range(5):
                        sql = QUERIES[(slot + round_index) % len(QUERIES)]
                        payload = service.estimate("hive", sql)
                        results[slot].append((sql, payload))
                except BaseException as exc:  # noqa: BLE001
                    errors.append(exc)

            threads = [
                threading.Thread(target=client, args=(slot,), daemon=True)
                for slot in range(8)
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(timeout=60.0)
        assert errors == []
        checked = 0
        for slot_results in results:
            assert len(slot_results) == 5
            for sql, payload in slot_results:
                assert payload["seconds"] == reference[sql]  # bit-identical
                checked += 1
        assert checked == 40
        assert obs.counter("serve.completed").value == 40.0
        assert obs.counter("serve.errors").value == 0.0

    def test_query_ids_minted_at_admission(self, sphere):
        obs.reset_query_ids()
        with EstimationService(sphere, workers=2) as service:
            jobs = [
                service.submit(lambda: None, query=f"q{i}") for i in range(4)
            ]
            for job in jobs:
                assert job.done.wait(timeout=10.0)
        assert [job.context.query_id for job in jobs] == [
            "q-000001",
            "q-000002",
            "q-000003",
            "q-000004",
        ]

    def test_tenant_attribution_through_the_pool(self, sphere):
        with EstimationService(sphere, workers=2) as service:
            service.estimate("hive", QUERIES[2], tenant="etl")
            service.estimate("hive", QUERIES[2], tenant="etl")
            service.estimate("hive", QUERIES[3], tenant="adhoc")
        snapshot = obs.get_tenant_ledger().snapshot()
        assert snapshot["etl"]["queries"] == 2
        assert snapshot["adhoc"]["queries"] == 1

    def test_worker_errors_do_not_kill_the_pool(self, sphere):
        with EstimationService(sphere, workers=1) as service:
            with pytest.raises(ZeroDivisionError):
                service.execute(lambda: 1 / 0)
            assert service.execute(lambda: 7) == 7
        assert obs.counter("serve.errors").value == 1.0


class TestSwapUnderLoad:
    def test_swap_mid_load_keeps_estimates_identical(self, sphere):
        """Mid-load swaps: zero rejects caused by the swap, bit-identical
        estimates throughout, and no stale-generation cache entries."""
        reference = serial_reference(sphere)
        sphere.costing.invalidate_cache()
        stop = threading.Event()
        mismatches = []
        errors = []
        served = {"count": 0}

        with EstimationService(sphere, workers=8, queue_depth=512) as service:

            def client(slot):
                index = slot
                while not stop.is_set():
                    sql = QUERIES[index % len(QUERIES)]
                    index += 1
                    try:
                        payload = service.estimate("hive", sql)
                    except BaseException as exc:  # noqa: BLE001
                        errors.append(exc)
                        return
                    if payload["seconds"] != reference[sql]:
                        mismatches.append((sql, payload))
                    served["count"] += 1

            threads = [
                threading.Thread(target=client, args=(slot,), daemon=True)
                for slot in range(8)
            ]
            for thread in threads:
                thread.start()

            generations = [sphere.costing.generation("hive")]
            for _ in range(3):
                generations.append(service.swap("hive")["generation"])
            stop.set()
            for thread in threads:
                thread.join(timeout=60.0)

        assert errors == []  # zero rejected/failed because of the swap
        assert mismatches == []  # no torn estimates across generations
        assert served["count"] >= 8
        # Generations moved strictly forward, one step per swap.
        assert generations == sorted(generations)
        assert len(set(generations)) == 4
        assert obs.counter("costing.model_swaps").value == 3.0
        # The cache retired every pre-swap key: its generation watermark
        # matches the live one, and a fresh lookup round only ever sees
        # current-generation entries.
        stats = sphere.costing.cache.stats()
        assert stats["generation"] == sphere.costing.generation("hive")
        assert stats["generation"] == generations[-1]

    def test_swap_bumps_generation_and_invalidate_retires_keys(self, sphere):
        sphere.costing.invalidate_cache()
        before = sphere.costing.generation("hive")
        plan = parse_select(QUERIES[0])
        first = sphere.costing.estimate_plan("hive", plan, sphere.catalog)
        cached = sphere.costing.estimate_plan("hive", plan, sphere.catalog)
        assert cached.cache_hit and cached.seconds == first.seconds
        after = sphere.swap_estimator("hive")
        assert after > before
        # The old generation's key no longer serves hits.
        fresh = sphere.costing.estimate_plan("hive", plan, sphere.catalog)
        assert not fresh.cache_hit
        assert fresh.seconds == first.seconds  # rebuilt model, same math
        assert obs.gauge("costing.model_generation").value == float(after)


class TestSaturationAndProfiling:
    def test_queue_depth_gauge_zeroed_after_stop(self, sphere):
        with EstimationService(sphere, workers=2) as service:
            service.estimate("hive", QUERIES[2])
            assert obs.gauge("serve.workers").value == 2.0
        # Drain-then-shutdown resets both gauges, not just the workers
        # one — a stopped service must not report phantom queue depth.
        assert obs.gauge("serve.workers").value == 0.0
        assert obs.gauge("serve.queue_depth").value == 0.0

    def test_worker_utilization_telemetry(self, sphere):
        with EstimationService(sphere, workers=2) as service:
            for _ in range(3):
                for sql in QUERIES:
                    service.estimate("hive", sql)
            utilization = service.utilization()
        assert 0.0 <= utilization <= 1.0
        assert obs.counter("serve.worker_busy_seconds").value > 0.0
        assert obs.counter("serve.worker_idle_seconds").value >= 0.0
        assert 0.0 <= obs.gauge("serve.utilization").value <= 1.0

    def test_eight_workers_bit_identical_with_sampler_running(
        self, sphere, monkeypatch
    ):
        """The profiling acceptance criterion: a service run with the
        stack sampler on serves estimates bit-identical to serial runs,
        and the service owns the sampler's shutdown."""
        monkeypatch.setenv(obs.PROF_ENV_VAR, "300")
        reference = serial_reference(sphere)
        sphere.costing.invalidate_cache()
        with EstimationService(sphere, workers=8, queue_depth=256) as service:
            sampler = obs.get_stack_sampler()
            assert sampler is not None and sampler.running
            results = [[] for _ in range(8)]
            errors = []

            def client(slot):
                try:
                    for round_index in range(5):
                        sql = QUERIES[(slot + round_index) % len(QUERIES)]
                        payload = service.estimate("hive", sql)
                        results[slot].append((sql, payload))
                except BaseException as exc:  # noqa: BLE001
                    errors.append(exc)

            threads = [
                threading.Thread(target=client, args=(slot,), daemon=True)
                for slot in range(8)
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(timeout=60.0)
        assert errors == []
        for slot_results in results:
            assert len(slot_results) == 5
            for sql, payload in slot_results:
                assert payload["seconds"] == reference[sql]  # bit-identical
        # stop() shut the sampler down and uninstalled it
        assert obs.get_stack_sampler() is None
        assert not sampler.running
        assert sampler.sampled > 0  # it really did observe the run
        roles = {s.split(";")[0] for s in sampler.merged_stacks()}
        assert "[serve]" in roles  # worker threads were walked

    def test_sampler_not_started_when_env_off(self, sphere, monkeypatch):
        monkeypatch.delenv(obs.PROF_ENV_VAR, raising=False)
        with EstimationService(sphere, workers=1) as service:
            service.estimate("hive", QUERIES[2])
            assert obs.get_stack_sampler() is None


def post(url, payload, headers=None, timeout=30.0):
    request = urllib.request.Request(
        url,
        data=json.dumps(payload).encode("utf-8"),
        headers={"Content-Type": "application/json", **(headers or {})},
        method="POST",
    )
    try:
        with urllib.request.urlopen(request, timeout=timeout) as response:
            return (
                response.status,
                dict(response.headers),
                json.loads(response.read()),
            )
    except urllib.error.HTTPError as error:
        return error.code, dict(error.headers), json.loads(error.read())


def get(url, timeout=30.0):
    try:
        with urllib.request.urlopen(url, timeout=timeout) as response:
            return response.status, response.read().decode("utf-8")
    except urllib.error.HTTPError as error:
        return error.code, error.read().decode("utf-8")


class TestHttpEndpoints:
    @pytest.fixture()
    def daemon(self, sphere):
        with ServeDaemon(sphere, port=0, workers=4, queue_depth=32) as running:
            yield running

    def test_estimate_endpoint(self, sphere, daemon):
        status, _, payload = post(
            daemon.url + "/estimate",
            {"system": "hive", "sql": QUERIES[1]},
            headers={"X-Repro-Tenant": "analytics"},
        )
        assert status == 200
        assert payload["system"] == "hive"
        assert payload["operator"] == "aggregate"
        assert payload["seconds"] > 0
        assert payload["generation"] == sphere.costing.generation("hive")
        snapshot = obs.get_tenant_ledger().snapshot()
        assert snapshot["analytics"]["queries"] == 1

    def test_optimize_endpoint(self, daemon):
        status, _, payload = post(daemon.url + "/optimize", {"sql": QUERIES[2]})
        assert status == 200
        assert payload["location"] in ("hive", "teradata")
        assert payload["steps"]
        assert payload["alternatives"]

    def test_swap_endpoint(self, sphere, daemon):
        before = sphere.costing.generation("hive")
        status, _, payload = post(daemon.url + "/swap", {"system": "hive"})
        assert status == 200
        assert payload == {"system": "hive", "generation": before + 1}

    def test_error_mapping(self, daemon):
        url = daemon.url
        assert post(url + "/estimate", {"system": "hive"})[0] == 400
        assert post(url + "/estimate", {"sql": "x", "system": ""})[0] == 400
        bad_sql = post(url + "/estimate", {"system": "hive", "sql": "SELEKT"})
        assert bad_sql[0] == 400
        unknown = post(url + "/estimate", {"system": "nope", "sql": QUERIES[2]})
        assert unknown[0] == 404
        status, body = get(url + "/estimate")  # GET on a POST route
        assert status == 405
        assert "POST" in json.loads(body)["allow"]

    def test_obs_plane_shares_the_port(self, daemon):
        post(daemon.url + "/estimate", {"system": "hive", "sql": QUERIES[2]})
        status, body = get(daemon.url + "/metrics.json")
        assert status == 200
        metrics = json.loads(body)["metrics"]
        assert metrics["serve.admitted"]["value"] >= 1.0
        assert "costing.model_generation" in metrics
        for path in ("/metrics", "/health", "/tenants", "/dashboard"):
            assert get(daemon.url + path)[0] == 200

    def test_backpressure_maps_to_503_with_retry_after(self, sphere):
        with ServeDaemon(sphere, port=0, workers=1, queue_depth=1) as daemon:
            release = threading.Event()
            running = threading.Event()

            def occupy_worker():
                running.set()
                release.wait(10.0)

            # Saturate: one job occupies the worker, one fills the queue.
            blocker = daemon.service.submit(occupy_worker)
            assert running.wait(10.0)  # the worker has dequeued it
            queued = daemon.service.submit(lambda: None)
            status, headers, payload = post(
                daemon.url + "/estimate",
                {"system": "hive", "sql": QUERIES[2]},
            )
            release.set()
            assert blocker.done.wait(10.0) and queued.done.wait(10.0)
            assert status == 503
            assert headers.get("Retry-After") == "1"
            assert payload["error"] == "admission queue full"
            assert payload["limit"] == 1
        assert obs.counter("serve.rejected").value == 1.0


class TestServeCliWiring:
    def test_parser_defaults(self):
        from repro.cli import build_parser, cmd_serve

        args = build_parser().parse_args(
            ["serve", "--port", "0", "--workers", "2"]
        )
        assert args.func is cmd_serve
        assert args.port == 0
        assert args.workers == 2
        assert args.queue_depth == 64
        assert args.tenant_header == "X-Repro-Tenant"
