"""Tests for cluster configuration and task-wave arithmetic."""

import pytest

from repro.cluster import Cluster, ClusterConfig, paper_cluster
from repro.cluster.node import CpuProfile
from repro.exceptions import ConfigurationError


class TestClusterConfig:
    def test_replication_cannot_exceed_nodes(self):
        with pytest.raises(ConfigurationError):
            ClusterConfig(num_data_nodes=2, dfs_replication=3)

    def test_rejects_zero_nodes(self):
        with pytest.raises(ConfigurationError):
            ClusterConfig(num_data_nodes=0)

    def test_rejects_bad_block_size(self):
        with pytest.raises(ConfigurationError):
            ClusterConfig(dfs_block_size=0)


class TestCluster:
    def test_node_roster_includes_master(self):
        cluster = Cluster(ClusterConfig(num_data_nodes=3, has_master=True))
        assert len(cluster) == 4
        assert len(cluster.data_nodes) == 3
        assert cluster.nodes[0].is_master

    def test_no_master_variant(self):
        cluster = Cluster(ClusterConfig(num_data_nodes=3, has_master=False))
        assert len(cluster) == 3
        assert all(not n.is_master for n in cluster)

    def test_total_task_slots(self):
        config = ClusterConfig(num_data_nodes=3, node_cpu=CpuProfile(cores=4))
        assert Cluster(config).total_task_slots == 12

    def test_task_waves_ceiling(self):
        cluster = Cluster(ClusterConfig(num_data_nodes=3))  # 6 slots
        assert cluster.num_task_waves(0) == 0
        assert cluster.num_task_waves(1) == 1
        assert cluster.num_task_waves(6) == 1
        assert cluster.num_task_waves(7) == 2
        assert cluster.num_task_waves(600) == 100

    def test_task_waves_rejects_negative(self):
        cluster = Cluster(ClusterConfig())
        with pytest.raises(ConfigurationError):
            cluster.num_task_waves(-1)

    def test_tasks_for_bytes_one_per_block(self):
        cluster = Cluster(ClusterConfig(dfs_block_size=128))
        assert cluster.num_tasks_for_bytes(0) == 0
        assert cluster.num_tasks_for_bytes(1) == 1
        assert cluster.num_tasks_for_bytes(128) == 1
        assert cluster.num_tasks_for_bytes(129) == 2

    def test_dfs_capacity_sums_data_nodes(self):
        cluster = Cluster(ClusterConfig(num_data_nodes=3))
        expected = 3 * cluster.config.node_disk.capacity
        assert cluster.dfs_capacity == expected


class TestPaperCluster:
    def test_matches_paper_description(self):
        cluster = paper_cluster()
        assert cluster.config.num_data_nodes == 3
        assert cluster.config.node_cpu.cores == 2
        assert cluster.total_task_slots == 6
        # 445 GB HDFS across 3 data nodes.
        assert cluster.dfs_capacity == pytest.approx(445 * 1024**3, rel=0.01)
