"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, build_sandbox, main


@pytest.fixture(autouse=True)
def _isolated_tenant_ledger():
    """CLI commands attribute tenants to the process-global ledger
    (demo stamps DEMO_TENANTS); keep that state out of other suites."""
    from repro import obs

    previous = obs.set_tenant_ledger(obs.TenantLedger())
    yield
    obs.set_tenant_ledger(previous)


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_explain_requires_query(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["explain"])


class TestCommands:
    def test_corpus(self, capsys):
        assert main(["corpus"]) == 0
        out = capsys.readouterr().out
        assert "120 tables" in out
        assert "t1000000_250" in out

    def test_experiments(self, capsys):
        assert main(["experiments"]) == 0
        out = capsys.readouterr().out
        assert "bench_fig14_out_of_range.py" in out
        assert "Table 1" in out

    def test_demo(self, capsys):
        assert main(["demo"]) == 0
        out = capsys.readouterr().out
        assert "estimate" in out and "actual" in out
        assert out.count("s ") >= 3

    def test_explain(self, capsys):
        code = main(
            [
                "explain",
                "SELECT r.a1 FROM t8000000_100 r JOIN t100000_100 s "
                "ON r.a1 = s.a1",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "placement plan" in out
        assert "alternatives:" in out

    def test_run(self, capsys):
        code = main(["run", "SELECT SUM(a1) FROM t1000000_100 GROUP BY a20"])
        assert code == 0
        out = capsys.readouterr().out
        assert "total: estimated" in out

    def test_unknown_table_reports_error(self, capsys):
        code = main(["explain", "SELECT * FROM mystery_table WHERE a1 < 5"])
        assert code == 1
        assert "error:" in capsys.readouterr().err


class TestSandbox:
    def test_sandbox_with_spark(self):
        sphere = build_sandbox(with_spark=True)
        assert set(sphere.remote_system_names) == {"hive", "spark"}


class TestObservabilityCommands:
    def test_stats_live(self, capsys):
        assert main(["stats"]) == 0
        out = capsys.readouterr().out
        assert "metrics registry" in out

    def test_stats_from_snapshot(self, capsys, tmp_path):
        from repro.obs import MetricsRegistry, exporters

        registry = MetricsRegistry()
        registry.counter("costing.estimate_plan.calls").inc(7)
        path = tmp_path / "run.metrics.json"
        exporters.write_json_snapshot(path, registry=registry)
        assert main(["stats", "--from", str(path)]) == 0
        out = capsys.readouterr().out
        assert "costing.estimate_plan.calls" in out
        assert "7" in out

    def test_stats_prometheus_format(self, capsys, tmp_path):
        from repro.obs import MetricsRegistry, exporters

        registry = MetricsRegistry()
        registry.counter("federation.runs").inc()
        path = tmp_path / "run.metrics.json"
        exporters.write_json_snapshot(path, registry=registry)
        assert main(["stats", "--from", str(path), "--format", "prom"]) == 0
        out = capsys.readouterr().out
        assert "# TYPE repro_federation_runs counter" in out
        assert "repro_federation_runs 1.0" in out

    def test_stats_rejects_non_snapshot_file(self, capsys, tmp_path):
        path = tmp_path / "junk.json"
        path.write_text("{}")
        assert main(["stats", "--from", str(path)]) == 2
        assert "not a metrics snapshot" in capsys.readouterr().err

    def test_stats_missing_snapshot_file_exits_2(self, capsys, tmp_path):
        assert main(["stats", "--from", str(tmp_path / "absent.json")]) == 2
        err = capsys.readouterr().err
        assert "error: stats --from" in err

    def test_stats_corrupt_snapshot_file_exits_2(self, capsys, tmp_path):
        path = tmp_path / "corrupt.json"
        path.write_text("{not json at all")
        assert main(["stats", "--from", str(path)]) == 2
        assert "error: stats --from" in capsys.readouterr().err

    def test_trace_prints_span_tree(self, capsys):
        from repro import obs

        try:
            assert main(["trace"]) == 0
        finally:
            obs.get_tracer().disable()
            obs.get_tracer().clear()
        out = capsys.readouterr().out
        assert "repro.trace" in out
        assert "federation.run" in out
        assert "costing.estimate_batch" in out
        assert "approach=sub_op" in out
        assert "remedy=off" in out
        assert "subop_shares=" in out
        assert "total: estimated" in out

    def test_trace_exports_json(self, capsys, tmp_path):
        import json

        from repro import obs

        path = tmp_path / "trace.json"
        try:
            code = main(
                [
                    "trace",
                    "SELECT SUM(a1) FROM t1000000_100 GROUP BY a20",
                    "--json",
                    str(path),
                ]
            )
        finally:
            obs.get_tracer().disable()
            obs.get_tracer().clear()
        assert code == 0
        data = json.loads(path.read_text())
        assert data and data[0]["name"] == "repro.trace"

    def test_profile_prints_cost_breakdown(self, capsys, tmp_path):
        from repro import obs

        html_path = tmp_path / "profile.html"
        try:
            code = main(["profile", "--html", str(html_path)])
        finally:
            obs.get_tracer().disable()
            obs.get_tracer().clear()
        assert code == 0
        out = capsys.readouterr().out
        assert "placement steps (estimate vs actual)" in out
        assert "operator estimates" in out
        assert "sub-operator breakdown" in out
        assert "estimation overhead (wall clock)" in out
        html = html_path.read_text()
        assert html.startswith("<!doctype html>")
        assert "Query cost profile" in html

    def test_profile_restores_disabled_tracer(self):
        from repro import obs

        tracer = obs.get_tracer()
        assert not tracer.enabled
        try:
            assert main(["profile"]) == 0
        finally:
            tracer.disable()
            tracer.clear()
        assert not tracer.enabled

    def test_report_replays_journal(self, capsys, tmp_path):
        from repro.obs import EventJournal

        journal = EventJournal(tmp_path / "journal.jsonl")
        journal.append(
            "estimate",
            system="hive",
            operator="join",
            approach="sub_op",
            seconds=10.0,
            remedy_active=False,
        )
        journal.append(
            "actual",
            system="hive",
            operator="join",
            approach="sub_op",
            estimated_seconds=10.0,
            actual_seconds=12.0,
            remedy_active=False,
            drift_flagged=False,
        )
        journal.close()
        code = main(["report", "--journal", str(journal.path)])
        assert code == 0
        out = capsys.readouterr().out
        assert "events applied: 2" in out
        assert "hive/join" in out
        assert "costing.estimate_plan.calls" in out

    def test_report_without_journal_exits_2(self, capsys, monkeypatch):
        from repro import obs

        monkeypatch.delenv(obs.JOURNAL_ENV_VAR, raising=False)
        assert main(["report"]) == 2
        assert "no journal given" in capsys.readouterr().err

    def test_report_missing_journal_file_exits_2(self, capsys, tmp_path):
        assert main(["report", "--journal", str(tmp_path / "nope.jsonl")]) == 2
        assert "not found" in capsys.readouterr().err

    def test_verbose_flag_enables_debug_logging(self, capsys):
        import logging

        assert main(["-v", "corpus"]) == 0
        assert logging.getLogger("repro").level == logging.DEBUG
        # A later non-verbose invocation retunes the level back down.
        assert main(["corpus"]) == 0
        assert logging.getLogger("repro").level == logging.WARNING


class TestFlamegraphCommand:
    """``repro flamegraph``: sampled stacks (live burst, journal
    rebuild, differential) — distinct from the span-tree ``profile``."""

    def _write_profile_journal(self, path, stacks_list):
        from repro.obs import EventJournal
        from repro.obs.sampling import ProfileWindow

        journal = EventJournal(path)
        for index, stacks in enumerate(stacks_list):
            window = ProfileWindow(
                index=index,
                start=float(index),
                end=float(index + 1),
                samples=sum(stacks.values()),
                roles={"serve": sum(stacks.values())},
                stacks=dict(stacks),
            )
            journal.append("profile", **window.to_payload())
        journal.close()
        return path

    def test_parser_defaults(self):
        args = build_parser().parse_args(["flamegraph"])
        assert args.hz == 250.0
        assert args.queries == 2000
        assert args.journal is None
        assert args.diff is None
        assert args.limit == 25

    def test_help_disambiguates_span_tree_from_sampled(self):
        parser = build_parser()
        usage = parser.format_help()
        assert "span-tree profile" in usage
        assert "stack-sampled flamegraph" in usage
        assert "span-tree aggregate" in usage

    def test_journal_rebuild_writes_deterministic_outputs(
        self, capsys, tmp_path
    ):
        path = self._write_profile_journal(
            tmp_path / "prof.jsonl",
            [{"[serve];repro.a;repro.b": 10, "[main]": 2},
             {"[serve];repro.a;repro.b": 5}],
        )
        html_a = tmp_path / "a.html"
        html_b = tmp_path / "b.html"
        collapsed = tmp_path / "stacks.txt"
        assert main([
            "flamegraph", "--journal", str(path),
            "--out", str(html_a), "--collapsed", str(collapsed),
        ]) == 0
        out = capsys.readouterr().out
        assert "repro.b" in out  # hot-frame table printed
        assert "flamegraph HTML written" in out
        assert main([
            "flamegraph", "--journal", str(path), "--out", str(html_b),
        ]) == 0
        # byte-deterministic across runs for the same journal
        assert html_a.read_bytes() == html_b.read_bytes()
        assert "2 profile windows, 17 samples" in html_a.read_text()
        assert collapsed.read_text() == (
            "[main] 2\n[serve];repro.a;repro.b 15\n"
        )

    def test_journal_without_profile_events_exits_2(self, capsys, tmp_path):
        from repro.obs import EventJournal

        journal = EventJournal(tmp_path / "plain.jsonl")
        journal.append("estimate", seconds=1.0)
        journal.close()
        assert main(["flamegraph", "--journal", str(journal.path)]) == 2
        assert "no profile events" in capsys.readouterr().err

    def test_missing_journal_exits_2(self, capsys, tmp_path):
        assert main(
            ["flamegraph", "--journal", str(tmp_path / "nope.jsonl")]
        ) == 2
        assert "not found" in capsys.readouterr().err

    def test_diff_between_two_journals(self, capsys, tmp_path):
        a = self._write_profile_journal(
            tmp_path / "a.jsonl", [{"[serve];repro.a": 50, "[serve];repro.b": 50}]
        )
        b = self._write_profile_journal(
            tmp_path / "b.jsonl", [{"[serve];repro.a": 20, "[serve];repro.b": 80}]
        )
        out_path = tmp_path / "diff.html"
        assert main([
            "flamegraph", "--diff", str(a), str(b), "--out", str(out_path),
        ]) == 0
        out = capsys.readouterr().out
        assert "d self" in out
        assert "pp" in out
        assert "HTML diff written" in out
        html = out_path.read_text()
        assert "differential profile" in html
        assert "repro.a" in html

    def test_diff_missing_file_exits_2(self, capsys, tmp_path):
        a = self._write_profile_journal(
            tmp_path / "a.jsonl", [{"[serve];repro.a": 1}]
        )
        assert main(
            ["flamegraph", "--diff", str(a), str(tmp_path / "nope.jsonl")]
        ) == 2
        assert "not found" in capsys.readouterr().err

    def test_diff_without_profile_events_exits_2(self, capsys, tmp_path):
        from repro.obs import EventJournal

        for name in ("a.jsonl", "b.jsonl"):
            journal = EventJournal(tmp_path / name)
            journal.append("estimate", seconds=1.0)
            journal.close()
        assert main([
            "flamegraph",
            "--diff", str(tmp_path / "a.jsonl"), str(tmp_path / "b.jsonl"),
        ]) == 2
        assert "neither journal holds profile events" in (
            capsys.readouterr().err
        )

    def test_live_burst_samples_the_optimizer(self, capsys, tmp_path):
        from repro.obs.sampling import get_stack_sampler

        out_path = tmp_path / "live.html"
        code = main([
            "flamegraph", "--hz", "1000", "--queries", "400",
            "--out", str(out_path),
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "live burst: 400 placements" in out_path.read_text()
        assert "frame" in out
        # the burst pins a private sampler, never the process-wide slot
        assert get_stack_sampler() is None


class TestHealthAndAlertCommands:
    """The SLO surface: `repro alerts`, `repro health`, `repro dashboard`."""

    def _write_journal(self, path, q_error=10.0, count=20, drift=False):
        """A journal of `count` hive actuals at the given q-error, each
        carrying a federation-minted query id."""
        from repro.obs import EventJournal

        journal = EventJournal(path)
        for index in range(count):
            journal.append(
                "actual",
                system="hive",
                operator="join",
                approach="sub_op",
                estimated_seconds=1.0,
                actual_seconds=q_error,
                remedy_active=False,
                drift_flagged=False,
                query_id=f"q-{index + 1:06d}",
            )
        if drift:
            journal.append(
                "drift",
                system="hive",
                direction="slower",
                statistic=12.0,
                observations=count,
            )
        journal.close()
        return path

    def test_alerts_fire_and_exit_nonzero_on_degraded_accuracy(
        self, capsys, tmp_path
    ):
        path = self._write_journal(tmp_path / "bad.jsonl")
        code = main(["alerts", "--journal", str(path), "--no-emit"])
        assert code == 1
        out = capsys.readouterr().out
        assert "FIRING [critical] slo-q-error hive/join" in out
        # The fired line names exemplar queries from the federation layer.
        assert "q-0000" in out

    def test_alerts_quiet_on_accurate_journal(self, capsys, tmp_path):
        path = self._write_journal(tmp_path / "ok.jsonl", q_error=1.05)
        code = main(["alerts", "--journal", str(path), "--no-emit"])
        assert code == 0
        assert "quiet" in capsys.readouterr().out

    def test_alerts_emit_appends_alert_events_with_exemplars(
        self, capsys, tmp_path
    ):
        from repro import obs

        path = self._write_journal(tmp_path / "bad.jsonl")
        assert main(["alerts", "--journal", str(path)]) == 1
        events = obs.read_journal(path).events
        alert_events = [e for e in events if e.type == "alert"]
        assert alert_events
        payload = alert_events[0].payload
        assert payload["state"] == "firing"
        assert payload["alert_version"] == 1
        # Acceptance: the journaled alert carries >= 1 exemplar query id
        # that was propagated down from the federation layer.
        assert len(payload["exemplars"]) >= 1
        assert payload["exemplars"][0].startswith("q-")

    def test_alerts_json_is_deterministic(self, capsys, tmp_path):
        path = self._write_journal(tmp_path / "bad.jsonl", drift=True)
        argv = ["alerts", "--journal", str(path), "--no-emit", "--json"]
        assert main(argv) == 1
        first = capsys.readouterr().out
        assert main(argv) == 1
        second = capsys.readouterr().out
        assert first == second
        import json

        report = json.loads(first)
        assert report["version"] == 1
        assert report["worst_severity"] == "critical"
        assert {a["rule"] for a in report["alerts"] if a["firing"]} >= {
            "slo-q-error", "drift-alarm",
        }

    def test_alerts_missing_journal_exits_2(self, capsys, tmp_path):
        code = main(["alerts", "--journal", str(tmp_path / "nope.jsonl")])
        assert code == 2
        assert "not found" in capsys.readouterr().err

    def test_alerts_bad_rules_file_exits_2(self, capsys, tmp_path):
        path = self._write_journal(tmp_path / "ok.jsonl", q_error=1.0)
        rules = tmp_path / "rules.json"
        rules.write_text('{"not": "a list"}')
        code = main(
            ["alerts", "--journal", str(path), "--rules", str(rules)]
        )
        assert code == 2
        assert "--rules" in capsys.readouterr().err

    def test_alerts_custom_rules_file(self, capsys, tmp_path):
        import json

        path = self._write_journal(tmp_path / "mild.jsonl", q_error=1.5)
        rules = tmp_path / "rules.json"
        rules.write_text(
            json.dumps(
                [{
                    "name": "strict-q",
                    "signal": "ledger:*:mean_q_error",
                    "op": ">",
                    "threshold": 1.2,
                    "severity": "warning",
                }]
            )
        )
        code = main(
            ["alerts", "--journal", str(path), "--no-emit",
             "--rules", str(rules)]
        )
        assert code == 1
        assert "strict-q" in capsys.readouterr().out

    def test_health_breached_on_degraded_accuracy(self, capsys, tmp_path):
        path = self._write_journal(tmp_path / "bad.jsonl")
        code = main(["health", "--journal", str(path)])
        assert code == 1
        out = capsys.readouterr().out
        assert "hive" in out
        assert "critical" in out
        assert "health: BREACHED" in out

    def test_health_ok_on_accurate_journal(self, capsys, tmp_path):
        path = self._write_journal(tmp_path / "ok.jsonl", q_error=1.05)
        code = main(["health", "--journal", str(path)])
        assert code == 0
        out = capsys.readouterr().out
        assert "healthy" in out
        assert "BREACHED" not in out

    def test_health_json_payload(self, capsys, tmp_path):
        import json

        path = self._write_journal(tmp_path / "bad.jsonl")
        code = main(["health", "--journal", str(path), "--json"])
        assert code == 1
        data = json.loads(capsys.readouterr().out)
        assert data["breached"] is True
        assert data["systems"][0]["system"] == "hive"
        assert data["systems"][0]["grade"] == "critical"
        assert data["alerts"]["worst_severity"] == "critical"

    def test_health_from_snapshot_file(self, capsys, tmp_path):
        from repro import obs
        from repro.obs import exporters

        registry = obs.MetricsRegistry()
        ledger = obs.AccuracyLedger()
        for _ in range(20):
            ledger.record(
                system="hive",
                operator="join",
                estimated_seconds=1.0,
                actual_seconds=1.1,
            )
        snap = tmp_path / "run.metrics.json"
        exporters.write_json_snapshot(snap, registry=registry, ledger=ledger)
        code = main(["health", "--from", str(snap)])
        assert code == 0
        assert "healthy" in capsys.readouterr().out

    def test_health_live_with_no_signals(self, capsys, monkeypatch):
        from repro import obs

        monkeypatch.delenv(obs.JOURNAL_ENV_VAR, raising=False)
        previous = obs.set_ledger(obs.AccuracyLedger())
        try:
            code = main(["health"])
        finally:
            obs.set_ledger(previous)
        assert code == 0
        assert "no remote-system signals yet" in capsys.readouterr().out

    def test_dashboard_writes_self_contained_html(self, capsys, tmp_path):
        path = self._write_journal(tmp_path / "bad.jsonl", drift=True)
        out_file = tmp_path / "dash.html"
        code = main(
            ["dashboard", "--journal", str(path), "--out", str(out_file)]
        )
        assert code == 0
        page = out_file.read_text()
        assert page.startswith("<!doctype html>")
        assert "hive" in page
        assert "grade-critical" in page
        assert "<svg" in page  # journal history sparkline
        assert "q-0000" in page  # exemplars on the alert table

    def test_dashboard_missing_journal_exits_2(self, capsys, tmp_path):
        code = main(
            ["dashboard", "--journal", str(tmp_path / "nope.jsonl"),
             "--out", str(tmp_path / "dash.html")]
        )
        assert code == 2
        assert "not found" in capsys.readouterr().err


class TestServeObsCommand:
    def _restore_timeseries(self):
        from repro import obs

        obs.disable_timeseries()

    def test_parser_defaults(self):
        args = build_parser().parse_args(["serve-obs"])
        assert args.host == "127.0.0.1"
        assert args.port == 8321
        assert args.for_seconds == 0.0
        assert args.window is None
        assert not args.demo

    def test_short_run_serves_endpoints(self, capsys):
        import json
        import re
        import threading
        import urllib.request

        from repro.cli import main as cli_main

        statuses = {}

        def probe():
            # Wait for the startup banner's port, then scrape while the
            # command is still inside its --for window.
            import time

            deadline = time.monotonic() + 5.0
            url = None
            while time.monotonic() < deadline and url is None:
                time.sleep(0.05)
                match = re.search(
                    r"http://127\.0\.0\.1:(\d+)", captured.get("out", "")
                )
                if match:
                    url = f"http://127.0.0.1:{match.group(1)}"
            if url is None:
                return
            for path in ("/health", "/timeseries"):
                try:
                    with urllib.request.urlopen(url + path, timeout=2) as r:
                        statuses[path] = (r.status, r.read().decode())
                except OSError:
                    statuses[path] = (0, "")

        captured = {}

        class Tee:
            def __init__(self, stream):
                self.stream = stream

            def write(self, text):
                captured["out"] = captured.get("out", "") + text
                return self.stream.write(text)

            def flush(self):
                self.stream.flush()

        import sys as sys_mod

        worker = threading.Thread(target=probe)
        original = sys_mod.stdout
        sys_mod.stdout = Tee(original)
        try:
            worker.start()
            code = cli_main(
                ["serve-obs", "--port", "0", "--for", "1.5",
                 "--interval", "0.05", "--window", "0.2"]
            )
            worker.join(timeout=10.0)
        finally:
            sys_mod.stdout = original
            self._restore_timeseries()
        assert code == 0
        assert statuses["/health"][0] == 200
        assert statuses["/timeseries"][0] == 200
        snapshot = json.loads(statuses["/timeseries"][1])
        assert snapshot["width"] == 0.2

    def test_bad_rules_file_exits_2(self, capsys, tmp_path):
        rules = tmp_path / "rules.json"
        rules.write_text('[{"name": "bad", "signal": "nosuch:x"}]')
        code = main(["serve-obs", "--rules", str(rules), "--for", "0.1"])
        assert code == 2
        err = capsys.readouterr().err
        assert "serve-obs --rules" in err
        assert "'bad'" in err

    def test_missing_rules_file_exits_2(self, capsys, tmp_path):
        code = main(
            ["serve-obs", "--rules", str(tmp_path / "nope.json"),
             "--for", "0.1"]
        )
        assert code == 2
        assert "serve-obs --rules" in capsys.readouterr().err


class TestTenantsCommand:
    @pytest.fixture(autouse=True)
    def _fresh_tenant_ledger(self, monkeypatch):
        from repro import obs

        monkeypatch.delenv(obs.JOURNAL_ENV_VAR, raising=False)
        previous = obs.set_tenant_ledger(obs.TenantLedger())
        yield
        obs.set_tenant_ledger(previous)

    def test_live_empty_state_prints_hint(self, capsys):
        assert main(["tenants"]) == 0
        out = capsys.readouterr().out
        assert "no attributed traffic yet" in out

    def test_run_with_tenant_feeds_the_table(self, capsys):
        assert (
            main(
                [
                    "run",
                    "SELECT a1 FROM t1000000_100 WHERE a1 < 500",
                    "--tenant",
                    "etl",
                ]
            )
            == 0
        )
        capsys.readouterr()
        assert main(["tenants"]) == 0
        out = capsys.readouterr().out
        assert "tenant" in out  # header row
        assert "etl" in out

    def test_json_output_is_ranked_and_deterministic(self, capsys):
        from repro import obs

        ledger = obs.get_tenant_ledger()
        ledger.record_estimate("adhoc", 9.0)
        ledger.record_estimate("etl", 2.0)
        assert main(["tenants", "--json"]) == 0
        first = capsys.readouterr().out
        assert main(["tenants", "--json"]) == 0
        second = capsys.readouterr().out
        assert first == second
        import json

        payload = json.loads(first)
        assert payload["by"] == "estimated_seconds"
        assert [t["tenant"] for t in payload["tenants"]] == ["adhoc", "etl"]

    def test_rank_by_alternate_key(self, capsys):
        from repro import obs

        ledger = obs.get_tenant_ledger()
        ledger.record_estimate("cheap", 1.0)
        ledger.record_actual("cheap", 9.0)
        ledger.record_estimate("costly", 99.0)
        ledger.record_actual("costly", 1.5)
        assert main(["tenants", "--by", "max_q_error", "--json"]) == 0
        import json

        payload = json.loads(capsys.readouterr().out)
        assert [t["tenant"] for t in payload["tenants"]] == ["cheap", "costly"]

    def test_tenants_from_journal_file(self, capsys, tmp_path):
        from repro import obs

        journal_path = tmp_path / "j.jsonl"
        journal = obs.EventJournal(journal_path)
        previous = obs.set_journal(journal)
        try:
            assert (
                main(
                    [
                        "run",
                        "SELECT a1 FROM t1000000_100 WHERE a1 < 700",
                        "--tenant",
                        "analytics",
                    ]
                )
                == 0
            )
            journal.close()
        finally:
            obs.set_journal(previous)
        capsys.readouterr()
        assert main(["tenants", "--journal", str(journal_path)]) == 0
        out = capsys.readouterr().out
        assert "analytics" in out

    def test_missing_journal_exits_2(self, capsys, tmp_path):
        code = main(["tenants", "--journal", str(tmp_path / "missing.jsonl")])
        assert code == 2
        assert "error: tenants:" in capsys.readouterr().err

    def test_demo_attributes_tenants(self, capsys):
        assert main(["demo"]) == 0
        out = capsys.readouterr().out
        assert "tenant" in out
        capsys.readouterr()
        assert main(["tenants"]) == 0
        out = capsys.readouterr().out
        assert "no attributed traffic yet" not in out


class TestSimulateCommand:
    @pytest.fixture(autouse=True)
    def _isolate_obs(self, restore_obs_plane):
        """The simulator swaps in fresh obs globals; restore after."""

    def test_steady_mini_run_exits_zero(self, capsys):
        code = main(["simulate", "--scenario", "steady", "--queries", "60"])
        assert code == 0
        out = capsys.readouterr().out
        assert "scenario steady" in out
        assert "final health:" in out
        assert "[ok  ] replay-consistent" in out

    def test_check_failure_exits_one(self, capsys):
        # 50 queries is far below the drift scenario's recovery timers,
        # so its loop assertions cannot be met.
        code = main(
            [
                "simulate",
                "--scenario",
                "table-growth-drift",
                "--queries",
                "50",
                "--check",
            ]
        )
        assert code == 1
        captured = capsys.readouterr()
        assert "[FAIL]" in captured.out
        assert "scenario check(s) failed" in captured.err

    def test_failed_checks_without_flag_still_exit_zero(self, capsys):
        code = main(
            ["simulate", "--scenario", "table-growth-drift", "--queries", "50"]
        )
        assert code == 0
        assert "[FAIL]" in capsys.readouterr().out

    def test_unknown_scenario_exits_two(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["simulate", "--scenario", "meteor-strike"])
        assert excinfo.value.code == 2
        assert "invalid choice" in capsys.readouterr().err

    def test_json_output_and_journal_artifact(self, capsys, tmp_path):
        import json

        journal = tmp_path / "journal.jsonl"
        code = main(
            [
                "simulate",
                "--scenario",
                "steady",
                "--queries",
                "60",
                "--check",
                "--json",
                "--journal",
                str(journal),
            ]
        )
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["scenario"] == "steady"
        assert payload["passed"] is True
        assert {c["name"] for c in payload["checks"]} >= {
            "no-errors",
            "replay-consistent",
        }
        assert payload["report"]["executed"] > 0
        assert journal.exists() and journal.stat().st_size > 0
