"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, build_sandbox, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_explain_requires_query(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["explain"])


class TestCommands:
    def test_corpus(self, capsys):
        assert main(["corpus"]) == 0
        out = capsys.readouterr().out
        assert "120 tables" in out
        assert "t1000000_250" in out

    def test_experiments(self, capsys):
        assert main(["experiments"]) == 0
        out = capsys.readouterr().out
        assert "bench_fig14_out_of_range.py" in out
        assert "Table 1" in out

    def test_demo(self, capsys):
        assert main(["demo"]) == 0
        out = capsys.readouterr().out
        assert "estimate" in out and "actual" in out
        assert out.count("s ") >= 3

    def test_explain(self, capsys):
        code = main(
            [
                "explain",
                "SELECT r.a1 FROM t8000000_100 r JOIN t100000_100 s "
                "ON r.a1 = s.a1",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "placement plan" in out
        assert "alternatives:" in out

    def test_run(self, capsys):
        code = main(["run", "SELECT SUM(a1) FROM t1000000_100 GROUP BY a20"])
        assert code == 0
        out = capsys.readouterr().out
        assert "total: estimated" in out

    def test_unknown_table_reports_error(self, capsys):
        code = main(["explain", "SELECT * FROM mystery_table WHERE a1 < 5"])
        assert code == 1
        assert "error:" in capsys.readouterr().err


class TestSandbox:
    def test_sandbox_with_spark(self):
        sphere = build_sandbox(with_spark=True)
        assert set(sphere.remote_system_names) == {"hive", "spark"}
