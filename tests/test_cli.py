"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, build_sandbox, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_explain_requires_query(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["explain"])


class TestCommands:
    def test_corpus(self, capsys):
        assert main(["corpus"]) == 0
        out = capsys.readouterr().out
        assert "120 tables" in out
        assert "t1000000_250" in out

    def test_experiments(self, capsys):
        assert main(["experiments"]) == 0
        out = capsys.readouterr().out
        assert "bench_fig14_out_of_range.py" in out
        assert "Table 1" in out

    def test_demo(self, capsys):
        assert main(["demo"]) == 0
        out = capsys.readouterr().out
        assert "estimate" in out and "actual" in out
        assert out.count("s ") >= 3

    def test_explain(self, capsys):
        code = main(
            [
                "explain",
                "SELECT r.a1 FROM t8000000_100 r JOIN t100000_100 s "
                "ON r.a1 = s.a1",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "placement plan" in out
        assert "alternatives:" in out

    def test_run(self, capsys):
        code = main(["run", "SELECT SUM(a1) FROM t1000000_100 GROUP BY a20"])
        assert code == 0
        out = capsys.readouterr().out
        assert "total: estimated" in out

    def test_unknown_table_reports_error(self, capsys):
        code = main(["explain", "SELECT * FROM mystery_table WHERE a1 < 5"])
        assert code == 1
        assert "error:" in capsys.readouterr().err


class TestSandbox:
    def test_sandbox_with_spark(self):
        sphere = build_sandbox(with_spark=True)
        assert set(sphere.remote_system_names) == {"hive", "spark"}


class TestObservabilityCommands:
    def test_stats_live(self, capsys):
        assert main(["stats"]) == 0
        out = capsys.readouterr().out
        assert "metrics registry" in out

    def test_stats_from_snapshot(self, capsys, tmp_path):
        from repro.obs import MetricsRegistry, exporters

        registry = MetricsRegistry()
        registry.counter("costing.estimate_plan.calls").inc(7)
        path = tmp_path / "run.metrics.json"
        exporters.write_json_snapshot(path, registry=registry)
        assert main(["stats", "--from", str(path)]) == 0
        out = capsys.readouterr().out
        assert "costing.estimate_plan.calls" in out
        assert "7" in out

    def test_stats_prometheus_format(self, capsys, tmp_path):
        from repro.obs import MetricsRegistry, exporters

        registry = MetricsRegistry()
        registry.counter("federation.runs").inc()
        path = tmp_path / "run.metrics.json"
        exporters.write_json_snapshot(path, registry=registry)
        assert main(["stats", "--from", str(path), "--format", "prom"]) == 0
        out = capsys.readouterr().out
        assert "# TYPE repro_federation_runs counter" in out
        assert "repro_federation_runs 1.0" in out

    def test_stats_rejects_non_snapshot_file(self, capsys, tmp_path):
        path = tmp_path / "junk.json"
        path.write_text("{}")
        assert main(["stats", "--from", str(path)]) == 2
        assert "not a metrics snapshot" in capsys.readouterr().err

    def test_stats_missing_snapshot_file_exits_2(self, capsys, tmp_path):
        assert main(["stats", "--from", str(tmp_path / "absent.json")]) == 2
        err = capsys.readouterr().err
        assert "error: stats --from" in err

    def test_stats_corrupt_snapshot_file_exits_2(self, capsys, tmp_path):
        path = tmp_path / "corrupt.json"
        path.write_text("{not json at all")
        assert main(["stats", "--from", str(path)]) == 2
        assert "error: stats --from" in capsys.readouterr().err

    def test_trace_prints_span_tree(self, capsys):
        from repro import obs

        try:
            assert main(["trace"]) == 0
        finally:
            obs.get_tracer().disable()
            obs.get_tracer().clear()
        out = capsys.readouterr().out
        assert "repro.trace" in out
        assert "federation.run" in out
        assert "costing.estimate_batch" in out
        assert "approach=sub_op" in out
        assert "remedy=off" in out
        assert "subop_shares=" in out
        assert "total: estimated" in out

    def test_trace_exports_json(self, capsys, tmp_path):
        import json

        from repro import obs

        path = tmp_path / "trace.json"
        try:
            code = main(
                [
                    "trace",
                    "SELECT SUM(a1) FROM t1000000_100 GROUP BY a20",
                    "--json",
                    str(path),
                ]
            )
        finally:
            obs.get_tracer().disable()
            obs.get_tracer().clear()
        assert code == 0
        data = json.loads(path.read_text())
        assert data and data[0]["name"] == "repro.trace"

    def test_profile_prints_cost_breakdown(self, capsys, tmp_path):
        from repro import obs

        html_path = tmp_path / "profile.html"
        try:
            code = main(["profile", "--html", str(html_path)])
        finally:
            obs.get_tracer().disable()
            obs.get_tracer().clear()
        assert code == 0
        out = capsys.readouterr().out
        assert "placement steps (estimate vs actual)" in out
        assert "operator estimates" in out
        assert "sub-operator breakdown" in out
        assert "estimation overhead (wall clock)" in out
        html = html_path.read_text()
        assert html.startswith("<!doctype html>")
        assert "Query cost profile" in html

    def test_profile_restores_disabled_tracer(self):
        from repro import obs

        tracer = obs.get_tracer()
        assert not tracer.enabled
        try:
            assert main(["profile"]) == 0
        finally:
            tracer.disable()
            tracer.clear()
        assert not tracer.enabled

    def test_report_replays_journal(self, capsys, tmp_path):
        from repro.obs import EventJournal

        journal = EventJournal(tmp_path / "journal.jsonl")
        journal.append(
            "estimate",
            system="hive",
            operator="join",
            approach="sub_op",
            seconds=10.0,
            remedy_active=False,
        )
        journal.append(
            "actual",
            system="hive",
            operator="join",
            approach="sub_op",
            estimated_seconds=10.0,
            actual_seconds=12.0,
            remedy_active=False,
            drift_flagged=False,
        )
        journal.close()
        code = main(["report", "--journal", str(journal.path)])
        assert code == 0
        out = capsys.readouterr().out
        assert "events applied: 2" in out
        assert "hive/join" in out
        assert "costing.estimate_plan.calls" in out

    def test_report_without_journal_exits_2(self, capsys, monkeypatch):
        from repro import obs

        monkeypatch.delenv(obs.JOURNAL_ENV_VAR, raising=False)
        assert main(["report"]) == 2
        assert "no journal given" in capsys.readouterr().err

    def test_report_missing_journal_file_exits_2(self, capsys, tmp_path):
        assert main(["report", "--journal", str(tmp_path / "nope.jsonl")]) == 2
        assert "not found" in capsys.readouterr().err

    def test_verbose_flag_enables_debug_logging(self, capsys):
        import logging

        assert main(["-v", "corpus"]) == 0
        assert logging.getLogger("repro").level == logging.DEBUG
        # A later non-verbose invocation retunes the level back down.
        assert main(["corpus"]) == 0
        assert logging.getLogger("repro").level == logging.WARNING
