"""Flight recorder: completion-fed rings, incident bundles, rotation
atomicity in the journal, deterministic replay, and thread safety."""

import json
import os
import subprocess
import sys
import threading

import pytest

import repro
from repro import obs
from repro.obs import context as ctx
from repro.obs import flight
from repro.obs.journal import EventJournal, JournalEvent
from repro.obs.tail import QueryOutcome, TailDecision, TailSampler


@pytest.fixture(autouse=True)
def _fresh_obs_state():
    """Isolate ids, registry, samplers, recorder, and tracer per test."""
    obs.reset_query_ids()
    previous_registry = obs.set_registry(obs.MetricsRegistry())
    previous_sampler = obs.set_sampler(ctx.HeadSampler(rate=1.0))
    previous_tail = obs.set_tail_sampler(None)
    previous_recorder = obs.set_flight_recorder(None)
    tracer = obs.get_tracer()
    was_enabled = tracer.enabled
    tracer.clear()
    yield
    tracer.enabled = was_enabled
    tracer.clear()
    obs.set_flight_recorder(previous_recorder)
    obs.set_tail_sampler(previous_tail)
    obs.set_sampler(previous_sampler)
    obs.set_registry(previous_registry)
    obs.reset_query_ids()


KEEP = TailDecision(keep=True, reasons=("q_error",))
DROP = TailDecision(keep=False)


def outcome(index=1, **overrides):
    defaults = dict(
        query_id=f"q-{index:06d}",
        tenant="analytics",
        query=f"SELECT {index}",
        wall_seconds=0.5,
        max_q_error=1.5,
        estimated_seconds=2.0,
    )
    defaults.update(overrides)
    return QueryOutcome(**defaults)


class TestFlightRecord:
    def test_payload_round_trip(self):
        record = flight.FlightRecord(
            query_id="q-000001",
            tenant="etl",
            query="SELECT 1",
            wall_seconds=1.5,
            max_q_error=3.0,
            estimated_seconds=2.5,
            error="ValueError",
            kept=True,
            reasons=("latency", "q_error"),
            trace=({"name": "root", "children": []},),
        )
        rebuilt = flight.FlightRecord.from_payload(record.to_payload())
        assert rebuilt.to_payload() == record.to_payload()


class TestFlightRecorder:
    def test_validates_ring_sizes(self):
        with pytest.raises(ValueError):
            obs.FlightRecorder(max_records=0)
        with pytest.raises(ValueError):
            obs.FlightRecorder(max_incidents=0)

    def test_record_ring_keeps_the_newest(self):
        recorder = obs.FlightRecorder(max_records=3)
        for index in range(5):
            recorder.record(outcome(index), DROP)
        records = recorder.records()
        assert [r.query_id for r in records] == [
            "q-000002",
            "q-000003",
            "q-000004",
        ]
        registry = obs.get_registry()
        assert registry.counter("obs.flight.records").value == 5.0
        assert registry.counter("obs.flight.evicted").value == 2.0

    def test_kept_query_carries_its_committed_trace(self):
        tracer = obs.get_tracer()
        tracer.enable()
        obs.set_tail_sampler(TailSampler(max_q_error=2.0))
        recorder = obs.FlightRecorder()
        obs.set_flight_recorder(recorder)
        with obs.query_context(query="SELECT 1", sampled=False):
            with tracer.span("costing.estimate"):
                pass
            obs.note_query_q_error(9.0)
        (record,) = recorder.records()
        assert record.kept is True
        assert record.reasons == ("q_error",)
        assert [root["name"] for root in record.trace] == ["costing.estimate"]

    def test_dropped_query_recorded_without_trace(self):
        recorder = obs.FlightRecorder()
        recorder.record(outcome(1), DROP)
        (record,) = recorder.records()
        assert record.kept is False
        assert record.trace == ()

    def test_event_ring_skips_incident_events(self):
        recorder = obs.FlightRecorder(max_events=2)
        for seq, kind in enumerate(
            ("estimate", "incident", "incident_record", "actual", "alert")
        ):
            recorder.on_journal_event(
                JournalEvent(seq=seq, type=kind, payload={"n": seq})
            )
        events = recorder.events()
        assert [event["type"] for event in events] == ["actual", "alert"]

    def test_snapshot_and_reset(self):
        recorder = obs.FlightRecorder()
        recorder.record(outcome(1), DROP)
        recorder.trigger_incident("manual")
        snapshot = recorder.snapshot()
        assert snapshot["v"] == flight.FLIGHT_SCHEMA_VERSION
        assert len(snapshot["records"]) == 1
        assert snapshot["incidents"] == ["incident-000001-manual"]
        recorder.reset()
        assert recorder.records() == ()
        assert recorder.incidents() == ()


class TestTriggerIncident:
    def test_bundle_names_are_sequential_and_slugged(self):
        recorder = obs.FlightRecorder()
        first = recorder.trigger_incident("Drift Alarm!")
        second = recorder.trigger_incident("alert")
        assert first.name == "incident-000001-drift-alarm"
        assert second.name == "incident-000002-alert"
        assert obs.get_registry().counter("obs.flight.incidents").value == 2.0

    def test_trigger_freezes_rings_and_carries_info(self):
        recorder = obs.FlightRecorder()
        recorder.record(outcome(1, max_q_error=9.0), KEEP)
        recorder.on_journal_event(
            JournalEvent(seq=1, type="estimate", payload={"system": "hive"})
        )
        bundle = recorder.trigger_incident("drift", system="hive")
        assert bundle.trigger == {"kind": "drift", "system": "hive"}
        assert bundle.implicated_queries() == ("q-000001",)
        assert bundle.implicated_systems() == ("hive",)
        # Later traffic does not mutate the frozen bundle.
        recorder.record(outcome(2), DROP)
        assert len(bundle.records) == 1

    def test_incident_ring_bounded(self):
        recorder = obs.FlightRecorder(max_incidents=2)
        for _ in range(4):
            recorder.trigger_incident("manual")
        names = [bundle.name for bundle in recorder.incidents()]
        assert names == [
            "incident-000003-manual",
            "incident-000004-manual",
        ]
        assert recorder.find_incident("incident-000004-manual") is not None
        assert recorder.find_incident("incident-000001-manual") is None

    def test_module_level_trigger_is_noop_without_recorder(self):
        assert obs.trigger_incident("drift", system="hive") is None

    def test_env_var_installs_dumping_recorder(self, tmp_path, monkeypatch):
        monkeypatch.setenv(flight.FLIGHT_DIR_ENV_VAR, str(tmp_path))
        obs.set_flight_recorder(None)
        recorder = obs.get_flight_recorder()
        assert recorder is not None
        assert recorder.directory == str(tmp_path)
        recorder.trigger_incident("manual")
        assert (tmp_path / "incident-000001-manual.jsonl").exists()
        assert (tmp_path / "incident-000001-manual.html").exists()


class TestBundleSerialization:
    def _bundle(self, tmp_path):
        recorder = obs.FlightRecorder(directory=tmp_path)
        recorder.record(outcome(1, tenant="a<script>alert(1)</script>"), KEEP)
        recorder.record(outcome(2, error="TimeoutError"), DROP)
        recorder.on_journal_event(
            JournalEvent(seq=7, type="actual", payload={"system": "spark"})
        )
        return recorder.trigger_incident("alert", alerts=[{"rule": "slo-q-error"}])

    def test_load_bundle_reproduces_the_file_byte_for_byte(self, tmp_path):
        bundle = self._bundle(tmp_path)
        path = tmp_path / f"{bundle.name}.jsonl"
        loaded = flight.load_bundle(path)
        assert loaded.to_jsonl() == path.read_text(encoding="utf-8")
        assert loaded.to_dict() == bundle.to_dict()

    def test_bundle_replays_bit_identically_in_fresh_process(self, tmp_path):
        bundle = self._bundle(tmp_path)
        path = tmp_path / f"{bundle.name}.jsonl"
        env = dict(os.environ)
        env["PYTHONPATH"] = os.path.dirname(os.path.dirname(repro.__file__))
        result = subprocess.run(
            [
                sys.executable,
                "-c",
                "import sys\n"
                "from repro.obs import flight\n"
                "sys.stdout.write(flight.load_bundle(sys.argv[1]).to_jsonl())\n",
                str(path),
            ],
            capture_output=True,
            text=True,
            env=env,
        )
        assert result.returncode == 0, result.stderr
        assert result.stdout == path.read_text(encoding="utf-8")

    def test_jsonl_lines_are_canonical_json(self, tmp_path):
        bundle = self._bundle(tmp_path)
        for line in bundle.to_jsonl().splitlines():
            entry = json.loads(line)
            assert line == json.dumps(
                entry, sort_keys=True, separators=(",", ":")
            )

    def test_html_report_names_queries_and_escapes(self, tmp_path):
        bundle = self._bundle(tmp_path)
        html = bundle.to_html()
        assert "q-000001" in html
        assert "TimeoutError" in html
        assert "<script>alert(1)</script>" not in html
        assert "&lt;script&gt;" in html

    def test_load_bundle_rejects_garbage(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"kind":"mystery"}\n', encoding="utf-8")
        with pytest.raises(ValueError):
            flight.load_bundle(path)
        path.write_text('{"kind":"record"}\n', encoding="utf-8")
        with pytest.raises(ValueError):
            flight.load_bundle(path)


class TestJournalReplay:
    def test_incidents_rebuild_from_journal_events(self, tmp_path):
        journal = EventJournal(tmp_path / "j.jsonl")
        recorder = obs.FlightRecorder()
        recorder.record(outcome(1, max_q_error=9.0), KEEP)
        recorder.record(outcome(2), DROP)
        bundle = recorder.trigger_incident(
            "drift", system="hive", journal=journal
        )
        journal.close()
        (rebuilt,) = flight.incidents_from_events(tmp_path / "j.jsonl")
        assert rebuilt.name == bundle.name
        assert rebuilt.trigger == bundle.trigger
        assert rebuilt.records == bundle.records
        assert rebuilt.to_jsonl() == bundle.to_jsonl()

    def test_rotation_never_splits_an_incident_bundle(self, tmp_path):
        """Satellite guarantee: the bundle group is rotation-atomic, and
        replay across a rotated journal reconstructs the whole incident."""
        path = tmp_path / "j.jsonl"
        journal = EventJournal(path, max_bytes=4096, max_files=4)
        recorder = obs.FlightRecorder()
        # Fill the active file close to the rotation boundary, feeding
        # the recorder's event ring along the way.
        for index in range(40):
            event = journal.append(
                "estimate", system="hive", seconds=1.0, filler="x" * 64
            )
            recorder.on_journal_event(event)
        for index in range(8):
            recorder.record(outcome(index, max_q_error=5.0), KEEP)
        bundle = recorder.trigger_incident(
            "alert", alerts=[{"rule": "slo-q-error"}], journal=journal
        )
        journal.close()
        # The bundle's lines all live in exactly one physical file.
        files_with_bundle = set()
        generations = [str(path)] + [f"{path}.{i}" for i in range(1, 5)]
        for generation in generations:
            if not os.path.exists(generation):
                continue
            with open(generation, "r", encoding="utf-8") as fh:
                for line in fh:
                    entry = json.loads(line)
                    if entry.get("type") in ("incident", "incident_record"):
                        files_with_bundle.add(generation)
        assert len(files_with_bundle) == 1
        assert os.path.exists(f"{path}.1")  # rotation actually happened
        # Replaying the rotated journal rebuilds the identical bundle.
        (rebuilt,) = flight.incidents_from_events(path)
        assert rebuilt.to_jsonl() == bundle.to_jsonl()


class TestCompletionIntegration:
    def test_completion_hook_feeds_installed_recorder(self):
        recorder = obs.FlightRecorder()
        obs.set_flight_recorder(recorder)
        with obs.query_context(query="SELECT 1", tenant="etl"):
            obs.note_estimated_seconds(3.0)
        (record,) = recorder.records()
        assert record.query == "SELECT 1"
        assert record.tenant == "etl"
        assert record.estimated_seconds == 3.0
        assert record.wall_seconds > 0.0

    def test_error_exit_recorded(self):
        recorder = obs.FlightRecorder()
        obs.set_flight_recorder(recorder)
        with pytest.raises(RuntimeError):
            with obs.query_context(query="SELECT 1"):
                raise RuntimeError("boom")
        (record,) = recorder.records()
        assert record.error == "RuntimeError"


class TestThreadSafety:
    """Concurrent completions share one recorder ring while another
    thread freezes incidents; the lock must keep ring bounds and the
    record/incident accounting coherent (mirrors the estimate-cache
    stress tests)."""

    def test_concurrent_records_and_triggers(self):
        recorder = obs.FlightRecorder(
            max_records=64, max_events=32, max_incidents=4
        )
        sampler = TailSampler(latency_seconds=1.0, max_q_error=2.0)
        errors = []
        barrier = threading.Barrier(6)

        def worker(seed):
            try:
                barrier.wait()
                for step in range(400):
                    breach = (seed * 7 + step) % 5 == 0
                    completed = QueryOutcome(
                        query_id=f"q-{seed}-{step}",
                        tenant="stress",
                        wall_seconds=2.0 if breach else 0.001,
                        max_q_error=1.0,
                    )
                    recorder.record(completed, sampler.decide(completed))
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)

        def trigger():
            try:
                barrier.wait()
                for _ in range(25):
                    recorder.trigger_incident("manual")
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)

        threads = [
            threading.Thread(target=worker, args=(seed,)) for seed in range(5)
        ]
        threads.append(threading.Thread(target=trigger))
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert errors == []
        assert len(recorder.records()) <= 64
        assert len(recorder.incidents()) <= 4
        registry = obs.get_registry()
        assert registry.counter("obs.flight.records").value == 5 * 400
        assert registry.counter("obs.flight.incidents").value == 25.0
        kept = registry.counter("obs.tail.kept").value
        dropped = registry.counter("obs.tail.dropped").value
        assert kept + dropped == 5 * 400
        assert kept == 5 * 80  # every 5th outcome breached the latency SLO
        # Each frozen bundle is internally consistent.
        for bundle in recorder.incidents():
            assert bundle.header()["records"] == len(bundle.records)
            assert bundle.name.startswith("incident-")


class TestProfileInBundles:
    def _stack_sampler(self):
        from repro.obs.journal import NOOP_JOURNAL
        from repro.obs.sampling import StackSampler

        sampler = StackSampler(
            hz=100.0, window_seconds=10.0, journal=NOOP_JOURNAL
        )
        sampler.record_sample(0.1, "serve", ("repro.serve.loop",))
        sampler.record_sample(0.2, "serve", ("repro.serve.loop",))
        return sampler

    def test_trigger_freezes_last_profile_window(self):
        from repro.obs.sampling import set_stack_sampler

        previous = set_stack_sampler(self._stack_sampler())
        try:
            recorder = obs.FlightRecorder()
            bundle = recorder.trigger_incident("drift")
        finally:
            set_stack_sampler(previous)
        assert bundle.profile["samples"] == 2
        assert bundle.profile["stacks"] == {"[serve];repro.serve.loop": 2}
        assert bundle.profile["profile_v"] == 1

    def test_unprofiled_bundle_has_no_profile_line(self, tmp_path):
        recorder = obs.FlightRecorder(directory=tmp_path)
        bundle = recorder.trigger_incident("manual")
        assert bundle.profile == {}
        text = (tmp_path / f"{bundle.name}.jsonl").read_text()
        assert '"kind":"profile"' not in text
        assert "profile" not in bundle.to_jsonl().splitlines()[0]  # header

    def test_profiled_bundle_round_trips_byte_for_byte(self, tmp_path):
        from repro.obs.sampling import set_stack_sampler

        previous = set_stack_sampler(self._stack_sampler())
        try:
            recorder = obs.FlightRecorder(directory=tmp_path)
            recorder.record(outcome(1), KEEP)
            bundle = recorder.trigger_incident("alert")
        finally:
            set_stack_sampler(previous)
        path = tmp_path / f"{bundle.name}.jsonl"
        loaded = flight.load_bundle(path)
        assert loaded.profile == bundle.profile
        assert loaded.to_jsonl() == path.read_text(encoding="utf-8")
        html = flight.render_bundle_html(loaded)
        assert "Profile window at trigger" in html
        assert "repro.serve.loop" in html

    def test_incidents_from_events_restore_the_profile(self, tmp_path):
        from repro.obs.sampling import set_stack_sampler

        journal = EventJournal(tmp_path / "j.jsonl")
        previous_journal = obs.set_journal(journal)
        previous = set_stack_sampler(self._stack_sampler())
        try:
            recorder = obs.FlightRecorder()
            bundle = recorder.trigger_incident("drift")
        finally:
            set_stack_sampler(previous)
            obs.set_journal(previous_journal)
            journal.close()
        rebuilt = flight.incidents_from_events(journal.read().events)
        assert len(rebuilt) == 1
        assert rebuilt[0].profile == bundle.profile
        assert rebuilt[0].to_jsonl() == bundle.to_jsonl()

    def test_html_report_omits_section_without_profile(self):
        recorder = obs.FlightRecorder()
        bundle = recorder.trigger_incident("manual")
        assert "Profile window at trigger" not in flight.render_bundle_html(
            bundle
        )
