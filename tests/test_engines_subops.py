"""Tests for the ground-truth sub-operator kernels."""

import pytest

from repro.engines.subops import (
    KernelSet,
    SUBOP_NOTATION,
    SubOp,
    SubOpKernel,
    TwoRegimeKernel,
    hive_kernels,
    spark_kernels,
)
from repro.exceptions import ConfigurationError

GIB = 1024**3


class TestSubOpEnum:
    def test_basic_categorization(self):
        assert SubOp.READ_DFS.is_basic
        assert SubOp.BROADCAST.is_basic
        assert not SubOp.SORT.is_basic
        assert not SubOp.HASH_BUILD.is_basic

    def test_notation_covers_all(self):
        assert set(SUBOP_NOTATION) == set(SubOp)
        assert SUBOP_NOTATION[SubOp.READ_DFS] == "rD"
        assert SUBOP_NOTATION[SubOp.HASH_BUILD] == "hI"


class TestSubOpKernel:
    def test_linear_cost(self):
        kernel = SubOpKernel(slope=0.01, intercept=1.0)
        assert kernel.per_record_us(100) == pytest.approx(2.0)

    def test_total_seconds(self):
        kernel = SubOpKernel(slope=0.0, intercept=1.0)
        assert kernel.total_seconds(1_000_000, 100) == pytest.approx(1.0)

    def test_negative_intercept_clamped_to_zero_cost(self):
        kernel = SubOpKernel(slope=0.1, intercept=-100.0)
        assert kernel.per_record_us(10) == 0.0

    def test_rejects_negative_slope(self):
        with pytest.raises(ConfigurationError):
            SubOpKernel(slope=-0.1, intercept=0.0)

    def test_rejects_bad_record_size(self):
        with pytest.raises(ConfigurationError):
            SubOpKernel(slope=0.1, intercept=0.0).per_record_us(0)

    def test_zero_records_zero_seconds(self):
        kernel = SubOpKernel(slope=0.1, intercept=1.0)
        assert kernel.total_seconds(0, 100) == 0.0


class TestTwoRegimeKernel:
    @pytest.fixture()
    def kernel(self):
        return TwoRegimeKernel(
            in_memory=SubOpKernel(slope=0.01, intercept=1.0),
            spilling=SubOpKernel(slope=0.1, intercept=0.0),
            memory_budget=GIB,
        )

    def test_regime_switch(self, kernel):
        fits = kernel.per_record_us(100, workspace_bytes=GIB)
        spills = kernel.per_record_us(100, workspace_bytes=GIB + 1)
        assert fits == pytest.approx(2.0)
        assert spills == pytest.approx(10.0)
        assert spills > fits

    def test_fits_predicate(self, kernel):
        assert kernel.fits(GIB)
        assert not kernel.fits(GIB + 1)

    def test_rejects_bad_budget(self):
        with pytest.raises(ConfigurationError):
            TwoRegimeKernel(
                in_memory=SubOpKernel(0.0, 1.0),
                spilling=SubOpKernel(0.0, 1.0),
                memory_budget=0,
            )


class TestKernelSets:
    def test_hive_matches_paper_fits(self):
        kernels = hive_kernels(per_task_memory=2 * GIB)
        read = kernels.kernel(SubOp.READ_DFS)
        assert read.slope == pytest.approx(0.0041)
        assert read.intercept == pytest.approx(0.6323)
        write = kernels.kernel(SubOp.WRITE_DFS)
        assert write.slope == pytest.approx(0.0314)

    def test_hash_build_via_property(self):
        kernels = hive_kernels(per_task_memory=GIB)
        with pytest.raises(ConfigurationError):
            kernels.kernel(SubOp.HASH_BUILD)
        assert kernels.hash_build.memory_budget == GIB

    def test_seconds_dispatch(self):
        kernels = hive_kernels(per_task_memory=GIB)
        assert kernels.seconds(SubOp.READ_DFS, 0, 100) == 0.0
        assert kernels.seconds(SubOp.READ_DFS, 1000, 100) > 0
        in_mem = kernels.seconds(SubOp.HASH_BUILD, 1000, 100, workspace_bytes=10)
        spill = kernels.seconds(
            SubOp.HASH_BUILD, 1000, 1000, workspace_bytes=2 * GIB
        )
        assert spill > in_mem

    def test_spark_cheaper_shuffle_than_hive(self):
        hive = hive_kernels(per_task_memory=GIB)
        spark = spark_kernels(per_task_memory=GIB)
        assert (
            spark.kernel(SubOp.SHUFFLE).per_record_us(500)
            < hive.kernel(SubOp.SHUFFLE).per_record_us(500)
        )

    def test_missing_kernel_rejected(self):
        with pytest.raises(ConfigurationError):
            KernelSet(
                kernels={SubOp.READ_DFS: SubOpKernel(0.0, 1.0)},
                hash_build=hive_kernels(GIB).hash_build,
            )
