"""End-to-end integration scenarios across the whole stack.

These tests run the paper's full pipeline at reduced scale: train both
costing approaches against the simulated Hive system, estimate unseen
queries, exercise the out-of-range remedy/tuning loop, and drive the
federation facade.
"""

import numpy as np
import pytest

from repro.core import (
    ClusterInfo,
    CostEstimationModule,
    CostingApproach,
    LogicalOpModel,
    OperatorKind,
    RemoteSystemProfile,
    SubOpTrainer,
)
from repro.data import Catalog, build_paper_corpus
from repro.engines import HiveEngine
from repro.master.federation import IntelliSphere
from repro.ml.metrics import r_squared, rmse_percent
from repro.workloads import AggregationWorkload, JoinWorkload

COUNTS = (10_000, 100_000, 1_000_000, 4_000_000, 8_000_000)
SIZES = (40, 100, 250, 1000)


@pytest.fixture(scope="module")
def stack():
    corpus = build_paper_corpus(row_counts=COUNTS, row_sizes=SIZES)
    engine = HiveEngine(seed=11)  # noisy, as in reality
    catalog = Catalog()
    for spec in corpus:
        engine.load_table(spec)
        catalog.register(spec)
    info = ClusterInfo(
        num_data_nodes=3, cores_per_node=2, dfs_block_size=128 * 1024 * 1024
    )
    module = CostEstimationModule()
    module.register_system(
        engine, RemoteSystemProfile(name="hive", cluster=info)
    )
    return corpus, engine, catalog, module


class TestSubOpPipeline:
    def test_join_estimates_track_actuals(self, stack):
        corpus, engine, catalog, module = stack
        module.train_sub_op("hive")
        workload = JoinWorkload(
            corpus, row_counts=COUNTS[:4], row_sizes=(100, 1000), max_queries=24
        )
        estimates, actuals, predicted, chosen = [], [], [], []
        for query in workload.training_queries(catalog):
            estimate = module.estimate_plan("hive", query.plan, catalog)
            result = engine.execute(query.plan)
            estimates.append(estimate.seconds)
            actuals.append(result.elapsed_seconds)
            predicted.append(estimate.detail.predicted_algorithm)
            chosen.append(result.algorithm)
        estimates, actuals = np.asarray(estimates), np.asarray(actuals)
        assert r_squared(actuals, estimates) > 0.9
        # Slight overestimation trend (Fig. 13(g)).
        assert 1.0 <= float(np.mean(estimates / actuals)) < 1.25
        # Algorithm prediction via applicability rules is near-perfect.
        matches = sum(p == c for p, c in zip(predicted, chosen))
        assert matches >= len(predicted) - 2


class TestLogicalOpPipeline:
    def test_aggregation_model_generalizes(self, stack):
        corpus, engine, catalog, module = stack
        workload = AggregationWorkload(corpus, max_queries=240)
        queries = workload.training_queries(catalog)
        train, held_out = queries[:200], queries[200:]
        module.train_logical_op(
            "hive",
            OperatorKind.AGGREGATE,
            train,
            model=LogicalOpModel(
                OperatorKind.AGGREGATE,
                search_topology=False,
                nn_iterations=6000,
                seed=0,
            ),
        )
        module.profile("hive").approach = CostingApproach.LOGICAL_OP
        module._systems["hive"].estimator = None

        estimates, actuals = [], []
        for query in held_out:
            estimate = module.estimate_plan("hive", query.plan, catalog)
            actuals.append(engine.execute(query.plan).elapsed_seconds)
            estimates.append(estimate.seconds)
        error = rmse_percent(np.asarray(actuals), np.asarray(estimates))
        assert error < 40.0

    def test_training_cost_dwarfs_subop_training(self, stack):
        """§4/§7: at paper scale the logical-op training workload costs
        the remote system an order of magnitude more time than the
        sub-op measurement protocol."""
        corpus, engine, catalog, module = stack
        subop_seconds = module.train_sub_op("hive").remote_training_seconds
        workload = AggregationWorkload(corpus, max_queries=1000)
        report = module.train_logical_op(
            "hive",
            OperatorKind.AGGREGATE,
            workload.training_queries(catalog),
            model=LogicalOpModel(
                OperatorKind.AGGREGATE,
                search_topology=False,
                nn_iterations=200,
                seed=0,
            ),
        )
        assert report.remote_training_seconds > 5 * subop_seconds


class TestOutOfRangeLoop:
    def test_remedy_and_tuning_improve_oor_estimates(self, stack):
        corpus, engine, catalog, module = stack
        # Train on joins up to 1M rows only.
        workload = JoinWorkload(
            corpus,
            row_counts=(10_000, 100_000, 1_000_000),
            row_sizes=(100, 1000),
            max_queries=150,
        )
        model = LogicalOpModel(
            OperatorKind.JOIN, search_topology=False, nn_iterations=6000, seed=0
        )
        module.train_logical_op(
            "hive", OperatorKind.JOIN, workload.training_queries(catalog), model=model
        )

        # Out-of-range queries: the big side jumps to 8M rows while the
        # small side stays within the trained range, keeping the engine's
        # algorithm regime continuous with the training data (as in the
        # paper's Fig. 14 setup, where record sizes stay in range).
        from repro.workloads import OutOfRangeWorkload

        oor = OutOfRangeWorkload(
            corpus,
            big_rows=8_000_000,
            small_rows=(100_000,),
            row_sizes=(100, 1000),
            selectivities=(1.0, 0.5, 0.25),
        )
        queries = oor.training_queries(catalog)
        actuals = np.asarray(
            [engine.execute(q.plan).elapsed_seconds for q in queries]
        )
        nn_only = np.asarray(
            [model.estimate_nn_only(q.features) for q in queries]
        )
        remedied = np.asarray([model.estimate(q.features).seconds for q in queries])

        nn_error = rmse_percent(actuals, nn_only)
        remedy_error = rmse_percent(actuals, remedied)
        assert remedy_error < nn_error  # Fig. 14: remedy beats raw NN

        # Offline tuning: log 70%, tune, re-test the rest (§7).
        split = int(0.7 * len(queries))
        for query, actual in zip(queries[:split], actuals[:split]):
            estimate = model.estimate(query.features)
            model.record_actual(estimate, actual)
        model.run_offline_tuning()
        tuned = np.asarray(
            [model.estimate(q.features).seconds for q in queries[split:]]
        )
        tuned_error = rmse_percent(actuals[split:], tuned)
        pre_tuning_error = rmse_percent(actuals[split:], remedied[split:])
        assert tuned_error < pre_tuning_error


class TestFederationEndToEnd:
    def test_full_query_lifecycle(self):
        sphere = IntelliSphere(seed=0)
        hive = HiveEngine(seed=0, noise_sigma=0.0)
        info = ClusterInfo(
            num_data_nodes=3, cores_per_node=2, dfs_block_size=128 * 1024 * 1024
        )
        sphere.add_remote_system(
            hive, RemoteSystemProfile(name="hive", cluster=info)
        )
        for spec in build_paper_corpus(
            row_counts=(10_000, 1_000_000, 8_000_000), row_sizes=(40, 100)
        ):
            sphere.add_table(spec)
        sphere.costing.train_sub_op("hive")

        result = sphere.run(
            "SELECT SUM(a1) FROM t8000000_100 r JOIN t1000000_100 s "
            "ON r.a1 = s.a1 GROUP BY a5"
        )
        assert result.observed_seconds > 0
        assert result.placement.best.steps
        assert result.estimated_seconds == pytest.approx(
            result.observed_seconds, rel=0.5
        )


class TestSparkSubOpPipeline:
    def test_spark_estimates_track_actuals(self):
        """The §1 claim that extensions to other systems 'follow the same
        methodology': the identical trainer + spark formulas calibrate a
        Spark system."""
        from repro.engines import SparkEngine

        corpus = build_paper_corpus(
            row_counts=(100_000, 1_000_000, 4_000_000), row_sizes=(100, 1000)
        )
        engine = SparkEngine(seed=13)
        catalog = Catalog()
        for spec in corpus:
            engine.load_table(spec)
            catalog.register(spec)
        info = ClusterInfo(
            num_data_nodes=3, cores_per_node=2, dfs_block_size=128 * 1024 * 1024
        )
        profile = RemoteSystemProfile(name="spark", cluster=info)
        profile.costing.join_family = "spark"
        module = CostEstimationModule()
        module.register_system(engine, profile)
        module.train_sub_op("spark")

        workload = JoinWorkload(corpus, row_sizes=(100, 1000), max_queries=16)
        estimates, actuals, matches = [], [], 0
        for query in workload.training_queries(catalog):
            estimate = module.estimate_plan("spark", query.plan, catalog)
            result = engine.execute(query.plan)
            estimates.append(estimate.seconds)
            actuals.append(result.elapsed_seconds)
            matches += estimate.detail.predicted_algorithm == result.algorithm
        assert rmse_percent(np.asarray(actuals), np.asarray(estimates)) < 30
        assert matches >= len(estimates) - 2
