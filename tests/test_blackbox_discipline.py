"""Architectural tests: the costing module must not peek at engine truth.

The paper's premise is that remote systems are learned through their
observable surface (executed queries and, for openbox systems, primitive
measurement queries plus profile facts).  These tests enforce that the
:mod:`repro.core` source never references the hidden kernel constructors
or engine tuning internals.
"""

from __future__ import annotations

import pathlib
import re

import repro.core

CORE_DIR = pathlib.Path(repro.core.__file__).parent

#: Engine internals the costing code must never touch.
FORBIDDEN_PATTERNS = (
    r"hive_kernels",
    r"spark_kernels",
    r"KernelSet",
    r"TwoRegimeKernel",
    r"EngineTuning",
    r"ExecutionEnv",  # DfsEngine's truth-side task math
    r"overlap_factor",
    r"job_startup",
    r"wave_startup",
)

#: The only engine symbols the core may import: the observable surface.
ALLOWED_ENGINE_IMPORTS = {
    "PrimitiveKind",
    "PrimitiveQuery",
    "RemoteSystem",
    "SubOp",
}


def core_sources():
    for path in sorted(CORE_DIR.glob("*.py")):
        yield path, path.read_text()


class TestBlackboxDiscipline:
    def test_no_forbidden_engine_internals(self):
        for path, source in core_sources():
            for pattern in FORBIDDEN_PATTERNS:
                assert not re.search(pattern, source), (
                    f"{path.name} references engine internal {pattern!r}: "
                    "the costing module must learn from observations only"
                )

    def test_engine_imports_limited_to_observable_surface(self):
        import_re = re.compile(
            r"from repro\.engines[.\w]* import (?:\(([^)]*)\)|([^\n]*))",
            re.DOTALL,
        )
        for path, source in core_sources():
            for match in import_re.finditer(source):
                body = match.group(1) or match.group(2) or ""
                names = {
                    n.strip()
                    for n in body.replace("\n", ",").split(",")
                    if n.strip()
                }
                unexpected = names - ALLOWED_ENGINE_IMPORTS
                assert not unexpected, (
                    f"{path.name} imports engine internals {unexpected}; "
                    f"allowed surface is {ALLOWED_ENGINE_IMPORTS}"
                )

    def test_result_breakdown_not_consumed(self):
        """QueryResult.breakdown/algorithm are diagnostics; estimation code
        must not read them."""
        for path, source in core_sources():
            assert ".breakdown" not in source, path.name
            assert "result.algorithm" not in source, path.name
