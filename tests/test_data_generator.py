"""Tests for the Fig. 10 synthetic corpus generator."""

import pytest

from repro.data.generator import (
    PAPER_ROW_COUNTS,
    PAPER_ROW_SIZES,
    build_paper_corpus,
    materialize_rows,
    table_name,
)
from repro.data.schema import paper_schema
from repro.exceptions import ConfigurationError


class TestCorpusShape:
    def test_120_tables(self, corpus):
        assert len(corpus) == 120

    def test_twenty_row_count_configs(self):
        assert len(PAPER_ROW_COUNTS) == 20
        # k x 10^p for k in {1,2,4,6,8}, p in {4..7}
        assert 10_000 in PAPER_ROW_COUNTS
        assert 80_000_000 in PAPER_ROW_COUNTS
        assert 60_000 in PAPER_ROW_COUNTS

    def test_six_record_sizes(self):
        assert PAPER_ROW_SIZES == (40, 70, 100, 250, 500, 1000)

    def test_naming_convention(self, corpus):
        spec = corpus.get(1_000_000, 250)
        assert spec.name == table_name(1_000_000, 250) == "t1000000_250"

    def test_row_sizes_exact(self, corpus):
        for spec in corpus:
            assert spec.schema.row_width == spec.byte_row_size

    def test_location_and_dfs_path(self, corpus):
        spec = corpus.get(10_000, 40)
        assert spec.location == "hive"
        assert spec.dfs_path == "/warehouse/t10000_40"

    def test_missing_shape_raises(self, corpus):
        with pytest.raises(ConfigurationError):
            corpus.get(123, 456)

    def test_subset_build(self):
        corpus = build_paper_corpus(row_counts=(100, 200), row_sizes=(40,))
        assert len(corpus) == 2
        assert corpus.row_counts == (100, 200)
        assert corpus.row_sizes == (40,)


class TestMaterialization:
    def test_duplication_property(self):
        rows = materialize_rows(paper_schema(40), 100)
        schema = paper_schema(40)
        a5_index = schema.column_names.index("a5")
        values = [row[a5_index] for row in rows]
        # each value appears exactly 5 times
        assert values.count(0) == 5
        assert values.count(19) == 5
        assert max(values) == 19

    def test_z_always_zero(self):
        schema = paper_schema(40)
        z_index = schema.column_names.index("z")
        rows = materialize_rows(schema, 50)
        assert all(row[z_index] == 0 for row in rows)

    def test_subset_property_between_tables(self):
        """Values of a smaller table are a subset of a larger one (Fig. 10)."""
        schema = paper_schema(40)
        a1 = schema.column_names.index("a1")
        small = {row[a1] for row in materialize_rows(schema, 10)}
        large = {row[a1] for row in materialize_rows(schema, 100)}
        assert small <= large

    def test_dummy_pads_to_row_size(self):
        schema = paper_schema(70)
        dummy_index = schema.column_names.index("dummy")
        rows = materialize_rows(schema, 1)
        assert len(rows[0][dummy_index]) == 70 - 32

    def test_cap_enforced(self):
        with pytest.raises(ConfigurationError):
            materialize_rows(paper_schema(40), 10, max_rows=5)
