"""Tests for the SQL SELECT parser."""

import pytest

from repro.exceptions import ParseError
from repro.sql.ast import (
    AggregateKind,
    BinaryArithmetic,
    Comparison,
    ComparisonOp,
)
from repro.sql.logical import Aggregate, Join, Scan
from repro.sql.parser import parse_select


class TestBasicSelect:
    def test_select_star(self):
        plan = parse_select("SELECT * FROM t1")
        assert isinstance(plan, Scan)
        assert plan.table == "t1"
        assert plan.projection == ()
        assert plan.predicate is None

    def test_projection_pushed_into_scan(self):
        plan = parse_select("SELECT a1, a2 FROM t1")
        assert isinstance(plan, Scan)
        assert plan.projection == ("a1", "a2")

    def test_where_pushed_into_scan(self):
        plan = parse_select("SELECT * FROM t1 WHERE a1 < 100")
        assert isinstance(plan, Scan)
        assert isinstance(plan.predicate, Comparison)
        assert plan.predicate.op is ComparisonOp.LT

    def test_trailing_semicolon_ok(self):
        assert isinstance(parse_select("SELECT * FROM t;"), Scan)

    def test_case_insensitive_keywords(self):
        assert isinstance(parse_select("select * from t"), Scan)


class TestAggregates:
    def test_group_by_aggregate(self):
        plan = parse_select("SELECT SUM(a1), SUM(a2) FROM t GROUP BY a5")
        assert isinstance(plan, Aggregate)
        assert plan.group_by == ("a5",)
        assert len(plan.aggregates) == 2
        assert plan.aggregates[0].kind is AggregateKind.SUM

    def test_count_star(self):
        plan = parse_select("SELECT COUNT(*) FROM t")
        assert isinstance(plan, Aggregate)
        assert plan.group_by == ()

    def test_sum_star_rejected(self):
        with pytest.raises(ParseError):
            parse_select("SELECT SUM(*) FROM t")

    def test_group_by_without_aggregates_rejected(self):
        with pytest.raises(ParseError):
            parse_select("SELECT a1 FROM t GROUP BY a1")


class TestJoins:
    def test_basic_join(self):
        plan = parse_select("SELECT r.a1 FROM r JOIN s ON r.a1 = s.a1")
        assert isinstance(plan, Join)
        assert plan.condition.left_column == "a1"
        assert plan.condition.right_column == "a1"
        assert plan.extra_predicate is None
        assert plan.projection == ("a1",)

    def test_join_with_extra_predicate(self):
        plan = parse_select(
            "SELECT r.a1 FROM r JOIN s ON r.a1 = s.a1 AND r.a1 + s.z < 5000"
        )
        assert isinstance(plan, Join)
        assert isinstance(plan.extra_predicate, Comparison)
        assert isinstance(plan.extra_predicate.left, BinaryArithmetic)

    def test_reversed_equality_normalized(self):
        plan = parse_select("SELECT * FROM r JOIN s ON s.a2 = r.a1")
        assert plan.condition.left_column == "a1"
        assert plan.condition.right_column == "a2"

    def test_aliases(self):
        plan = parse_select(
            "SELECT * FROM t1000000_100 r JOIN t10000_100 s ON r.a1 = s.a1"
        )
        assert isinstance(plan, Join)
        assert isinstance(plan.left, Scan) and plan.left.table == "t1000000_100"

    def test_join_where_becomes_extra(self):
        plan = parse_select(
            "SELECT * FROM r JOIN s ON r.a1 = s.a1 WHERE r.a2 < 10"
        )
        assert plan.extra_predicate is not None

    def test_join_without_equality_rejected(self):
        with pytest.raises(ParseError):
            parse_select("SELECT * FROM r JOIN s ON r.a1 < s.a1")

    def test_join_then_aggregate(self):
        plan = parse_select(
            "SELECT SUM(a1) FROM r JOIN s ON r.a1 = s.a1 GROUP BY a5"
        )
        assert isinstance(plan, Aggregate)
        assert isinstance(plan.input, Join)


class TestErrors:
    def test_empty_rejected(self):
        with pytest.raises(ParseError):
            parse_select("   ")

    def test_garbage_rejected(self):
        with pytest.raises(ParseError):
            parse_select("FROBNICATE the database")

    def test_trailing_tokens_rejected(self):
        # "t alias" is legal, but a second bare identifier is not.
        with pytest.raises(ParseError):
            parse_select("SELECT * FROM t alias extra")

    def test_unterminated_expression(self):
        with pytest.raises(ParseError):
            parse_select("SELECT * FROM t WHERE a1 <")

    def test_unexpected_character(self):
        with pytest.raises(ParseError):
            parse_select("SELECT * FROM t WHERE a1 < #")


class TestExpressions:
    def test_precedence_mul_over_add(self):
        plan = parse_select("SELECT * FROM t WHERE a1 + a2 * 2 < 100")
        pred = plan.predicate
        assert pred.left.op == "+"
        assert pred.left.right.op == "*"

    def test_parenthesized_arithmetic(self):
        plan = parse_select("SELECT * FROM t WHERE (a1 + a2) * 2 < 100")
        assert plan.predicate.left.op == "*"

    def test_boolean_connectives(self):
        plan = parse_select(
            "SELECT * FROM t WHERE a1 < 10 OR a2 > 5 AND NOT a5 = 3"
        )
        assert plan.predicate is not None

    def test_float_literal(self):
        plan = parse_select("SELECT * FROM t WHERE a1 < 10.5")
        assert plan.predicate.right.value == 10.5

    def test_string_literal(self):
        plan = parse_select("SELECT * FROM t WHERE dummy = 'xx'")
        assert plan.predicate.right.value == "xx"


class TestMultiJoin:
    def test_three_way_left_deep(self):
        plan = parse_select(
            "SELECT * FROM t1 a JOIN t2 b ON a.a1 = b.a1 "
            "JOIN t3 c ON b.a2 = c.a2"
        )
        assert isinstance(plan, Join)
        assert isinstance(plan.left, Join)
        assert isinstance(plan.left.left, Scan) and plan.left.left.table == "t1"
        assert isinstance(plan.right, Scan) and plan.right.table == "t3"
        assert plan.condition.left_column == "a2"

    def test_later_join_may_reference_any_prior_table(self):
        plan = parse_select(
            "SELECT * FROM t1 a JOIN t2 b ON a.a1 = b.a1 "
            "JOIN t3 c ON a.a5 = c.a5"
        )
        assert plan.condition.left_column == "a5"
        assert plan.condition.right_column == "a5"

    def test_extra_predicate_attaches_to_its_join(self):
        plan = parse_select(
            "SELECT * FROM t1 a JOIN t2 b ON a.a1 = b.a1 AND a.a2 < 5 "
            "JOIN t3 c ON b.a2 = c.a2"
        )
        assert plan.extra_predicate is None
        assert plan.left.extra_predicate is not None

    def test_where_attaches_to_final_join(self):
        plan = parse_select(
            "SELECT * FROM t1 a JOIN t2 b ON a.a1 = b.a1 "
            "JOIN t3 c ON b.a2 = c.a2 WHERE a.a5 < 9"
        )
        assert plan.extra_predicate is not None

    def test_aggregate_over_three_way_join(self):
        plan = parse_select(
            "SELECT SUM(a1) FROM t1 a JOIN t2 b ON a.a1 = b.a1 "
            "JOIN t3 c ON b.a2 = c.a2 GROUP BY a5"
        )
        assert isinstance(plan, Aggregate)
        assert isinstance(plan.input, Join)

    def test_join_missing_equality_in_chain(self):
        with pytest.raises(ParseError):
            parse_select(
                "SELECT * FROM t1 a JOIN t2 b ON a.a1 = b.a1 "
                "JOIN t3 c ON c.a1 < 5"
            )
