"""Tests for the expression AST."""

import pytest

from repro.exceptions import ConfigurationError
from repro.sql.ast import (
    AggregateCall,
    AggregateKind,
    BinaryArithmetic,
    BooleanAnd,
    BooleanNot,
    BooleanOr,
    ColumnRef,
    Comparison,
    ComparisonOp,
    Literal,
    column,
    conjunction,
    lit,
)


class TestColumnRef:
    def test_referenced_columns(self):
        ref = column("a1", table="r")
        assert ref.referenced_columns() == frozenset({ref})

    def test_str_qualified(self):
        assert str(column("a1", table="r")) == "r.a1"
        assert str(column("a1")) == "a1"

    def test_empty_name_rejected(self):
        with pytest.raises(ConfigurationError):
            ColumnRef(column="")


class TestOperatorSugar:
    def test_addition_builds_arithmetic(self):
        expr = column("a1") + column("z")
        assert isinstance(expr, BinaryArithmetic)
        assert expr.op == "+"

    def test_scalar_coercion(self):
        expr = column("a1") + 5
        assert isinstance(expr.right, Literal)
        assert expr.right.value == 5

    def test_comparison_helpers(self):
        pred = column("a1").lt(10)
        assert isinstance(pred, Comparison)
        assert pred.op is ComparisonOp.LT
        assert column("a1").eq(1).op is ComparisonOp.EQ
        assert column("a1").ge(1).op is ComparisonOp.GE

    def test_fig10_predicate_shape(self):
        """The selectivity-control predicate R.a1 + S.z < threshold."""
        pred = (column("a1", "r") + column("z", "s")).lt(lit(5000))
        cols = {str(c) for c in pred.referenced_columns()}
        assert cols == {"r.a1", "s.z"}
        assert str(pred) == "(r.a1 + s.z) < 5000"


class TestBooleans:
    def test_and_collects_columns(self):
        pred = BooleanAnd((column("a").eq(1), column("b").eq(2)))
        assert {c.column for c in pred.referenced_columns()} == {"a", "b"}

    def test_and_requires_two_operands(self):
        with pytest.raises(ConfigurationError):
            BooleanAnd((column("a").eq(1),))

    def test_or_requires_two_operands(self):
        with pytest.raises(ConfigurationError):
            BooleanOr((column("a").eq(1),))

    def test_not_wraps(self):
        pred = BooleanNot(column("a").eq(1))
        assert "NOT" in str(pred)

    def test_conjunction_single_passthrough(self):
        p = column("a").eq(1)
        assert conjunction(p) is p

    def test_conjunction_multi(self):
        combined = conjunction(column("a").eq(1), column("b").eq(2))
        assert isinstance(combined, BooleanAnd)

    def test_conjunction_empty_rejected(self):
        with pytest.raises(ConfigurationError):
            conjunction()


class TestAggregates:
    def test_count_star_allowed(self):
        call = AggregateCall(kind=AggregateKind.COUNT)
        assert str(call) == "COUNT(*)"
        assert call.referenced_columns() == frozenset()

    def test_sum_requires_argument(self):
        with pytest.raises(ConfigurationError):
            AggregateCall(kind=AggregateKind.SUM)

    def test_sum_of_column(self):
        call = AggregateCall(kind=AggregateKind.SUM, argument=column("a5"))
        assert str(call) == "SUM(a5)"
        assert {c.column for c in call.referenced_columns()} == {"a5"}


class TestArithmeticValidation:
    def test_unknown_operator_rejected(self):
        with pytest.raises(ConfigurationError):
            BinaryArithmetic(lit(1), "%", lit(2))
